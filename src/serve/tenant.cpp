#include "serve/tenant.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace resex::serve {

TenantRegistry::TenantRegistry(std::vector<TenantSpec> specs)
    : specs_(std::move(specs)) {
  if (specs_.empty())
    throw std::invalid_argument("TenantRegistry: at least one tenant required");
  double guaranteeSum = 0.0;
  for (const TenantSpec& spec : specs_) {
    if (spec.name.empty())
      throw std::invalid_argument("TenantRegistry: tenant name must be non-empty");
    if (!(spec.weight > 0.0) || !std::isfinite(spec.weight))
      throw std::invalid_argument("TenantRegistry: tenant '" + spec.name +
                                  "' weight must be positive and finite");
    if (!(spec.guaranteedShare >= 0.0) || spec.guaranteedShare > 1.0)
      throw std::invalid_argument("TenantRegistry: tenant '" + spec.name +
                                  "' guaranteedShare must be in [0, 1]");
    if (!(spec.burstLimit >= 0.0) || !std::isfinite(spec.burstLimit))
      throw std::invalid_argument("TenantRegistry: tenant '" + spec.name +
                                  "' burstLimit must be >= 0 and finite");
    guaranteeSum += spec.guaranteedShare;
    totalWeight_ += spec.weight;
  }
  if (guaranteeSum > 1.0 + 1e-12)
    throw std::invalid_argument(
        "TenantRegistry: guaranteed shares sum past 1.0 — the reserves would "
        "overlap");
  for (std::size_t i = 0; i < specs_.size(); ++i)
    for (std::size_t j = i + 1; j < specs_.size(); ++j)
      if (specs_[i].name == specs_[j].name)
        throw std::invalid_argument("TenantRegistry: duplicate tenant name '" +
                                    specs_[i].name + "'");

  sloClasses_.reserve(specs_.size());
  for (const TenantSpec& spec : specs_)
    sloClasses_.push_back(spec.sloClass.empty() ? "tenant." + spec.name
                                                : spec.sloClass);

  // Fair-share tree: tenants naming the same pool share a node; a tenant
  // with no pool gets an implicit single-member pool under the root. Pool
  // weight is the sum of member weights.
  tree_.tenants.resize(specs_.size());
  for (std::size_t t = 0; t < specs_.size(); ++t) {
    const std::string poolName =
        specs_[t].pool.empty() ? "pool." + specs_[t].name : specs_[t].pool;
    std::uint32_t poolIdx = 0;
    for (; poolIdx < tree_.pools.size(); ++poolIdx)
      if (tree_.pools[poolIdx].name == poolName) break;
    if (poolIdx == tree_.pools.size())
      tree_.pools.push_back({poolName, 0.0});
    tree_.pools[poolIdx].weight += specs_[t].weight;
    tree_.tenants[t] = {specs_[t].weight, poolIdx};
  }
}

std::optional<TenantId> TenantRegistry::idOf(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < specs_.size(); ++i)
    if (specs_[i].name == name) return static_cast<TenantId>(i);
  return std::nullopt;
}

double TenantRegistry::weightShare(TenantId id) const {
  return totalWeight_ > 0.0 ? specs_.at(id).weight / totalWeight_ : 0.0;
}

double TenantRegistry::entitledTokens(TenantId id, double totalTokens) const {
  return specs_.at(id).guaranteedShare * totalTokens;
}

double TenantRegistry::capTokens(TenantId id, double totalTokens) const {
  return std::max(entitledTokens(id, totalTokens),
                  specs_.at(id).burstLimit * weightShare(id) * totalTokens);
}

const char* admissionName(Admission outcome) noexcept {
  switch (outcome) {
    case Admission::kAdmitted: return "admitted";
    case Admission::kRejectedOverShare: return "rejected_over_share";
    case Admission::kRejectedNoToken: return "rejected_no_token";
  }
  return "unknown";
}

TokenBank::TokenBank(std::vector<std::uint32_t> machineSlots,
                     const TenantRegistry& registry)
    : free_(std::move(machineSlots)), held_(registry.count(), 0) {
  for (const std::uint32_t slots : free_) totalTokens_ += slots;
  totalFree_ = totalTokens_;
  entitled_.reserve(registry.count());
  cap_.reserve(registry.count());
  const auto total = static_cast<double>(totalTokens_);
  for (TenantId t = 0; t < registry.count(); ++t) {
    entitled_.push_back(registry.entitledTokens(t, total));
    cap_.push_back(registry.capTokens(t, total));
  }
}

Admission TokenBank::acquire(
    TenantId tenant, std::span<const std::vector<ReplicaHost>> hostsPerPartition,
    std::vector<std::uint32_t>& picks) {
  const auto need = static_cast<double>(hostsPerPartition.size());
  std::lock_guard lock(mutex_);
  const double heldAfter = static_cast<double>(held_[tenant]) + need;
  if (heldAfter > cap_[tenant] + 1e-9) return Admission::kRejectedOverShare;
  // Bank-wide scarcity is physical exhaustion whatever the lane — an
  // over-share verdict is reserved for limits another tenant's entitlement
  // imposes.
  if (static_cast<double>(totalFree_) < need) return Admission::kRejectedNoToken;
  if (heldAfter > entitled_[tenant] + 1e-9) {
    // Burst lane: the extra may only come from headroom no other tenant's
    // guarantee has a claim on.
    double reservedByOthers = 0.0;
    for (TenantId u = 0; u < held_.size(); ++u)
      if (u != tenant)
        reservedByOthers +=
            std::max(0.0, entitled_[u] - static_cast<double>(held_[u]));
    if (static_cast<double>(totalFree_) - reservedByOthers < need - 1e-9)
      return Admission::kRejectedOverShare;
  }
  // Greedy binding: each partition to the hosting machine with the most
  // free tokens — least-loaded token dispatch (ties to the lower machine
  // id, matching the router's documented determinism).
  std::vector<std::uint32_t> chosen(hostsPerPartition.size());
  for (std::size_t g = 0; g < hostsPerPartition.size(); ++g) {
    const auto& hosts = hostsPerPartition[g];
    std::uint32_t best = 0;
    std::uint32_t bestFree = 0;
    for (std::uint32_t i = 0; i < hosts.size(); ++i) {
      const std::uint32_t f = free_[hosts[i].first];
      if (f > bestFree) {
        bestFree = f;
        best = i;
      }
    }
    if (bestFree == 0) {
      // Roll back this query's partial bindings; no tokens move.
      // (totalFree_ is only adjusted on success, so just the per-machine
      // counts are restored here.)
      for (std::size_t r = 0; r < g; ++r)
        ++free_[hostsPerPartition[r][chosen[r]].first];
      return Admission::kRejectedNoToken;
    }
    --free_[hosts[best].first];
    chosen[g] = best;
  }
  totalFree_ -= hostsPerPartition.size();
  held_[tenant] += hostsPerPartition.size();
  picks = std::move(chosen);
  return Admission::kAdmitted;
}

void TokenBank::release(TenantId tenant, MachineId machine) {
  std::lock_guard lock(mutex_);
  ++free_[machine];
  ++totalFree_;
  if (held_[tenant] > 0) --held_[tenant];
}

std::uint64_t TokenBank::freeTokens() const {
  std::lock_guard lock(mutex_);
  return totalFree_;
}

std::uint64_t TokenBank::freeOn(MachineId machine) const {
  std::lock_guard lock(mutex_);
  return free_.at(machine);
}

std::uint64_t TokenBank::heldBy(TenantId tenant) const {
  std::lock_guard lock(mutex_);
  return held_.at(tenant);
}

}  // namespace resex::serve
