// Tenants: query classes with weights, guarantees, and burst limits, plus
// the token bank that turns those entitlements into admission decisions.
//
// The exchange model balances *machines*; tenants balance *workloads*. A
// Tenant is one query class ("interactive", "batch-scan", one product
// surface, ...) with
//
//   * a fair-share `weight` — its claim on contended dispatch capacity,
//     enforced by the FairShareQueue ordering (see fair_share.hpp);
//   * a `guaranteedShare` — the fraction of the cluster's execution-slot
//     tokens reserved for it, admission-protected against every burst;
//   * a `burstLimit` — how far past its weighted share it may reach into
//     *unreserved* headroom when the cluster has slack;
//   * an SLO class — its own SloWindow with its own objective.
//
// Token model (per "Dynamic Load Balancing with Tokens", Comte 2018, on
// the balanced-fairness foundation of Bonald & Comte 2018): each machine
// holds a fixed number of tokens representing execution slots (worker
// threads times a queueing allowance). A query needs one token per
// partition task; tokens are acquired greedily — each task binds to the
// hosting replica whose machine has the most free tokens, the
// least-loaded/token dispatch whose stationary behaviour approximates
// insensitive balanced fairness — and are returned when the worker
// finishes (or sheds) the task. Admission is all-or-nothing per query:
//
//   1. cap check      — held + need must stay within the tenant's cap
//                       (max of its guarantee and burstLimit x weighted
//                       share of all tokens);
//   2. reserve check  — above its guarantee, a tenant may only consume
//                       headroom no other tenant's guarantee has a claim
//                       on (free tokens minus others' unused reserves);
//   3. binding        — every partition must find a host machine with a
//                       free token, else the acquisition rolls back.
//
// A tenant over its share is therefore throttled *at admission* — the
// rejection is immediate and cheap — instead of poisoning the shared
// per-machine queues and being shed worker-side after burning a slot.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cluster/types.hpp"
#include "obs/slo.hpp"

namespace resex::serve {

using TenantId = std::uint32_t;

struct TenantSpec {
  std::string name;
  /// Fair-share weight within its pool; > 0.
  double weight = 1.0;
  /// Fraction of all tokens reserved for this tenant, in [0, 1]; the sum
  /// over tenants must stay <= 1. Admission within the guarantee can only
  /// fail on physical slot exhaustion, never on another tenant's burst.
  double guaranteedShare = 0.0;
  /// Cap multiplier over the tenant's weighted token share; >= 0. The
  /// effective cap is max(guarantee, burstLimit x weightShare) of all
  /// tokens, so 0 pins the tenant to its guarantee.
  double burstLimit = 1.0;
  /// Fair-share tree pool this tenant schedules under; empty = a pool of
  /// its own directly under the root.
  std::string pool;
  /// SLO class name; empty defaults to "tenant.<name>". Each distinct
  /// class registers its own SloWindow with `slo` (distinct objectives per
  /// tenant are the point — see SloRegistry::window's mismatch contract).
  std::string sloClass;
  obs::SloConfig slo;
};

/// The static shape of the hierarchical fair-share tree: root -> pools ->
/// tenants. Pool weight is the sum of its members' weights (a pool's claim
/// grows with the classes it shelters, the ytsaurus fair-share convention
/// for implicit pools).
struct FairShareTreeSpec {
  struct Pool {
    std::string name;
    double weight = 0.0;
  };
  struct Tenant {
    double weight = 1.0;
    std::uint32_t pool = 0;
  };
  std::vector<Pool> pools;
  std::vector<Tenant> tenants;
};

/// Validated, immutable tenant table. Ids are dense indexes in
/// registration order; references stay valid for the registry's lifetime.
class TenantRegistry {
 public:
  /// Empty registry (count() == 0): the broker's single-implicit-tenant
  /// legacy mode.
  TenantRegistry() = default;
  /// Validates and indexes `specs`: unique non-empty names, positive
  /// finite weights, guarantees in [0,1] summing to <= 1, burst limits
  /// >= 0. Throws std::invalid_argument on violation.
  explicit TenantRegistry(std::vector<TenantSpec> specs);

  std::size_t count() const noexcept { return specs_.size(); }
  const TenantSpec& spec(TenantId id) const { return specs_.at(id); }
  std::optional<TenantId> idOf(std::string_view name) const noexcept;
  /// The registered SLO class name (spec.sloClass or its default).
  const std::string& sloClassOf(TenantId id) const { return sloClasses_.at(id); }

  const FairShareTreeSpec& tree() const noexcept { return tree_; }

  /// weight_t / sum of all weights.
  double weightShare(TenantId id) const;
  /// Tokens reserved for `id` out of `totalTokens`.
  double entitledTokens(TenantId id, double totalTokens) const;
  /// Hard admission cap: max(entitlement, burstLimit x weighted share).
  double capTokens(TenantId id, double totalTokens) const;

 private:
  std::vector<TenantSpec> specs_;
  std::vector<std::string> sloClasses_;
  FairShareTreeSpec tree_;
  double totalWeight_ = 0.0;
};

enum class Admission {
  kAdmitted,
  /// The tenant's cap or another tenant's unused guarantee blocked it —
  /// the fair-share throttle working as intended.
  kRejectedOverShare,
  /// Every candidate machine's execution slots are token-exhausted (the
  /// cluster, or this query's replica set, is physically saturated).
  kRejectedNoToken,
};

const char* admissionName(Admission outcome) noexcept;

/// (machine, physical shard) — one hosting replica of a partition, the
/// element type of the broker's routing table.
using ReplicaHost = std::pair<MachineId, ShardId>;

/// Per-machine execution-slot tokens plus per-tenant holdings, with
/// atomic whole-query greedy acquisition. Thread-safe (one mutex: token
/// operations bracket real index scans, contention is noise).
class TokenBank {
 public:
  /// `machineSlots[m]` tokens on machine m. Entitlements and caps are
  /// precomputed from `registry` against the summed total.
  TokenBank(std::vector<std::uint32_t> machineSlots,
            const TenantRegistry& registry);

  /// All-or-nothing acquisition of one token per partition for `tenant`:
  /// `hostsPerPartition[g]` lists the hosting replicas of partition g, and
  /// on admission `picks[g]` receives the index of the chosen replica —
  /// greedily the host whose machine has the most free tokens (ties to the
  /// lower machine id). On rejection `picks` is untouched and no tokens
  /// move.
  Admission acquire(TenantId tenant,
                    std::span<const std::vector<ReplicaHost>> hostsPerPartition,
                    std::vector<std::uint32_t>& picks);

  /// Returns the token a task acquired on `machine` for `tenant`.
  void release(TenantId tenant, MachineId machine);

  std::uint64_t totalTokens() const noexcept { return totalTokens_; }
  std::uint64_t freeTokens() const;
  std::uint64_t freeOn(MachineId machine) const;
  std::uint64_t heldBy(TenantId tenant) const;
  double entitled(TenantId tenant) const { return entitled_.at(tenant); }
  double cap(TenantId tenant) const { return cap_.at(tenant); }

 private:
  mutable std::mutex mutex_;
  std::vector<std::uint32_t> free_;       ///< per machine
  std::vector<std::uint64_t> held_;       ///< per tenant
  std::vector<double> entitled_;          ///< per tenant, in tokens
  std::vector<double> cap_;               ///< per tenant, in tokens
  std::uint64_t totalTokens_ = 0;
  std::uint64_t totalFree_ = 0;
};

}  // namespace resex::serve
