#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

namespace resex::util {
namespace {

[[noreturn]] void throwErrno(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " '" + path + "': " + std::strerror(errno));
}

std::string parentDirOf(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Process-unique temp suffix: pid + a monotonically increasing counter, so
/// two writers toward the same final path (or a writer racing crash debris
/// from a previous life) never share a temp name within one run.
std::string nextTempToken() {
  static std::atomic<std::uint64_t> counter{0};
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%ld.%llu", static_cast<long>(::getpid()),
                static_cast<unsigned long long>(
                    counter.fetch_add(1, std::memory_order_relaxed)));
  return buf;
}

void fsyncDir(const std::string& dir) {
  const int dirFd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirFd < 0) throwErrno("AtomicFileWriter: open dir", dir);
  if (::fsync(dirFd) != 0) {
    const int saved = errno;
    ::close(dirFd);
    errno = saved;
    throwErrno("AtomicFileWriter: fsync dir", dir);
  }
  ::close(dirFd);
}

}  // namespace

const char* atomicFileStepName(AtomicFileStep step) noexcept {
  switch (step) {
    case AtomicFileStep::kTempWritten: return "temp_written";
    case AtomicFileStep::kTempSynced: return "temp_synced";
    case AtomicFileStep::kRenamed: return "renamed";
    case AtomicFileStep::kDirSynced: return "dir_synced";
  }
  return "unknown";
}

AtomicFileWriter::AtomicFileWriter(std::string finalPath, std::string tempToken)
    : finalPath_(std::move(finalPath)) {
  if (tempToken.empty()) tempToken = nextTempToken();
  tempPath_ = finalPath_ + ".tmp-" + tempToken;
  fd_ = ::open(tempPath_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) throwErrno("AtomicFileWriter: open temp", tempPath_);
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!published_ && !crashed_) abort();
  closeFd();
}

void AtomicFileWriter::closeFd() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void AtomicFileWriter::write(const void* data, std::size_t size) {
  if (fd_ < 0)
    throw std::logic_error("AtomicFileWriter::write after publish/abort");
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd_, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throwErrno("AtomicFileWriter: write", tempPath_);
    }
    p += n;
    size -= static_cast<std::size_t>(n);
    bytesWritten_ += static_cast<std::uint64_t>(n);
  }
}

void AtomicFileWriter::step(AtomicFileStep s) {
  if (!hook_) return;
  try {
    hook_(s);
  } catch (...) {
    // The hook "killed" us here: leave the temp file exactly as a real
    // crash would, and make the writer inert from now on.
    crashed_ = true;
    closeFd();
    throw;
  }
}

void AtomicFileWriter::publish() {
  if (published_) return;
  if (fd_ < 0)
    throw std::logic_error("AtomicFileWriter::publish after abort/crash");
  step(AtomicFileStep::kTempWritten);
  if (::fsync(fd_) != 0) throwErrno("AtomicFileWriter: fsync", tempPath_);
  step(AtomicFileStep::kTempSynced);
  closeFd();
  if (::rename(tempPath_.c_str(), finalPath_.c_str()) != 0)
    throwErrno("AtomicFileWriter: rename", finalPath_);
  // Visible from here on; a crash before the directory sync can only lose
  // the rename wholesale (old world), never expose a partial file.
  published_ = true;
  step(AtomicFileStep::kRenamed);
  fsyncDir(parentDirOf(finalPath_));
  step(AtomicFileStep::kDirSynced);
}

void AtomicFileWriter::abort() noexcept {
  closeFd();
  if (!published_) ::unlink(tempPath_.c_str());
}

void AtomicFileWriter::abandonKeepingTemp() noexcept {
  crashed_ = true;
  closeFd();
}

bool isTempFileName(std::string_view name) noexcept {
  const auto slash = name.find_last_of('/');
  if (slash != std::string_view::npos) name = name.substr(slash + 1);
  return name.find(".tmp-") != std::string_view::npos;
}

std::size_t removeTempFiles(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return 0;
  std::size_t removed = 0;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    const std::string name = entry.path().filename().string();
    if (!isTempFileName(name)) continue;
    if (std::filesystem::remove(entry.path(), ec) && !ec) ++removed;
  }
  return removed;
}

}  // namespace resex::util
