// Crash-safe file publication: write-temp -> fsync(file) -> rename ->
// fsync(parent dir).
//
// The invariant this module sells is *atomic visibility*: at every point in
// the protocol the final path either does not exist, still holds its old
// complete contents, or holds the new complete contents — never a prefix.
// A crash may strand the temp file (a real kill cannot unlink it first);
// that debris is invisible to readers of the final path and is what a
// recovery pass collects with removeTempFiles().
//
// SegmentWriter::finish already applies the fsync-file-then-parent-dir
// discipline for freshly built segments; this helper packages the same
// discipline for *copies* (the migration mover) plus an enumerable crash
// hook so a test can kill the protocol between every pair of steps and
// assert the invariant at each point.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace resex::util {

/// The protocol's observable steps, in execution order. The step hook fires
/// after each one completes.
enum class AtomicFileStep {
  kTempWritten,  ///< all payload bytes written to the temp file
  kTempSynced,   ///< fsync(temp) durable
  kRenamed,      ///< rename(temp, final) done — new contents now visible
  kDirSynced,    ///< fsync(parent dir) — the rename itself is durable
};

const char* atomicFileStepName(AtomicFileStep step) noexcept;

/// Test hook invoked after each protocol step. A hook that throws models a
/// crash at that exact point: the writer marks itself crashed and leaves
/// the temp file in place (a real kill would not clean up either), so the
/// test observes the same debris a recovery pass must handle.
using AtomicFileStepHook = std::function<void(AtomicFileStep)>;

/// Writes a file that becomes visible at `finalPath` atomically on
/// publish(). Destruction without publish() unlinks the temp (normal
/// failure cleanup) unless a step hook "crashed" the writer.
class AtomicFileWriter {
 public:
  /// Opens `<finalPath>.tmp-<token>` for writing (O_TRUNC). The token
  /// defaults to a process-unique suffix so concurrent writers toward the
  /// same final path never collide.
  explicit AtomicFileWriter(std::string finalPath, std::string tempToken = {});
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Appends `size` bytes; throws std::runtime_error on I/O failure.
  void write(const void* data, std::size_t size);
  std::uint64_t bytesWritten() const noexcept { return bytesWritten_; }

  /// fsync(temp) -> close -> rename(temp, final) -> fsync(parent dir).
  /// After this returns the new contents are visible *and* durable.
  void publish();

  /// Abandons the write: closes and unlinks the temp file. Idempotent.
  void abort() noexcept;

  /// Closes the temp fd but leaves the temp *file* on disk — simulates the
  /// debris of a crash mid-copy (e.g. the destination machine died) that
  /// only recovery GC may clean up.
  void abandonKeepingTemp() noexcept;

  const std::string& finalPath() const noexcept { return finalPath_; }
  const std::string& tempPath() const noexcept { return tempPath_; }
  bool published() const noexcept { return published_; }

  void setStepHook(AtomicFileStepHook hook) { hook_ = std::move(hook); }

 private:
  void step(AtomicFileStep s);
  void closeFd() noexcept;

  std::string finalPath_;
  std::string tempPath_;
  int fd_ = -1;
  std::uint64_t bytesWritten_ = 0;
  bool published_ = false;
  bool crashed_ = false;
  AtomicFileStepHook hook_;
};

/// True when `name` (a bare filename or a path) follows the temp-file
/// convention used by AtomicFileWriter (an ".tmp-" infix).
bool isTempFileName(std::string_view name) noexcept;

/// Unlinks every temp-convention file directly inside `dir`; returns how
/// many were removed. Missing directories count as zero (nothing to GC).
std::size_t removeTempFiles(const std::string& dir);

}  // namespace resex::util
