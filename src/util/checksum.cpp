#include "util/checksum.hpp"

#include <array>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <nmmintrin.h>
#define RESEX_HAVE_SSE42_CRC 1
#endif
#if defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#include <arm_acle.h>
#define RESEX_HAVE_ARM_CRC 1
#endif

namespace resex {

namespace {

/// Reflected Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

std::array<std::uint32_t, 256> makeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ (kPoly & (~(crc & 1) + 1));
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = makeTable();
  return t;
}

#ifdef RESEX_HAVE_SSE42_CRC
__attribute__((target("sse4.2"))) std::uint32_t crcHardware(
    const std::uint8_t* p, std::size_t size, std::uint32_t crc) {
  std::uint64_t crc64 = crc;
  for (; size >= 8; size -= 8, p += 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    crc64 = _mm_crc32_u64(crc64, word);
  }
  crc = static_cast<std::uint32_t>(crc64);
  for (; size > 0; --size, ++p) crc = _mm_crc32_u8(crc, *p);
  return crc;
}
bool hardwareAvailable() { return __builtin_cpu_supports("sse4.2"); }
#elif defined(RESEX_HAVE_ARM_CRC)
std::uint32_t crcHardware(const std::uint8_t* p, std::size_t size,
                          std::uint32_t crc) {
  for (; size >= 8; size -= 8, p += 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    crc = __crc32cd(crc, word);
  }
  for (; size > 0; --size, ++p) crc = __crc32cb(crc, *p);
  return crc;
}
bool hardwareAvailable() { return true; }
#else
std::uint32_t crcHardware(const std::uint8_t*, std::size_t, std::uint32_t) {
  return 0;
}
bool hardwareAvailable() { return false; }
#endif

}  // namespace

std::uint32_t crc32cSoftware(const void* data, std::size_t size,
                             std::uint32_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  const auto& t = table();
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i)
    crc = (crc >> 8) ^ t[(crc ^ p[i]) & 0xFF];
  return ~crc;
}

std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed) {
  static const bool hw = hardwareAvailable();
  if (!hw) return crc32cSoftware(data, size, seed);
  return ~crcHardware(static_cast<const std::uint8_t*>(data), size, ~seed);
}

}  // namespace resex
