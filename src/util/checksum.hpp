// CRC-32C (Castagnoli) — the plane checksum of the on-disk segment format.
//
// Chainable: `crc32c(b, nb, crc32c(a, na))` equals `crc32c(ab, na + nb)`,
// so a streaming writer can checksum a plane as it flushes it. Dispatches
// to the SSE4.2 (x86-64) or ARMv8-CRC hardware instructions when the host
// has them; the table-driven software path is the oracle and the fallback.
#pragma once

#include <cstddef>
#include <cstdint>

namespace resex {

/// CRC-32C of `size` bytes, continuing from `seed` (0 for a fresh stream).
std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed = 0);

/// The software implementation, for tests that pin the oracle.
std::uint32_t crc32cSoftware(const void* data, std::size_t size,
                             std::uint32_t seed = 0);

}  // namespace resex
