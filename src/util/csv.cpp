#include "util/csv.hpp"

#include <stdexcept>

namespace resex {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needsQuoting = cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needsQuoting) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::writeRow(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace resex
