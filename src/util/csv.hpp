// CSV emission for experiment results (consumed by external plotting).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace resex {

/// Writes RFC-4180-style CSV. Cells containing commas, quotes, or newlines
/// are quoted; embedded quotes are doubled.
class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void writeRow(const std::vector<std::string>& cells);
  void writeHeader(const std::vector<std::string>& names) { writeRow(names); }

  static std::string escape(const std::string& cell);

 private:
  std::ofstream out_;
};

}  // namespace resex
