#include "util/flags.hpp"

#include <stdexcept>

namespace resex {

Flags& Flags::define(const std::string& name, const std::string& defaultValue,
                     const std::string& help) {
  if (specs_.contains(name)) throw std::runtime_error("Flags: duplicate flag --" + name);
  specs_[name] = Spec{defaultValue, defaultValue, help};
  order_.push_back(name);
  return *this;
}

void Flags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      helpRequested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool haveValue = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name.resize(eq);
      haveValue = true;
    }
    auto it = specs_.find(name);
    if (it == specs_.end()) throw std::runtime_error("Flags: unknown flag --" + name);
    if (!haveValue) {
      // --name value, unless the next token is another flag (then boolean true).
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = std::move(value);
  }
}

std::string Flags::helpText(const std::string& program) const {
  std::string out = "usage: " + program + " [flags]\n";
  for (const auto& name : order_) {
    const Spec& spec = specs_.at(name);
    out += "  --" + name + " (default: " + spec.defaultValue + ")\n      " + spec.help + "\n";
  }
  return out;
}

const Flags::Spec& Flags::lookup(const std::string& name) const {
  const auto it = specs_.find(name);
  if (it == specs_.end()) throw std::runtime_error("Flags: undeclared flag --" + name);
  return it->second;
}

std::string Flags::str(const std::string& name) const { return lookup(name).value; }

std::int64_t Flags::integer(const std::string& name) const {
  const std::string& v = lookup(name).value;
  try {
    std::size_t pos = 0;
    const std::int64_t parsed = std::stoll(v, &pos);
    if (pos != v.size())
      throw std::runtime_error("flag --" + name + ": expected integer, got '" + v + "'");
    return parsed;
  } catch (const std::runtime_error&) {
    throw;
  } catch (const std::exception&) {
    // std::stoll throws invalid_argument/out_of_range with useless messages;
    // rethrow with the flag name and offending value.
    throw std::runtime_error("flag --" + name + ": expected integer, got '" + v + "'");
  }
}

double Flags::real(const std::string& name) const {
  const std::string& v = lookup(name).value;
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(v, &pos);
    if (pos != v.size())
      throw std::runtime_error("flag --" + name + ": expected number, got '" + v + "'");
    return parsed;
  } catch (const std::runtime_error&) {
    throw;
  } catch (const std::exception&) {
    throw std::runtime_error("flag --" + name + ": expected number, got '" + v + "'");
  }
}

bool Flags::boolean(const std::string& name) const {
  const std::string& v = lookup(name).value;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace resex
