// Tiny command-line flag parser for examples and bench binaries.
//
// Accepts --name=value and --name value forms plus bare --name booleans.
// Unknown flags are an error so typos surface immediately.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace resex {

class Flags {
 public:
  /// Declares a flag with a default and a help line; returns *this to chain.
  Flags& define(const std::string& name, const std::string& defaultValue,
                const std::string& help);

  /// Parses argv; throws std::runtime_error on unknown or malformed flags.
  /// Recognizes --help and, if seen, sets helpRequested().
  void parse(int argc, const char* const* argv);

  bool helpRequested() const noexcept { return helpRequested_; }
  std::string helpText(const std::string& program) const;

  std::string str(const std::string& name) const;
  std::int64_t integer(const std::string& name) const;
  double real(const std::string& name) const;
  bool boolean(const std::string& name) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const noexcept { return positional_; }

 private:
  struct Spec {
    std::string value;
    std::string defaultValue;
    std::string help;
  };
  const Spec& lookup(const std::string& name) const;

  std::map<std::string, Spec> specs_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
  bool helpRequested_ = false;
};

}  // namespace resex
