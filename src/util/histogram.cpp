#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace resex {

namespace {

/// Validates the LinearHistogram bounds *before* any member is computed
/// from them (a zero bucket count or inverted range must never reach the
/// width division or size counts_).
double checkedBucketWidth(double lo, double hi, std::size_t buckets) {
  if (buckets == 0) throw std::invalid_argument("LinearHistogram: zero buckets");
  if (!(hi > lo)) throw std::invalid_argument("LinearHistogram: hi must exceed lo");
  return (hi - lo) / static_cast<double>(buckets);
}

}  // namespace

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), bucketWidth_(checkedBucketWidth(lo, hi, buckets)),
      counts_(buckets, 0) {}

void LinearHistogram::add(double x) noexcept {
  if (std::isnan(x)) return;  // casting NaN to an index is UB; drop it
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / bucketWidth_);
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double LinearHistogram::bucketLow(std::size_t bucket) const {
  return lo_ + bucketWidth_ * static_cast<double>(bucket);
}

std::string LinearHistogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (const std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char label[64];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    std::snprintf(label, sizeof label, "%10.3f | ", bucketLow(b));
    out += label;
    const std::size_t bar = counts_[b] * width / peak;
    out.append(bar, '#');
    std::snprintf(label, sizeof label, " %zu\n", counts_[b]);
    out += label;
  }
  return out;
}

LatencyHistogram::LatencyHistogram(double minValue, int subBucketsPerOctave)
    : minValue_(minValue), subBuckets_(subBucketsPerOctave),
      logBase_(std::log(2.0) / subBucketsPerOctave) {
  if (minValue <= 0.0) throw std::invalid_argument("LatencyHistogram: minValue must be > 0");
  if (subBucketsPerOctave <= 0)
    throw std::invalid_argument("LatencyHistogram: subBuckets must be > 0");
}

std::size_t LatencyHistogram::bucketFor(double x) const noexcept {
  if (x <= minValue_) return 0;
  return static_cast<std::size_t>(std::log(x / minValue_) / logBase_) + 1;
}

double LatencyHistogram::bucketValue(std::size_t bucket) const noexcept {
  if (bucket == 0) return minValue_;
  // Midpoint (geometric) of the bucket's range.
  return minValue_ * std::exp((static_cast<double>(bucket) - 0.5) * logBase_);
}

void LatencyHistogram::add(double x) noexcept {
  const std::size_t b = bucketFor(x);
  if (b >= counts_.size()) counts_.resize(b + 1, 0);
  ++counts_[b];
  ++total_;
  sum_ += x;
  maxSeen_ = std::max(maxSeen_, x);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.minValue_ != minValue_ || other.subBuckets_ != subBuckets_)
    throw std::invalid_argument("LatencyHistogram::merge: bucket geometry differs");
  if (other.counts_.size() > counts_.size()) counts_.resize(other.counts_.size(), 0);
  for (std::size_t b = 0; b < other.counts_.size(); ++b) counts_[b] += other.counts_[b];
  total_ += other.total_;
  sum_ += other.sum_;
  maxSeen_ = std::max(maxSeen_, other.maxSeen_);
}

void LatencyHistogram::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  sum_ = 0.0;
  maxSeen_ = 0.0;
}

double LatencyHistogram::bucketUpper(std::size_t bucket) const noexcept {
  if (bucket == 0) return minValue_;
  return minValue_ * std::exp(static_cast<double>(bucket) * logBase_);
}

std::string LatencyHistogram::toPrometheusText(const std::string& name) const {
  std::string out = "# TYPE " + name + " histogram\n";
  char line[160];
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    cumulative += counts_[b];
    std::snprintf(line, sizeof line, "%s_bucket{le=\"%.9g\"} %llu\n",
                  name.c_str(), bucketUpper(b),
                  static_cast<unsigned long long>(cumulative));
    out += line;
  }
  std::snprintf(line, sizeof line, "%s_bucket{le=\"+Inf\"} %llu\n", name.c_str(),
                static_cast<unsigned long long>(total_));
  out += line;
  std::snprintf(line, sizeof line, "%s_sum %.9g\n", name.c_str(), sum_);
  out += line;
  std::snprintf(line, sizeof line, "%s_count %llu\n", name.c_str(),
                static_cast<unsigned long long>(total_));
  out += line;
  return out;
}

double LatencyHistogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q >= 1.0) return maxSeen_;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    seen += counts_[b];
    // The geometric midpoint of the last occupied bucket can exceed the
    // largest sample actually observed; never report beyond maxSeen_.
    if (seen > target) return std::min(bucketValue(b), maxSeen_);
  }
  return maxSeen_;
}

}  // namespace resex
