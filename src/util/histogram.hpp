// Fixed-bucket and HDR-style histograms for latency reporting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace resex {

/// Linear-bucket histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bucket. Used for quick text visualisation of distributions.
class LinearHistogram {
 public:
  /// Throws std::invalid_argument on zero buckets or hi <= lo (validated
  /// before any derived member is computed).
  LinearHistogram(double lo, double hi, std::size_t buckets);

  /// NaN samples are ignored (not counted).
  void add(double x) noexcept;
  std::size_t totalCount() const noexcept { return total_; }
  std::size_t bucketCount() const noexcept { return counts_.size(); }
  std::size_t countAt(std::size_t bucket) const { return counts_.at(bucket); }
  double bucketLow(std::size_t bucket) const;
  /// ASCII rendering, one line per bucket, bar scaled to `width` chars.
  std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  double bucketWidth_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Log-bucketed histogram for latency-like positive values: constant
/// relative error (~ +/- 2^(1/subBuckets)), O(1) insert, quantiles without
/// retaining samples. Values below `minValue` clamp to the first bucket.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(double minValue = 1e-6, int subBucketsPerOctave = 8);

  void add(double x) noexcept;
  /// Adds `other`'s samples into this histogram. Both must share minValue
  /// and subBuckets (bucket edges line up); mismatches throw.
  void merge(const LatencyHistogram& other);
  /// Forgets every sample; bucket geometry is retained and the backing
  /// storage keeps its capacity (window rotation reuses buckets in place).
  void reset() noexcept;
  std::size_t totalCount() const noexcept { return total_; }
  /// Quantile q in [0,1]; returns the representative value of the bucket
  /// containing the q-th sample, clamped to maxSeen() so a reported
  /// quantile never exceeds the largest observed sample; q == 1 returns
  /// maxSeen() exactly. Empty histogram returns 0.
  double quantile(double q) const noexcept;
  double maxSeen() const noexcept { return maxSeen_; }
  double sum() const noexcept { return sum_; }
  double meanValue() const noexcept {
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
  }

  /// Occupied bucket range (counts beyond this are zero).
  std::size_t bucketCount() const noexcept { return counts_.size(); }
  std::uint64_t countAt(std::size_t bucket) const { return counts_.at(bucket); }
  /// Inclusive upper edge of bucket b (samples <= this land at or below b).
  double bucketUpper(std::size_t bucket) const noexcept;

  /// Prometheus text exposition for this histogram under `name`:
  /// cumulative `_bucket{le="..."}` lines over the occupied range plus the
  /// mandatory `+Inf` bucket, then `_sum` and `_count` — scrape-shaped, in
  /// contrast to the per-bucket snapshot counts the JSON exports carry.
  std::string toPrometheusText(const std::string& name) const;

 private:
  std::size_t bucketFor(double x) const noexcept;
  double bucketValue(std::size_t bucket) const noexcept;

  double minValue_;
  int subBuckets_;
  double logBase_;  // log of the per-bucket growth ratio
  std::vector<std::uint64_t> counts_;
  std::size_t total_ = 0;
  double maxSeen_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace resex
