#include "util/json_writer.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace resex {

std::string JsonWriter::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::beforeValue() {
  if (stack_.empty()) {
    if (!out_.empty()) throw std::logic_error("JsonWriter: multiple top-level values");
    return;
  }
  if (stack_.back() == Frame::Object) {
    if (!pendingKey_) throw std::logic_error("JsonWriter: value in object without key");
    pendingKey_ = false;
    return;
  }
  if (hasElements_.back()) out_ += ',';
  hasElements_.back() = true;
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  out_ += '{';
  stack_.push_back(Frame::Object);
  hasElements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  if (stack_.empty() || stack_.back() != Frame::Object || pendingKey_)
    throw std::logic_error("JsonWriter: mismatched endObject");
  out_ += '}';
  stack_.pop_back();
  hasElements_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  out_ += '[';
  stack_.push_back(Frame::Array);
  hasElements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  if (stack_.empty() || stack_.back() != Frame::Array)
    throw std::logic_error("JsonWriter: mismatched endArray");
  out_ += ']';
  stack_.pop_back();
  hasElements_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (stack_.empty() || stack_.back() != Frame::Object || pendingKey_)
    throw std::logic_error("JsonWriter: key outside object");
  if (hasElements_.back()) out_ += ',';
  hasElements_.back() = true;
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  pendingKey_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  beforeValue();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  beforeValue();
  if (std::isfinite(v)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out_ += buf;
  } else {
    out_ += "null";  // JSON has no Inf/NaN
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  beforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  beforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  beforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::nullValue() {
  beforeValue();
  out_ += "null";
  return *this;
}

const std::string& JsonWriter::str() const {
  if (!stack_.empty()) throw std::logic_error("JsonWriter: unclosed containers");
  return out_;
}

}  // namespace resex
