// Minimal streaming JSON emitter (no dependencies, no DOM).
//
// Used to export rebalance results and experiment records in a form other
// tooling can consume. Keys/values are written in call order; the writer
// tracks nesting and comma placement and validates basic misuse.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace resex {

class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Key inside an object; must be followed by a value or container.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& nullValue();

  /// key + value in one call.
  template <typename T>
  JsonWriter& field(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

  /// The document; valid once all containers are closed.
  const std::string& str() const;

  static std::string escape(const std::string& raw);

 private:
  enum class Frame { Object, Array };
  void beforeValue();

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> hasElements_;
  bool pendingKey_ = false;
};

}  // namespace resex
