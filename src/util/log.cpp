#include "util/log.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>

namespace resex {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* levelName(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?????";
  }
}

}  // namespace

void setLogLevel(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel logLevel() noexcept { return g_level.load(std::memory_order_relaxed); }

void logf(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  char line[2048];
  const int prefix = std::snprintf(line, sizeof line, "[resex %s] ", levelName(level));
  if (prefix < 0) return;
  va_list args;
  va_start(args, fmt);
  const int body = std::vsnprintf(line + prefix,
                                  sizeof line - static_cast<std::size_t>(prefix) - 2,
                                  fmt, args);
  va_end(args);
  if (body < 0) return;
  // vsnprintf returns the untruncated length; clamp to what actually fits
  // so the newline append stays inside the buffer.
  const std::size_t len =
      std::min(static_cast<std::size_t>(prefix) + static_cast<std::size_t>(body),
               sizeof line - 2);
  line[len] = '\n';
  line[len + 1] = '\0';
  std::fputs(line, stderr);
}

}  // namespace resex
