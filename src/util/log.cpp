#include "util/log.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <memory>
#include <mutex>

namespace resex {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

std::mutex g_sinkMutex;
std::shared_ptr<const LogSink> g_sink;  // null = stderr

const char* levelName(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?????";
  }
}

/// ISO-8601 UTC with milliseconds, e.g. 2026-08-05T12:34:56.789Z.
int formatTimestamp(char* buf, std::size_t size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  return std::snprintf(buf, size, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                       tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                       tm.tm_min, tm.tm_sec, static_cast<int>(millis));
}

}  // namespace

void setLogLevel(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel logLevel() noexcept { return g_level.load(std::memory_order_relaxed); }

void setLogSink(LogSink sink) {
  std::lock_guard lock(g_sinkMutex);
  g_sink = sink ? std::make_shared<const LogSink>(std::move(sink)) : nullptr;
}

std::uint32_t logThreadId() noexcept {
  static std::atomic<std::uint32_t> nextId{1};
  thread_local const std::uint32_t id =
      nextId.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void logf(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  char line[2048];
  char stamp[40];
  formatTimestamp(stamp, sizeof stamp);
  const int prefix = std::snprintf(line, sizeof line, "[%s T%u resex %s] ",
                                   stamp, logThreadId(), levelName(level));
  if (prefix < 0) return;
  va_list args;
  va_start(args, fmt);
  const int body = std::vsnprintf(line + prefix,
                                  sizeof line - static_cast<std::size_t>(prefix) - 2,
                                  fmt, args);
  va_end(args);
  if (body < 0) return;
  // vsnprintf returns the untruncated length; clamp to what actually fits
  // so the newline append stays inside the buffer.
  const std::size_t len =
      std::min(static_cast<std::size_t>(prefix) + static_cast<std::size_t>(body),
               sizeof line - 2);

  std::shared_ptr<const LogSink> sink;
  {
    std::lock_guard lock(g_sinkMutex);
    sink = g_sink;
  }
  if (sink) {
    line[len] = '\0';
    (*sink)(level, std::string(line, len));
    return;
  }
  line[len] = '\n';
  line[len + 1] = '\0';
  std::fputs(line, stderr);
}

}  // namespace resex
