// Minimal leveled logger.
//
// The library itself logs sparingly (experiments print their own tables);
// logging exists for debugging solver behaviour at Debug level. Each line
// carries an ISO-8601 UTC timestamp and a small per-thread id:
//
//   [2026-08-05T12:34:56.789Z T1 resex INFO ] message
//
// Output goes to stderr unless a sink is installed with setLogSink()
// (tests capture lines that way).
#pragma once

#include <cstdarg>
#include <cstdint>
#include <functional>
#include <string>

namespace resex {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global threshold; messages below it are dropped.
void setLogLevel(LogLevel level) noexcept;
LogLevel logLevel() noexcept;

/// Receives each formatted line (no trailing newline). Thread-safe to
/// install at any time; pass nullptr to restore the stderr default.
using LogSink = std::function<void(LogLevel, const std::string& line)>;
void setLogSink(LogSink sink);

/// Small dense id of the calling thread (1, 2, ... in first-log order).
std::uint32_t logThreadId() noexcept;

/// printf-style logging. Thread-safe (single atomic write per line).
void logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

#define RESEX_LOG_DEBUG(...) ::resex::logf(::resex::LogLevel::Debug, __VA_ARGS__)
#define RESEX_LOG_INFO(...) ::resex::logf(::resex::LogLevel::Info, __VA_ARGS__)
#define RESEX_LOG_WARN(...) ::resex::logf(::resex::LogLevel::Warn, __VA_ARGS__)
#define RESEX_LOG_ERROR(...) ::resex::logf(::resex::LogLevel::Error, __VA_ARGS__)

}  // namespace resex
