// Minimal leveled logger writing to stderr.
//
// The library itself logs sparingly (experiments print their own tables);
// logging exists for debugging solver behaviour at Debug level.
#pragma once

#include <cstdarg>
#include <string>

namespace resex {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global threshold; messages below it are dropped.
void setLogLevel(LogLevel level) noexcept;
LogLevel logLevel() noexcept;

/// printf-style logging. Thread-safe (single atomic write per line).
void logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

#define RESEX_LOG_DEBUG(...) ::resex::logf(::resex::LogLevel::Debug, __VA_ARGS__)
#define RESEX_LOG_INFO(...) ::resex::logf(::resex::LogLevel::Info, __VA_ARGS__)
#define RESEX_LOG_WARN(...) ::resex::logf(::resex::LogLevel::Warn, __VA_ARGS__)
#define RESEX_LOG_ERROR(...) ::resex::logf(::resex::LogLevel::Error, __VA_ARGS__)

}  // namespace resex
