#include "util/rng.hpp"

#include <cmath>

namespace resex {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless bounded draw with rejection to remove bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (hasSpare_) {
    hasSpare_ = false;
    return spareNormal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spareNormal_ = v * factor;
  hasSpare_ = true;
  return u * factor;
}

double Rng::exponential(double rate) noexcept {
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::pareto(double xm, double alpha) noexcept {
  return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

std::size_t Rng::discrete(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += w;
  if (total <= 0.0 || weights.empty()) return 0;
  double pick = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sampleIndices(std::size_t n, std::size_t count) {
  if (count >= n) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  // Floyd's algorithm: count draws, no rejection loop over a hash set scan.
  std::vector<std::size_t> picked;
  picked.reserve(count);
  std::vector<bool> seen(n, false);
  for (std::size_t j = n - count; j < n; ++j) {
    const std::size_t t = static_cast<std::size_t>(below(j + 1));
    if (!seen[t]) {
      seen[t] = true;
      picked.push_back(t);
    } else {
      seen[j] = true;
      picked.push_back(j);
    }
  }
  return picked;
}

}  // namespace resex
