// Deterministic pseudo-random number generation for resex.
//
// Everything stochastic in the library draws from an explicitly seeded
// Rng so that experiments are reproducible bit-for-bit. The generator is
// xoshiro256** (Blackman & Vigna), seeded through SplitMix64; it is much
// faster than std::mt19937_64 and has no observable statistical defects
// at the scales used here.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace resex {

/// SplitMix64 step: used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator, so it can also be plugged into
/// <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x2545f4914f6cdd1dULL) noexcept { reseed(seed); }

  /// Reinitializes the state from a single 64-bit seed.
  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  /// Next raw 64-bit value.
  std::uint64_t operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, bound). bound == 0 returns 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Two *distinct* uniform indices in [0, bound); requires bound >= 2.
  /// This is the power-of-two-choices draw: sampling the second index with
  /// replacement silently degrades to a single random choice whenever the
  /// draws collide.
  std::pair<std::uint64_t, std::uint64_t> twoDistinct(std::uint64_t bound) noexcept {
    const std::uint64_t first = below(bound);
    std::uint64_t second = below(bound - 1);
    if (second >= first) ++second;
    return {first, second};
  }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with probability p of true.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (cached spare).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Pareto (Lomax-shifted) with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha) noexcept;

  /// Log-normal with the given log-space mu/sigma.
  double lognormal(double mu, double sigma) noexcept;

  /// Index draw proportional to non-negative weights; empty/all-zero -> 0.
  std::size_t discrete(std::span<const double> weights) noexcept;

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[below(i)]);
    }
  }

  /// Samples `count` distinct indices from [0, n) (count > n returns all n).
  std::vector<std::size_t> sampleIndices(std::size_t n, std::size_t count);

  /// Derives an independent child generator (for per-thread streams).
  Rng split() noexcept {
    const std::uint64_t s = (*this)();
    return Rng(s ^ 0x9e3779b97f4a7c15ULL);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spareNormal_ = 0.0;
  bool hasSpare_ = false;
};

}  // namespace resex
