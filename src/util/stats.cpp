#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace resex {

void OnlineStats::add(double x) noexcept {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::cv() const noexcept {
  const double m = mean();
  return m != 0.0 ? stddev() / m : 0.0;
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

std::vector<double> quantiles(std::vector<double> values, std::span<const double> qs) {
  std::vector<double> out;
  out.reserve(qs.size());
  if (values.empty()) {
    out.assign(qs.size(), 0.0);
    return out;
  }
  std::sort(values.begin(), values.end());
  for (double q : qs) {
    q = std::clamp(q, 0.0, 1.0);
    const double pos = q * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    out.push_back(values[lo] + frac * (values[hi] - values[lo]));
  }
  return out;
}

double jainFairness(std::span<const double> values) noexcept {
  if (values.empty()) return 1.0;
  double sum = 0.0;
  double sumSq = 0.0;
  for (const double v : values) {
    sum += v;
    sumSq += v * v;
  }
  if (sumSq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(values.size()) * sumSq);
}

double gini(std::vector<double> values) {
  if (values.size() < 2) return 0.0;
  std::sort(values.begin(), values.end());
  double cumWeighted = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    cumWeighted += static_cast<double>(i + 1) * values[i];
    total += values[i];
  }
  if (total == 0.0) return 0.0;
  const double n = static_cast<double>(values.size());
  return (2.0 * cumWeighted) / (n * total) - (n + 1.0) / n;
}

double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double maxOf(std::span<const double> values) noexcept {
  double best = 0.0;
  bool first = true;
  for (const double v : values) {
    best = first ? v : std::max(best, v);
    first = false;
  }
  return best;
}

}  // namespace resex
