// Online and batch statistics used throughout metrics and experiments.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace resex {

/// Welford online accumulator for mean/variance/min/max.
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Population variance (divides by n).
  double variance() const noexcept { return count_ ? m2_ / static_cast<double>(count_) : 0.0; }
  /// Sample variance (divides by n-1); 0 when fewer than two samples.
  double sampleVariance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const noexcept;
  /// Coefficient of variation: stddev / mean (0 when mean is 0).
  double cv() const noexcept;
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Quantile of a sample using linear interpolation (type-7, numpy default).
/// q in [0, 1]; empty input returns 0.
double quantile(std::vector<double> values, double q);

/// Several quantiles at once; sorts the sample a single time.
std::vector<double> quantiles(std::vector<double> values, std::span<const double> qs);

/// Jain's fairness index: (sum x)^2 / (n * sum x^2); 1 when perfectly even.
/// Empty or all-zero input returns 1.
double jainFairness(std::span<const double> values) noexcept;

/// Gini coefficient of a non-negative sample; 0 when perfectly even.
double gini(std::vector<double> values);

/// Arithmetic mean; empty input returns 0.
double mean(std::span<const double> values) noexcept;

/// Maximum; empty input returns 0.
double maxOf(std::span<const double> values) noexcept;

}  // namespace resex
