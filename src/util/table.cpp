#include "util/table.hpp"

#include <cstdio>
#include <iostream>
#include <stdexcept>

namespace resex {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::addRow(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("Table: row arity does not match header");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  return s;
}

std::string Table::num(std::size_t value) {
  return std::to_string(value);
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return std::string(buf);
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emitRow = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(widths[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) out += "  ";
    }
    out += '\n';
  };

  std::string out;
  emitRow(header_, out);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    out.append(widths[c], '-');
    if (c + 1 < widths.size()) out += "  ";
  }
  out += '\n';
  for (const auto& row : rows_) emitRow(row, out);
  return out;
}

void Table::print(std::ostream& os) const { os << render(); }

void Table::print() const { std::cout << render() << std::flush; }

}  // namespace resex
