// Console table printer: the bench harnesses print paper-style tables with
// aligned columns through this helper.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace resex {

/// Column-aligned text table. Add a header then rows of stringly cells;
/// numeric helpers format doubles compactly.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void addRow(std::vector<std::string> cells);

  /// Formats a double with the given precision, trimming trailing zeros.
  static std::string num(double value, int precision = 3);
  /// Integer cell.
  static std::string num(std::size_t value);
  /// Percentage cell, e.g. 12.3%.
  static std::string pct(double fraction, int precision = 1);

  std::size_t rowCount() const noexcept { return rows_.size(); }

  /// Renders with a separator line under the header.
  std::string render() const;
  void print(std::ostream& os) const;
  /// Renders to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace resex
