#include "util/thread_pool.hpp"

#include <algorithm>

namespace resex {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idleCv_.notify_all();
    }
  }
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  idleCv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

ThreadPool& globalPool() {
  static ThreadPool pool;
  return pool;
}

void parallelForBlocked(std::size_t n,
                        const std::function<void(std::size_t, std::size_t)>& fn,
                        std::size_t grainSize) {
  if (n == 0) return;
  ThreadPool& pool = globalPool();
  if (n <= grainSize || pool.threadCount() == 1) {
    fn(0, n);
    return;
  }
  const std::size_t blocks =
      std::min((n + grainSize - 1) / grainSize, pool.threadCount() * 4);
  const std::size_t per = (n + blocks - 1) / blocks;
  std::vector<std::future<void>> futures;
  futures.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * per;
    if (lo >= n) break;
    const std::size_t hi = std::min(lo + per, n);
    futures.push_back(pool.submit([&fn, lo, hi] { fn(lo, hi); }));
  }
  for (auto& f : futures) f.get();  // propagates the first exception
}

void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                 std::size_t grainSize) {
  parallelForBlocked(
      n,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      grainSize);
}

}  // namespace resex
