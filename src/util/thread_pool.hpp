// Work-queue thread pool and a blocked parallel_for built on it.
//
// The pool is deliberately simple (single mutex-protected deque): tasks in
// this library are coarse (whole LNS searches, per-epoch simulations,
// instance-generation blocks), so queue contention is negligible and the
// simplicity buys easy reasoning about shutdown and exceptions.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace resex {

class ThreadPool {
 public:
  /// threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const noexcept { return workers_.size(); }

  /// Enqueues a task; the future rethrows any exception the task threw.
  template <typename F>
  std::future<std::invoke_result_t<F>> submit(F&& fn) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Blocks until every task submitted so far has completed.
  void wait();

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idleCv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

/// Shared process-wide pool (lazily constructed, sized to the hardware).
ThreadPool& globalPool();

/// Runs fn(i) for i in [0, n) across the pool in contiguous blocks.
/// Exceptions from any block are rethrown (first one wins). For n below
/// `grainSize` the loop runs inline to avoid dispatch overhead.
void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                 std::size_t grainSize = 256);

/// Runs fn(block_begin, block_end) over contiguous ranges covering [0, n).
void parallelForBlocked(std::size_t n,
                        const std::function<void(std::size_t, std::size_t)>& fn,
                        std::size_t grainSize = 256);

}  // namespace resex
