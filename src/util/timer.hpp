// Wall-clock timing helpers.
#pragma once

#include <algorithm>
#include <chrono>
#include <limits>

namespace resex {

/// Monotonic stopwatch started at construction.
class WallTimer {
 public:
  WallTimer() noexcept : start_(clock::now()) {}

  void restart() noexcept { start_ = clock::now(); }

  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const noexcept { return seconds() * 1e3; }
  double micros() const noexcept { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Simple deadline: construct with a budget in seconds, poll expired().
class Deadline {
 public:
  explicit Deadline(double budgetSeconds) noexcept : budget_(budgetSeconds) {}

  /// Never expires; for benches that want deadline plumbing without one.
  static Deadline unlimited() noexcept {
    return Deadline(std::numeric_limits<double>::infinity());
  }

  bool expired() const noexcept { return timer_.seconds() >= budget_; }
  /// Budget left, clamped at 0 so callers never see a negative budget.
  double remaining() const noexcept {
    return std::max(0.0, budget_ - timer_.seconds());
  }
  double budget() const noexcept { return budget_; }
  double elapsed() const noexcept { return timer_.seconds(); }

 private:
  WallTimer timer_;
  double budget_;
};

}  // namespace resex
