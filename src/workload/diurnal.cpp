#include "workload/diurnal.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace resex {

double DiurnalModel::multiplier(double hour, double phaseShiftHours) const noexcept {
  constexpr double kTwoPi = 2.0 * std::numbers::pi;
  const double t = (hour + phaseShiftHours - peakHour) / 24.0;
  const double primary = std::cos(kTwoPi * t);
  const double secondary = std::cos(2.0 * kTwoPi * t);
  const double value = base * (1.0 + amplitude * primary + secondHarmonic * amplitude * secondary);
  return std::max(0.05, value);
}

}  // namespace resex
