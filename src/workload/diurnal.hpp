// Diurnal load model: smooth day/night demand multiplier with per-entity
// phase jitter, the standard shape of search-engine query traffic.
#pragma once

#include <cstddef>

namespace resex {

struct DiurnalModel {
  /// Mean multiplier across the day.
  double base = 1.0;
  /// Peak-to-mean swing (0 = flat, 0.5 = peaks 50% above base).
  double amplitude = 0.4;
  /// Hour of the primary peak (0..24).
  double peakHour = 14.0;
  /// Weight of the secondary harmonic (morning/evening double peak).
  double secondHarmonic = 0.15;

  /// Multiplier at `hour` in [0, 24), optionally phase-shifted per entity.
  double multiplier(double hour, double phaseShiftHours = 0.0) const noexcept;
};

}  // namespace resex
