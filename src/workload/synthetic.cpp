#include "workload/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace resex {
namespace {

constexpr double kBaseCapacity = 100.0;

/// Scales `values` so they sum to `target` with every entry <= cap
/// (water-filling): entries that would exceed the cap are pinned there and
/// the remainder is rescaled, repeated until stable. Throws if even
/// all-at-cap cannot reach the target.
void waterFill(std::vector<double*>& values, double target, double cap) {
  if (target > cap * static_cast<double>(values.size()) + 1e-9)
    throw std::runtime_error(
        "generateSynthetic: load factor unreachable under the shard-size cap");
  std::vector<double*> free = values;
  double pinnedSum = 0.0;
  for (int round = 0; round < 64 && !free.empty(); ++round) {
    double freeSum = 0.0;
    for (const double* v : free) freeSum += *v;
    if (freeSum <= 0.0) break;
    const double scale = (target - pinnedSum) / freeSum;
    bool pinnedAny = false;
    std::vector<double*> stillFree;
    stillFree.reserve(free.size());
    for (double* v : free) {
      if (*v * scale >= cap) {
        *v = cap;
        pinnedSum += cap;
        pinnedAny = true;
      } else {
        stillFree.push_back(v);
      }
    }
    if (!pinnedAny) {
      for (double* v : stillFree) *v *= scale;
      return;
    }
    free = std::move(stillFree);
  }
  // Everything pinned (or zero-sum remainder): the feasibility check above
  // guarantees the pinned sum is within tolerance of the target.
}

}  // namespace

Instance generateSynthetic(const SyntheticConfig& config) {
  if (config.machines == 0) throw std::invalid_argument("generateSynthetic: no machines");
  if (config.dims == 0 || config.dims > kMaxResourceDims)
    throw std::invalid_argument("generateSynthetic: bad dims");
  if (config.loadFactor <= 0.0 || config.loadFactor >= 1.0)
    throw std::invalid_argument("generateSynthetic: loadFactor must be in (0,1)");
  Rng rng(config.seed);

  const std::size_t dims = config.dims;
  const std::size_t regular = config.machines;
  const std::size_t total = regular + config.exchangeMachines;

  // --- Machines: a few capacity SKUs; exchange machines drawn the same way.
  std::vector<Machine> machines(total);
  for (std::size_t i = 0; i < total; ++i) {
    const auto sku = static_cast<std::uint32_t>(rng.below(std::max<std::size_t>(1, config.skuCount)));
    const double scale = std::pow(config.skuRatio, static_cast<double>(sku));
    machines[i].id = static_cast<MachineId>(i);
    machines[i].sku = sku;
    machines[i].isExchange = i >= regular;
    machines[i].capacity = ResourceVector(dims, kBaseCapacity * scale);
  }

  ResourceVector regularCapacity(dims);
  for (std::size_t i = 0; i < regular; ++i) regularCapacity += machines[i].capacity;

  // --- Shards: heavy-tailed base demand, correlated dimensions, hotspots.
  // With replication, demands are drawn per logical shard and copied to
  // each replica (replicas serve an equal share of the logical load).
  const std::size_t repl = std::max<std::size_t>(1, config.replicationFactor);
  if (repl > regular)
    throw std::invalid_argument("generateSynthetic: replication exceeds machines");
  const auto physicalTarget = static_cast<std::size_t>(
      std::llround(static_cast<double>(regular) * config.shardsPerMachine));
  const std::size_t logicalCount = std::max<std::size_t>(1, physicalTarget / repl);
  const std::size_t shardCount = logicalCount * repl;
  std::vector<Shard> shards(shardCount);
  std::vector<std::uint32_t> groups(shardCount);
  const double rho = std::clamp(config.dimCorrelation, 0.0, 1.0);
  for (std::size_t g = 0; g < logicalCount; ++g) {
    ResourceVector demand(dims);
    double base = rng.lognormal(0.0, config.shardSizeSigma);
    if (rng.chance(config.hotspotFraction)) base *= config.hotspotMultiplier;
    demand[0] = base;
    for (std::size_t d = 1; d < dims; ++d) {
      const double indep = rng.lognormal(0.0, config.shardSizeSigma);
      demand[d] = rho * base + (1.0 - rho) * indep;
    }
    for (std::size_t r = 0; r < repl; ++r) {
      const std::size_t s = g * repl + r;
      shards[s].id = static_cast<ShardId>(s);
      shards[s].demand = demand;
      groups[s] = static_cast<std::uint32_t>(g);
    }
  }

  // Normalize every dimension to the requested load factor (so the worst
  // dimension sits exactly at config.loadFactor) while capping any single
  // shard at maxShardFraction of the smallest machine; without the cap, a
  // heavy lognormal tail can mint a shard no machine can host.
  for (std::size_t d = 0; d < dims; ++d) {
    double minCap = machines[0].capacity[d];
    for (std::size_t i = 0; i < regular; ++i)
      minCap = std::min(minCap, machines[i].capacity[d]);
    std::vector<double*> dimDemands;
    dimDemands.reserve(shards.size());
    for (Shard& s : shards) dimDemands.push_back(&s.demand[d]);
    waterFill(dimDemands, config.loadFactor * regularCapacity[d],
              config.maxShardFraction * minCap);
  }
  for (Shard& s : shards)
    s.moveBytes = config.bytesPerDemand * s.demand[dims - 1] * rng.uniform(0.8, 1.2);

  // --- Initial placement: Zipf-weighted "stickiness" per machine creates a
  // skewed but capacity-feasible start (the state rebalancers inherit).
  // On very tight instances a heavy skew can paint itself into a corner;
  // the placement is then retried with progressively less skew (the last
  // attempt is plain best-fit-decreasing) before giving up.
  std::vector<std::size_t> order(shardCount);
  for (std::size_t s = 0; s < shardCount; ++s) order[s] = s;
  // Place big shards first so the tail always finds room.
  std::sort(order.begin(), order.end(), [&shards](std::size_t a, std::size_t b) {
    return shards[a].demand.maxComponent() > shards[b].demand.maxComponent();
  });

  std::vector<MachineId> initial;
  for (const double skewScale : {1.0, 0.5, 0.25, 0.0}) {
    const double skew = config.placementSkew * skewScale;
    std::vector<double> stickiness(regular);
    for (std::size_t i = 0; i < regular; ++i) {
      const double rank = static_cast<double>(i + 1);
      stickiness[i] = std::pow(rank, -skew) * machines[i].capacity.sum() /
                      (kBaseCapacity * static_cast<double>(dims));
    }
    rng.shuffle(stickiness);

    std::vector<ResourceVector> loads(regular, ResourceVector(dims));
    std::vector<MachineId> attempt(shardCount, kNoMachine);
    auto fits = [&](std::size_t s, std::size_t machineIdx) {
      if (repl > 1) {
        const std::size_t g = s / repl;
        for (std::size_t r = 0; r < repl; ++r) {
          const std::size_t peer = g * repl + r;
          if (peer != s && attempt[peer] == machineIdx) return false;
        }
      }
      const ResourceVector after = loads[machineIdx] + shards[s].demand;
      return after.fitsWithin(machines[machineIdx].capacity);
    };

    bool placedAll = true;
    for (const std::size_t s : order) {
      MachineId chosen = kNoMachine;
      if (skewScale > 0.0) {
        for (int tries = 0; tries < 24; ++tries) {
          const std::size_t cand = rng.discrete(stickiness);
          if (fits(s, cand)) {
            chosen = static_cast<MachineId>(cand);
            break;
          }
        }
      }
      if (chosen == kNoMachine) {
        // Best-fit by resulting utilization among feasible machines.
        double bestUtil = 0.0;
        for (std::size_t cand = 0; cand < regular; ++cand) {
          if (!fits(s, cand)) continue;
          const double util = (loads[cand] + shards[s].demand)
                                  .utilizationAgainst(machines[cand].capacity);
          if (chosen == kNoMachine || util < bestUtil) {
            chosen = static_cast<MachineId>(cand);
            bestUtil = util;
          }
        }
      }
      if (chosen == kNoMachine) {
        placedAll = false;
        break;
      }
      loads[chosen] += shards[s].demand;
      attempt[s] = chosen;
    }
    if (placedAll) {
      initial = std::move(attempt);
      break;
    }
  }
  if (initial.empty())
    throw std::runtime_error(
        "generateSynthetic: no feasible initial placement; lower loadFactor");

  ResourceVector gamma(dims);
  gamma[0] = config.gammaCpu;
  for (std::size_t d = 1; d < dims; ++d) gamma[d] = config.gammaOther;

  if (repl == 1) groups.clear();  // identity groups; let Instance default them
  return Instance(dims, std::move(machines), std::move(shards), std::move(initial),
                  config.exchangeMachines, std::move(gamma), std::move(groups));
}

Instance tinyTestInstance(std::uint64_t seed, std::size_t machines, std::size_t shards,
                          std::size_t exchange, double loadFactor) {
  SyntheticConfig config;
  config.seed = seed;
  config.machines = machines;
  config.exchangeMachines = exchange;
  config.shardsPerMachine =
      static_cast<double>(shards) / static_cast<double>(machines);
  config.dims = 2;
  config.loadFactor = loadFactor;
  config.skuCount = 1;
  config.hotspotFraction = 0.0;
  return generateSynthetic(config);
}

}  // namespace resex
