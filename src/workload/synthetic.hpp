// Synthetic RESEX instance generation.
//
// Reproduces the statistical features that make production shard
// rebalancing hard: heavy-tailed shard demands, correlated resource
// dimensions, heterogeneous machine SKUs, and a skewed (imbalanced but
// feasible) initial placement.
#pragma once

#include <cstdint>

#include "cluster/instance.hpp"
#include "util/rng.hpp"

namespace resex {

struct SyntheticConfig {
  std::uint64_t seed = 1;
  /// Regular machines.
  std::size_t machines = 100;
  /// Borrowed exchange machines appended after the regular ones.
  std::size_t exchangeMachines = 4;
  /// Average shards per regular machine.
  double shardsPerMachine = 20.0;
  std::size_t dims = 2;
  /// Target worst-dimension (total demand) / (total regular capacity).
  double loadFactor = 0.7;
  /// Lognormal sigma of shard base demand: 0 = equal shards, ~1 = heavy tail.
  double shardSizeSigma = 0.8;
  /// Correlation in [0,1] between dimension 0 and the others (1 = identical
  /// shape, 0 = independent).
  double dimCorrelation = 0.5;
  /// Distinct machine capacity classes (1 = homogeneous).
  std::size_t skuCount = 2;
  /// Capacity ratio between successive SKUs (sku i has base * ratio^i).
  double skuRatio = 1.5;
  /// Fraction of shards whose demand is inflated (hot shards).
  double hotspotFraction = 0.05;
  /// Demand multiplier applied to hot shards before normalization.
  double hotspotMultiplier = 4.0;
  /// Skew of the initial placement: 0 = near-balanced start, larger values
  /// concentrate shards on a few "sticky" machines (Zipf-weighted).
  double placementSkew = 0.8;
  /// No shard may exceed this fraction of the smallest machine's capacity
  /// in any dimension (production shards are machine-splittable units).
  /// Enforced by water-filling, so the load-factor target stays exact.
  double maxShardFraction = 0.5;
  /// Replicas per logical shard (1 = unreplicated). Replicas share a
  /// demand vector and must live on distinct machines (anti-affinity);
  /// shardsPerMachine counts physical shards (replicas included).
  std::size_t replicationFactor = 1;
  /// Per-dimension transient fraction; dims beyond the list reuse the last
  /// entry. Default: dim 0 (cpu) copies cost 30%, all others duplicate fully.
  double gammaCpu = 0.3;
  double gammaOther = 1.0;
  /// Mean migration bytes per unit of (last-dimension) demand.
  double bytesPerDemand = 1e9;
};

/// Generates a validated, capacity-feasible instance. Throws
/// std::runtime_error if the requested load factor leaves no feasible
/// initial placement (practically only for loadFactor near or above 1).
Instance generateSynthetic(const SyntheticConfig& config);

/// Convenience: a small instance suitable for unit tests (fast, feasible).
Instance tinyTestInstance(std::uint64_t seed = 7, std::size_t machines = 6,
                          std::size_t shards = 24, std::size_t exchange = 2,
                          double loadFactor = 0.6);

}  // namespace resex
