#include "workload/trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace resex {

Trace::Trace(const Instance& base, TraceConfig config,
             std::vector<std::vector<ResourceVector>> demands)
    : base_(&base), config_(config), demands_(std::move(demands)) {
  for (const auto& epoch : demands_)
    if (epoch.size() != base.shardCount())
      throw std::invalid_argument("Trace: demand row size mismatch");
}

double Trace::epochLoadFactor(std::size_t epoch) const {
  ResourceVector total(base_->dims());
  for (const ResourceVector& w : demands_.at(epoch)) total += w;
  return total.utilizationAgainst(base_->totalRegularCapacity());
}

Instance Trace::instanceForEpoch(std::size_t epoch,
                                 const std::vector<MachineId>& currentMapping) const {
  const auto& epochDemands = demands_.at(epoch);
  if (currentMapping.size() != base_->shardCount())
    throw std::invalid_argument("Trace: mapping size mismatch");

  // The k machines that are vacant under currentMapping are "returned" and
  // re-borrowed as this epoch's exchange machines: relabel them to the tail.
  const std::size_t m = base_->machineCount();
  const std::size_t k = base_->exchangeCount();
  std::vector<bool> occupied(m, false);
  for (const MachineId mach : currentMapping) {
    if (mach == kNoMachine || mach >= m)
      throw std::invalid_argument("Trace: mapping references unknown machine");
    occupied[mach] = true;
  }
  std::vector<MachineId> vacant;
  for (MachineId mach = 0; mach < m; ++mach)
    if (!occupied[mach]) vacant.push_back(mach);
  if (vacant.size() < k)
    throw std::runtime_error("Trace: fewer vacant machines than the exchange count");
  vacant.resize(k);

  std::vector<bool> isReturned(m, false);
  for (const MachineId mach : vacant) isReturned[mach] = true;

  // newIndex[old] = position in the relabeled machine array.
  std::vector<MachineId> newIndex(m, 0);
  std::vector<Machine> machines;
  machines.reserve(m);
  for (MachineId mach = 0; mach < m; ++mach) {
    if (isReturned[mach]) continue;
    newIndex[mach] = static_cast<MachineId>(machines.size());
    Machine copy = base_->machine(mach);
    copy.id = newIndex[mach];
    copy.isExchange = false;
    machines.push_back(copy);
  }
  for (const MachineId mach : vacant) {
    newIndex[mach] = static_cast<MachineId>(machines.size());
    Machine copy = base_->machine(mach);
    copy.id = newIndex[mach];
    copy.isExchange = true;
    machines.push_back(copy);
  }

  std::vector<Shard> shards(base_->shardCount());
  std::vector<MachineId> initial(base_->shardCount());
  for (ShardId s = 0; s < base_->shardCount(); ++s) {
    shards[s] = base_->shard(s);
    shards[s].demand = epochDemands[s];
    initial[s] = newIndex[currentMapping[s]];
  }

  std::vector<std::uint32_t> groups;
  if (base_->hasReplication()) {
    groups.resize(base_->shardCount());
    for (ShardId s = 0; s < base_->shardCount(); ++s)
      groups[s] = base_->replicaGroupOf(s);
  }
  return Instance(base_->dims(), std::move(machines), std::move(shards), std::move(initial),
                  k, base_->transientGamma(), std::move(groups));
}

Trace generateTrace(const Instance& base, const TraceConfig& config) {
  if (config.epochs == 0) throw std::invalid_argument("generateTrace: zero epochs");
  Rng rng(config.seed);
  const std::size_t n = base.shardCount();
  const std::size_t dims = base.dims();

  std::vector<double> phase(n);
  for (std::size_t s = 0; s < n; ++s)
    phase[s] = rng.normal(0.0, config.shardPhaseJitterHours);

  std::vector<double> drift(n, 1.0);
  std::vector<double> hotspot(n, 1.0);

  std::vector<std::vector<ResourceVector>> demands(config.epochs);
  for (std::size_t e = 0; e < config.epochs; ++e) {
    const double hour = std::fmod(static_cast<double>(e) * config.epochHours, 24.0);
    demands[e].reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
      drift[s] *= rng.lognormal(0.0, config.driftSigma);
      // Pull drift gently back toward 1 so no shard diverges without bound.
      drift[s] = std::pow(drift[s], 0.98);
      if (hotspot[s] > 1.0)
        hotspot[s] = 1.0 + (hotspot[s] - 1.0) * config.hotspotDecay;
      if (rng.chance(config.hotspotRate)) hotspot[s] = config.hotspotMultiplier;
      const double mult =
          config.diurnal.multiplier(hour, phase[s]) * drift[s] * hotspot[s];
      demands[e].push_back(base.shard(static_cast<ShardId>(s)).demand * mult);
    }
  }

  // Normalize so the worst epoch's load factor equals peakLoadFactor.
  const ResourceVector capacity = base.totalRegularCapacity();
  double worst = 0.0;
  for (const auto& epoch : demands) {
    ResourceVector total(dims);
    for (const ResourceVector& w : epoch) total += w;
    worst = std::max(worst, total.utilizationAgainst(capacity));
  }
  if (worst > 0.0) {
    const double scale = config.peakLoadFactor / worst;
    for (auto& epoch : demands)
      for (ResourceVector& w : epoch) w *= scale;
  }

  return Trace(base, config, std::move(demands));
}

}  // namespace resex
