// Multi-epoch demand traces: the stand-in for the paper's "real data from
// actual datacenters".
//
// Starting from a base instance, each shard's demand evolves across epochs
// by (a) a diurnal multiplier with per-shard phase jitter, (b) a lognormal
// random-walk drift, and (c) occasional hotspot spikes that decay over
// time. Demands are normalized so the worst epoch hits a configured peak
// load factor. The result reproduces what production rebalancers face: a
// placement that was fine an hour ago and is now imbalanced.
#pragma once

#include <vector>

#include "cluster/instance.hpp"
#include "workload/diurnal.hpp"

namespace resex {

struct TraceConfig {
  std::uint64_t seed = 1;
  std::size_t epochs = 24;
  /// Simulated hours per epoch (epoch e is at hour e * epochHours).
  double epochHours = 1.0;
  DiurnalModel diurnal;
  /// Std-dev of the per-shard diurnal phase shift in hours.
  double shardPhaseJitterHours = 3.0;
  /// Per-epoch lognormal random-walk sigma on each shard's demand.
  double driftSigma = 0.06;
  /// Per-epoch probability a shard becomes hot.
  double hotspotRate = 0.02;
  double hotspotMultiplier = 3.0;
  /// Multiplicative decay of an active hotspot per epoch (0..1).
  double hotspotDecay = 0.5;
  /// The worst epoch's (demand / regular capacity) ratio after scaling.
  double peakLoadFactor = 0.85;
};

/// A realized trace: per-epoch demand vectors for every shard of a base
/// instance, plus helpers to materialize per-epoch instances.
///
/// LIFETIME: a Trace refers to (does not own) its base Instance; the base
/// must outlive the Trace. Returning a Trace from a function that created
/// the base on its stack is a dangling reference.
class Trace {
 public:
  Trace(const Instance& base, TraceConfig config,
        std::vector<std::vector<ResourceVector>> demands);

  std::size_t epochCount() const noexcept { return demands_.size(); }
  std::size_t shardCount() const noexcept { return base_->shardCount(); }
  const Instance& base() const noexcept { return *base_; }
  const TraceConfig& config() const noexcept { return config_; }

  const ResourceVector& demand(std::size_t epoch, ShardId shard) const {
    return demands_.at(epoch).at(shard);
  }

  /// Materializes epoch `epoch` as a full Instance whose initial assignment
  /// is `currentMapping` (where the cluster actually is when the epoch
  /// begins). The mapping may be capacity-infeasible under the new demands;
  /// that is precisely the condition a rebalancer is invoked to fix.
  Instance instanceForEpoch(std::size_t epoch,
                            const std::vector<MachineId>& currentMapping) const;

  /// Worst-dimension load factor of one epoch.
  double epochLoadFactor(std::size_t epoch) const;

 private:
  const Instance* base_;
  TraceConfig config_;
  /// demands_[epoch][shard]
  std::vector<std::vector<ResourceVector>> demands_;
};

/// Generates a trace over the shards of `base`.
Trace generateTrace(const Instance& base, const TraceConfig& config);

}  // namespace resex
