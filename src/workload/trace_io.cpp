#include "workload/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace resex {

void saveTraceCsv(const Trace& trace, const std::string& path) {
  CsvWriter csv(path);
  const std::size_t dims = trace.base().dims();
  std::vector<std::string> header{"epoch", "shard"};
  for (std::size_t d = 0; d < dims; ++d)
    header.push_back("demand_" + std::to_string(d));
  csv.writeHeader(header);

  char buf[64];
  for (std::size_t e = 0; e < trace.epochCount(); ++e) {
    for (ShardId s = 0; s < trace.shardCount(); ++s) {
      std::vector<std::string> row{std::to_string(e), std::to_string(s)};
      for (std::size_t d = 0; d < dims; ++d) {
        std::snprintf(buf, sizeof buf, "%.17g", trace.demand(e, s)[d]);
        row.emplace_back(buf);
      }
      csv.writeRow(row);
    }
  }
}

Trace loadTraceCsv(const Instance& base, const TraceConfig& config,
                   const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("loadTraceCsv: cannot open " + path);

  const std::size_t dims = base.dims();
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("loadTraceCsv: empty file");
  // Header is not interpreted beyond arity checking.
  std::size_t headerCols = 1;
  for (const char c : line)
    if (c == ',') ++headerCols;
  if (headerCols != 2 + dims)
    throw std::runtime_error("loadTraceCsv: header arity does not match dims");

  std::vector<std::vector<ResourceVector>> demands;
  std::vector<std::vector<bool>> seen;
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream cells(line);
    std::string cell;
    auto nextCell = [&]() -> std::string {
      if (!std::getline(cells, cell, ','))
        throw std::runtime_error("loadTraceCsv: short row: " + line);
      return cell;
    };
    const std::size_t epoch = std::stoul(nextCell());
    const std::size_t shard = std::stoul(nextCell());
    if (shard >= base.shardCount())
      throw std::runtime_error("loadTraceCsv: shard id out of range");
    if (epoch >= demands.size()) {
      demands.resize(epoch + 1,
                     std::vector<ResourceVector>(base.shardCount(), ResourceVector(dims)));
      seen.resize(epoch + 1, std::vector<bool>(base.shardCount(), false));
    }
    if (seen[epoch][shard])
      throw std::runtime_error("loadTraceCsv: duplicate (epoch, shard) row");
    seen[epoch][shard] = true;
    for (std::size_t d = 0; d < dims; ++d) {
      const double value = std::stod(nextCell());
      if (value < 0.0) throw std::runtime_error("loadTraceCsv: negative demand");
      demands[epoch][shard][d] = value;
    }
    ++rows;
  }
  if (demands.empty()) throw std::runtime_error("loadTraceCsv: no data rows");
  for (std::size_t e = 0; e < demands.size(); ++e)
    for (ShardId s = 0; s < base.shardCount(); ++s)
      if (!seen[e][s])
        throw std::runtime_error("loadTraceCsv: missing row for epoch " +
                                 std::to_string(e) + " shard " + std::to_string(s));

  TraceConfig effective = config;
  effective.epochs = demands.size();
  return Trace(base, effective, std::move(demands));
}

}  // namespace resex
