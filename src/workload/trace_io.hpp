// Trace import/export: the ingestion path for external ("real") demand
// traces.
//
// CSV schema, one row per (epoch, shard):
//   epoch,shard,demand_0[,demand_1,...]
// with a header line. Rows may appear in any order; every (epoch, shard)
// pair must appear exactly once and epochs must be dense from 0.
#pragma once

#include <string>

#include "workload/trace.hpp"

namespace resex {

/// Writes a trace's demand matrices as CSV.
void saveTraceCsv(const Trace& trace, const std::string& path);

/// Reads a demand trace for the shards of `base`. The returned Trace uses
/// `config` for its metadata fields (epoch hours etc.); demand values come
/// entirely from the file. Throws std::runtime_error on malformed input.
Trace loadTraceCsv(const Instance& base, const TraceConfig& config,
                   const std::string& path);

}  // namespace resex
