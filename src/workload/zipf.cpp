#include "workload/zipf.hpp"

#include <cmath>
#include <stdexcept>

namespace resex {

ZipfSampler::ZipfSampler(std::uint64_t n, double exponent) : n_(n), s_(exponent) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be >= 1");
  if (exponent < 0.0) throw std::invalid_argument("ZipfSampler: exponent must be >= 0");
  hX1_ = h(1.5) - 1.0;
  hN_ = h(static_cast<double>(n_) + 0.5);
  // Eager normalizer so probability() is a pure read — a lazy computation
  // here raced when const samplers were shared across serving threads.
  norm_ = 0.0;
  for (std::uint64_t k = 1; k <= n_; ++k)
    norm_ += std::pow(static_cast<double>(k), -s_);
}

// h(x) = integral of x^-s: (x^(1-s) - 1)/(1-s), with the s == 1 limit ln(x).
double ZipfSampler::h(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfSampler::hInverse(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  if (n_ == 1) return 1;
  if (s_ == 0.0) return 1 + rng.below(n_);
  for (;;) {
    const double u = hX1_ + rng.uniform() * (hN_ - hX1_);
    const double x = hInverse(u);
    const auto k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1 || k > n_) continue;
    // Accept with probability proportional to the true mass at k relative
    // to the dominating envelope.
    const double kd = static_cast<double>(k);
    if (u >= h(kd + 0.5) - std::pow(kd, -s_)) return k;
  }
}

double ZipfSampler::probability(std::uint64_t rank) const {
  if (rank < 1 || rank > n_) return 0.0;
  return std::pow(static_cast<double>(rank), -s_) / norm_;
}

}  // namespace resex
