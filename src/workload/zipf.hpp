// Zipf-distributed sampling over {1..n} with exponent s >= 0.
//
// Uses Hörmann's rejection-inversion method: O(1) draws with no O(n) table,
// so it scales to vocabulary-sized domains (search-term popularity).
// Construction makes one O(n) pass to fix the probability() normalizer;
// after that every method is const and safe to call concurrently.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace resex {

class ZipfSampler {
 public:
  /// n >= 1 elements; exponent >= 0 (0 = uniform). Throws on bad args.
  ZipfSampler(std::uint64_t n, double exponent);

  /// Draws a rank in [1, n]; rank 1 is the most popular.
  std::uint64_t sample(Rng& rng) const;

  std::uint64_t n() const noexcept { return n_; }
  double exponent() const noexcept { return s_; }

  /// P(rank) under the (normalized) Zipf law — for tests and analysis.
  double probability(std::uint64_t rank) const;

 private:
  double h(double x) const;
  double hInverse(double x) const;

  std::uint64_t n_;
  double s_;
  double hX1_;
  double hN_;
  double norm_;  // sum_{k=1..n} k^-s, computed once in the constructor
};

}  // namespace resex
