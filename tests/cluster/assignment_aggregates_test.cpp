// Safety net for the incremental aggregate caches (bottleneck max-tree,
// sum-of-squares, vacancy counter, migration bytes): drive an Assignment
// through long randomized move/swap/unassign/reassign sequences — on an
// instance with exchange machines and on one with replica groups — and
// check every aggregate against a from-scratch recomputation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "cluster/assignment.hpp"
#include "util/rng.hpp"
#include "workload/synthetic.hpp"

namespace resex {
namespace {

/// 2 replicas per logical shard on a small uniform cluster (same shape as
/// the replication tests use).
Instance replicatedInstance(std::size_t regular, std::size_t exchange,
                            const std::vector<double>& logicalSizes,
                            double cap = 100.0) {
  const std::size_t repl = 2;
  std::vector<Machine> machines(regular + exchange);
  for (std::size_t i = 0; i < machines.size(); ++i) {
    machines[i].id = static_cast<MachineId>(i);
    machines[i].isExchange = i >= regular;
    machines[i].capacity = ResourceVector{cap, cap};
  }
  std::vector<Shard> shards(logicalSizes.size() * repl);
  std::vector<std::uint32_t> groups(shards.size());
  std::vector<MachineId> initial(shards.size());
  for (std::size_t g = 0; g < logicalSizes.size(); ++g) {
    for (std::size_t r = 0; r < repl; ++r) {
      const std::size_t s = g * repl + r;
      shards[s].id = static_cast<ShardId>(s);
      shards[s].demand = ResourceVector{logicalSizes[g], logicalSizes[g]};
      shards[s].moveBytes = logicalSizes[g];
      groups[s] = static_cast<std::uint32_t>(g);
      initial[s] = static_cast<MachineId>((g + r) % regular);
    }
  }
  return Instance(2, std::move(machines), std::move(shards), std::move(initial),
                  exchange, ResourceVector{1.0, 1.0}, std::move(groups));
}

/// Compares every incrementally maintained aggregate against values derived
/// from scratch (linear scans + a recomputed twin Assignment).
void expectAggregatesConsistent(const Assignment& a) {
  const Instance& inst = a.instance();
  const std::size_t m = inst.machineCount();

  // Linear-scan ground truth over the (already unit-tested) per-machine
  // utilization cache: max + lowest-id argmax + sum of squares + vacancies.
  double worst = 0.0;
  MachineId arg = 0;
  double sumSq = 0.0;
  std::size_t vacant = 0;
  for (MachineId mach = 0; mach < m; ++mach) {
    const double u = a.utilizationOf(mach);
    sumSq += u * u;
    if (u > worst) {
      worst = u;
      arg = mach;
    }
    if (a.isVacant(mach)) ++vacant;
  }
  ASSERT_NEAR(a.bottleneckUtilization(), worst, 1e-12);
  ASSERT_EQ(a.bottleneckMachine(), arg);
  ASSERT_NEAR(a.sumSquaredUtil(), sumSq, 1e-6);
  ASSERT_EQ(a.vacantCount(), vacant);

  // From-scratch twin: rebuilds all caches from the raw mapping.
  Assignment fresh(inst, a.mapping());
  ASSERT_NEAR(a.bottleneckUtilization(), fresh.bottleneckUtilization(), 1e-6);
  ASSERT_EQ(a.bottleneckMachine(), fresh.bottleneckMachine());
  ASSERT_NEAR(a.sumSquaredUtil(), fresh.sumSquaredUtil(), 1e-6);
  ASSERT_EQ(a.vacantCount(), fresh.vacantCount());
  // Bytes totals run to ~1e12 (bytesPerDemand ~ 1e9): compare relatively.
  ASSERT_NEAR(a.migratedBytes(), fresh.migratedBytes(),
              1e-9 * std::max(1.0, std::abs(fresh.migratedBytes())));
  ASSERT_EQ(a.movedShardCount(), fresh.movedShardCount());
}

/// Runs `steps` random mutations (move / swap / unassign / reassign),
/// checking the cheap linear-scan invariants every step and the full
/// from-scratch twin every `auditEvery` steps.
void randomWalk(const Instance& inst, std::uint64_t seed, std::size_t steps,
                std::size_t auditEvery) {
  Assignment a(inst);
  Rng rng(seed);
  const std::size_t n = inst.shardCount();
  const std::size_t m = inst.machineCount();

  for (std::size_t step = 1; step <= steps; ++step) {
    const auto s = static_cast<ShardId>(rng.below(n));
    const int op = static_cast<int>(rng.below(4));
    if (op == 0) {
      // Move to a random machine (skip replica-conflicting targets so the
      // walk stays anti-affinity-clean and validate() can stay strict).
      if (a.isAssigned(s)) {
        const auto to = static_cast<MachineId>(rng.below(m));
        if (!a.hasReplicaOn(s, to)) a.moveShard(s, to);
      }
    } else if (op == 1) {
      // Swap the machines of two assigned shards.
      const auto s2 = static_cast<ShardId>(rng.below(n));
      if (s != s2 && a.isAssigned(s) && a.isAssigned(s2)) {
        const MachineId m1 = a.machineOf(s);
        const MachineId m2 = a.machineOf(s2);
        if (m1 != m2) {
          a.remove(s);
          a.remove(s2);
          if (!a.hasReplicaOn(s, m2) && !a.hasReplicaOn(s2, m1)) {
            a.assign(s, m2);
            a.assign(s2, m1);
          } else {
            a.assign(s, m1);
            a.assign(s2, m2);
          }
        }
      }
    } else if (op == 2) {
      if (a.isAssigned(s)) a.remove(s);
    } else {
      if (!a.isAssigned(s)) {
        const auto to = static_cast<MachineId>(rng.below(m));
        if (!a.hasReplicaOn(s, to)) a.assign(s, to);
      }
    }

    // Cheap per-step invariants: tree root vs linear max over the cache.
    double worst = 0.0;
    MachineId arg = 0;
    for (MachineId mach = 0; mach < m; ++mach) {
      if (a.utilizationOf(mach) > worst) {
        worst = a.utilizationOf(mach);
        arg = mach;
      }
    }
    ASSERT_NEAR(a.bottleneckUtilization(), worst, 1e-12) << "step " << step;
    ASSERT_EQ(a.bottleneckMachine(), arg) << "step " << step;

    if (step % auditEvery == 0) {
      expectAggregatesConsistent(a);
      ASSERT_TRUE(a.validate(/*requireCapacity=*/false).empty()) << "step " << step;
    }
  }
  expectAggregatesConsistent(a);
}

TEST(AssignmentAggregates, RandomWalkWithExchangeMachines) {
  // Synthetic instance with exchange machines; capacity may be violated
  // mid-walk (assign performs no checks) — exactly what the LNS loop does.
  const Instance inst = tinyTestInstance(/*seed=*/21, /*machines=*/14,
                                         /*shards=*/120, /*exchange=*/3,
                                         /*loadFactor=*/0.7);
  randomWalk(inst, /*seed=*/1234, /*steps=*/60000, /*auditEvery=*/4000);
}

TEST(AssignmentAggregates, RandomWalkWithReplicaGroups) {
  const Instance inst = replicatedInstance(
      /*regular=*/10, /*exchange=*/2,
      {12.0, 7.0, 22.0, 5.0, 9.0, 17.0, 3.0, 11.0, 14.0, 6.0, 8.0, 19.0});
  randomWalk(inst, /*seed=*/991, /*steps=*/60000, /*auditEvery=*/4000);
}

TEST(AssignmentAggregates, RecomputeMatchesIncrementalAfterWalk) {
  const Instance inst = tinyTestInstance(5, 8, 64, 2, 0.65);
  Assignment a(inst);
  Rng rng(77);
  for (std::size_t step = 0; step < 20000; ++step) {
    const auto s = static_cast<ShardId>(rng.below(inst.shardCount()));
    const auto to = static_cast<MachineId>(rng.below(inst.machineCount()));
    if (a.isAssigned(s)) a.moveShard(s, to);
    else a.assign(s, to);
  }
  const double bottleneck = a.bottleneckUtilization();
  const MachineId hot = a.bottleneckMachine();
  const double sumSq = a.sumSquaredUtil();
  a.recomputeCaches();
  EXPECT_NEAR(a.bottleneckUtilization(), bottleneck, 1e-9);
  EXPECT_EQ(a.bottleneckMachine(), hot);
  EXPECT_NEAR(a.sumSquaredUtil(), sumSq, 1e-9);
}

}  // namespace
}  // namespace resex
