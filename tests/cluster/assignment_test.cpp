#include "cluster/assignment.hpp"

#include <gtest/gtest.h>

#include "common/test_instances.hpp"
#include "util/rng.hpp"
#include "workload/synthetic.hpp"

namespace resex {
namespace {

using testing::placedInstance;
using testing::uniformInstance;

TEST(Assignment, StartsAtInitialPlacement) {
  const Instance inst = uniformInstance(3, 1, {10.0, 20.0, 30.0});
  Assignment a(inst);
  EXPECT_EQ(a.machineOf(0), 0u);
  EXPECT_EQ(a.machineOf(1), 1u);
  EXPECT_EQ(a.machineOf(2), 2u);
  EXPECT_EQ(a.unassignedCount(), 0u);
  EXPECT_EQ(a.vacantCount(), 1u);  // the exchange machine
  EXPECT_DOUBLE_EQ(a.loadOf(1)[0], 20.0);
  EXPECT_DOUBLE_EQ(a.utilizationOf(2), 0.3);
}

TEST(Assignment, BottleneckQueries) {
  const Instance inst = uniformInstance(3, 0, {10.0, 50.0, 30.0});
  Assignment a(inst);
  EXPECT_DOUBLE_EQ(a.bottleneckUtilization(), 0.5);
  EXPECT_EQ(a.bottleneckMachine(), 1u);
}

TEST(Assignment, MoveUpdatesLoadsAndLists) {
  const Instance inst = uniformInstance(2, 1, {10.0, 20.0});
  Assignment a(inst);
  a.moveShard(0, 1);
  EXPECT_EQ(a.machineOf(0), 1u);
  EXPECT_DOUBLE_EQ(a.loadOf(0)[0], 0.0);
  EXPECT_DOUBLE_EQ(a.loadOf(1)[0], 30.0);
  EXPECT_EQ(a.shardCountOn(0), 0u);
  EXPECT_EQ(a.shardCountOn(1), 2u);
  EXPECT_TRUE(a.isVacant(0));
  EXPECT_EQ(a.vacantCount(), 2u);
}

TEST(Assignment, MoveToSameMachineIsNoop) {
  const Instance inst = uniformInstance(2, 0, {10.0});
  Assignment a(inst);
  a.moveShard(0, 0);
  EXPECT_EQ(a.machineOf(0), 0u);
  EXPECT_TRUE(a.validate().empty());
}

TEST(Assignment, RemoveAndAssign) {
  const Instance inst = uniformInstance(2, 0, {10.0, 20.0});
  Assignment a(inst);
  const MachineId from = a.remove(1);
  EXPECT_EQ(from, 1u);
  EXPECT_FALSE(a.isAssigned(1));
  EXPECT_EQ(a.unassignedCount(), 1u);
  EXPECT_TRUE(a.isVacant(1));
  a.assign(1, 0);
  EXPECT_EQ(a.machineOf(1), 0u);
  EXPECT_DOUBLE_EQ(a.loadOf(0)[0], 30.0);
  EXPECT_TRUE(a.validate().empty());
}

TEST(Assignment, DoubleAssignThrows) {
  const Instance inst = uniformInstance(2, 0, {10.0});
  Assignment a(inst);
  EXPECT_THROW(a.assign(0, 1), std::logic_error);
}

TEST(Assignment, RemoveUnassignedThrows) {
  const Instance inst = uniformInstance(2, 0, {10.0});
  Assignment a(inst);
  a.remove(0);
  EXPECT_THROW(a.remove(0), std::logic_error);
}

TEST(Assignment, MigratedBytesTracksDisplacement) {
  const Instance inst = uniformInstance(3, 0, {10.0, 20.0, 30.0});
  Assignment a(inst);
  EXPECT_DOUBLE_EQ(a.migratedBytes(), 0.0);
  EXPECT_EQ(a.movedShardCount(), 0u);
  a.moveShard(0, 1);
  EXPECT_DOUBLE_EQ(a.migratedBytes(), 10.0);
  EXPECT_EQ(a.movedShardCount(), 1u);
  a.moveShard(0, 0);  // back home
  EXPECT_DOUBLE_EQ(a.migratedBytes(), 0.0);
  EXPECT_EQ(a.movedShardCount(), 0u);
}

TEST(Assignment, SumSquaredUtilMatchesDirectComputation) {
  const Instance inst = uniformInstance(3, 1, {10.0, 50.0, 30.0});
  Assignment a(inst);
  a.moveShard(0, 1);
  a.moveShard(2, 3);
  double expected = 0.0;
  for (MachineId m = 0; m < inst.machineCount(); ++m) {
    const double u = a.loadOf(m).utilizationAgainst(inst.machine(m).capacity);
    expected += u * u;
  }
  EXPECT_NEAR(a.sumSquaredUtil(), expected, 1e-9);
}

TEST(Assignment, CanPlaceHonorsCapacity) {
  const Instance inst = uniformInstance(2, 0, {60.0, 50.0});
  Assignment a(inst);
  EXPECT_FALSE(a.canPlace(0, 1));  // 50 + 60 > 100
  a.remove(1);
  EXPECT_TRUE(a.canPlace(0, 1));
}

TEST(Assignment, CanPlaceTransientUsesGamma) {
  // gamma = (0.5, 0.5): copy consumes half demand on the target.
  const Instance inst = placedInstance(2, 0, {60.0, 55.0}, {0, 1}, 100.0,
                                       ResourceVector{0.5, 0.5});
  Assignment a(inst);
  // End state 55 + 60 = 115 > 100: transient placement must fail even
  // though the copy window 55 + 30 = 85 fits.
  EXPECT_FALSE(a.canPlaceTransient(0, 1));
  // A smaller shard: copy 60 + 27.5 = 87.5 ok, end 60 + 55 = 115 > 100 no.
  EXPECT_FALSE(a.canPlaceTransient(1, 0));
}

TEST(Assignment, CanPlaceTransientCopyWindowBinds) {
  // gamma = 1: target needs full headroom during the copy.
  const Instance inst = placedInstance(3, 0, {30.0, 80.0, 0.0}, {0, 1, 2});
  Assignment a(inst);
  // Move shard 0 (30) onto machine 1 (80): end 110 > 100 -> reject.
  EXPECT_FALSE(a.canPlaceTransient(0, 1));
  // Move shard 0 onto empty machine 2: trivially fine.
  EXPECT_TRUE(a.canPlaceTransient(0, 2));
}

TEST(Assignment, ConstructFromPartialMapping) {
  const Instance inst = uniformInstance(2, 0, {10.0, 20.0});
  Assignment a(inst, {kNoMachine, 0});
  EXPECT_FALSE(a.isAssigned(0));
  EXPECT_EQ(a.unassignedCount(), 1u);
  EXPECT_DOUBLE_EQ(a.loadOf(0)[0], 20.0);
  EXPECT_TRUE(a.validate().empty());
}

TEST(Assignment, MappingSizeMismatchThrows) {
  const Instance inst = uniformInstance(2, 0, {10.0});
  EXPECT_THROW(Assignment(inst, {0, 0}), std::invalid_argument);
}

TEST(Assignment, MachineOutOfRangeThrows) {
  const Instance inst = uniformInstance(2, 0, {10.0});
  EXPECT_THROW(Assignment(inst, {9}), std::invalid_argument);
}

TEST(Assignment, ValidateReportsOverCapacity) {
  const Instance inst = uniformInstance(2, 0, {60.0, 70.0});
  Assignment a(inst, {0, 0});  // 130 on one 100-capacity machine
  const auto problems = a.validate(/*requireCapacity=*/true);
  EXPECT_FALSE(problems.empty());
  EXPECT_TRUE(a.validate(/*requireCapacity=*/false).empty());
}

TEST(Assignment, RecomputeCachesIsIdempotent) {
  const Instance inst = uniformInstance(3, 1, {10.0, 20.0, 30.0});
  Assignment a(inst);
  a.moveShard(0, 2);
  a.moveShard(1, 3);
  const double sumSq = a.sumSquaredUtil();
  const double bytes = a.migratedBytes();
  a.recomputeCaches();
  EXPECT_NEAR(a.sumSquaredUtil(), sumSq, 1e-9);
  EXPECT_NEAR(a.migratedBytes(), bytes, 1e-9);
  EXPECT_TRUE(a.validate().empty());
}

TEST(Assignment, RandomWalkKeepsCachesConsistent) {
  const Instance inst = tinyTestInstance(11, 6, 36, 2, 0.6);
  Assignment a(inst);
  Rng rng(99);
  for (int step = 0; step < 5000; ++step) {
    const auto s = static_cast<ShardId>(rng.below(inst.shardCount()));
    const auto m = static_cast<MachineId>(rng.below(inst.machineCount()));
    if (!a.isAssigned(s)) {
      a.assign(s, m);
    } else if (rng.chance(0.3)) {
      a.remove(s);
    } else {
      a.moveShard(s, m);
    }
  }
  EXPECT_TRUE(a.validate(/*requireCapacity=*/false).empty());
}

TEST(Assignment, EqualityComparesMappings) {
  const Instance inst = uniformInstance(2, 0, {10.0, 20.0});
  Assignment a(inst);
  Assignment b(inst);
  EXPECT_EQ(a, b);
  a.moveShard(0, 1);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace resex
