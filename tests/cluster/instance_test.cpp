#include "cluster/instance.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/test_instances.hpp"

namespace resex {
namespace {

using testing::uniformInstance;

TEST(Instance, BasicAccessors) {
  const Instance inst = uniformInstance(3, 2, {10.0, 20.0, 30.0});
  EXPECT_EQ(inst.dims(), 2u);
  EXPECT_EQ(inst.machineCount(), 5u);
  EXPECT_EQ(inst.regularCount(), 3u);
  EXPECT_EQ(inst.exchangeCount(), 2u);
  EXPECT_EQ(inst.shardCount(), 3u);
  EXPECT_FALSE(inst.machine(0).isExchange);
  EXPECT_TRUE(inst.machine(4).isExchange);
  EXPECT_DOUBLE_EQ(inst.shard(1).demand[0], 20.0);
  EXPECT_EQ(inst.initialMachineOf(2), 2u);
}

TEST(Instance, TotalsAndLoadFactor) {
  const Instance inst = uniformInstance(2, 1, {30.0, 50.0});
  const ResourceVector demand = inst.totalDemand();
  EXPECT_DOUBLE_EQ(demand[0], 80.0);
  const ResourceVector cap = inst.totalRegularCapacity();
  EXPECT_DOUBLE_EQ(cap[0], 200.0);  // exchange machine excluded
  EXPECT_DOUBLE_EQ(inst.loadFactor(), 0.4);
}

TEST(Instance, RejectsZeroDims) {
  EXPECT_THROW(Instance(0, {}, {}, {}, 0, ResourceVector{}), std::invalid_argument);
}

TEST(Instance, RejectsNoMachines) {
  EXPECT_THROW(Instance(1, {}, {}, {}, 0, ResourceVector{1.0}), std::invalid_argument);
}

TEST(Instance, RejectsGammaOutOfRange) {
  std::vector<Machine> machines(1);
  machines[0].capacity = ResourceVector{10.0};
  EXPECT_THROW(Instance(1, machines, {}, {}, 0, ResourceVector{1.5}),
               std::invalid_argument);
}

TEST(Instance, RejectsExchangeNotAtTail) {
  std::vector<Machine> machines(2);
  machines[0].id = 0;
  machines[0].capacity = ResourceVector{10.0};
  machines[0].isExchange = true;  // wrong: exchange must be last
  machines[1].id = 1;
  machines[1].capacity = ResourceVector{10.0};
  EXPECT_THROW(Instance(1, machines, {}, {}, 1, ResourceVector{1.0}),
               std::invalid_argument);
}

TEST(Instance, RejectsInitialOnExchangeMachine) {
  std::vector<Machine> machines(2);
  machines[0].id = 0;
  machines[0].capacity = ResourceVector{10.0};
  machines[1].id = 1;
  machines[1].capacity = ResourceVector{10.0};
  machines[1].isExchange = true;
  std::vector<Shard> shards(1);
  shards[0].id = 0;
  shards[0].demand = ResourceVector{1.0};
  EXPECT_THROW(Instance(1, machines, shards, {1}, 1, ResourceVector{1.0}),
               std::invalid_argument);
}

TEST(Instance, RejectsNonDenseShardIds) {
  std::vector<Machine> machines(1);
  machines[0].id = 0;
  machines[0].capacity = ResourceVector{10.0};
  std::vector<Shard> shards(1);
  shards[0].id = 5;  // not dense
  shards[0].demand = ResourceVector{1.0};
  EXPECT_THROW(Instance(1, machines, shards, {0}, 0, ResourceVector{1.0}),
               std::invalid_argument);
}

TEST(Instance, RejectsNegativeMoveBytes) {
  std::vector<Machine> machines(1);
  machines[0].id = 0;
  machines[0].capacity = ResourceVector{10.0};
  std::vector<Shard> shards(1);
  shards[0].id = 0;
  shards[0].demand = ResourceVector{1.0};
  shards[0].moveBytes = -1.0;
  EXPECT_THROW(Instance(1, machines, shards, {0}, 0, ResourceVector{1.0}),
               std::invalid_argument);
}

TEST(Instance, RejectsAssignmentSizeMismatch) {
  std::vector<Machine> machines(1);
  machines[0].id = 0;
  machines[0].capacity = ResourceVector{10.0};
  std::vector<Shard> shards(1);
  shards[0].id = 0;
  shards[0].demand = ResourceVector{1.0};
  EXPECT_THROW(Instance(1, machines, shards, {}, 0, ResourceVector{1.0}),
               std::invalid_argument);
}

TEST(Instance, SerializeRoundTrip) {
  const Instance original = uniformInstance(3, 1, {10.5, 20.25, 7.125});
  const Instance copy = Instance::deserialize(original.serialize());
  EXPECT_EQ(copy.dims(), original.dims());
  EXPECT_EQ(copy.machineCount(), original.machineCount());
  EXPECT_EQ(copy.exchangeCount(), original.exchangeCount());
  EXPECT_EQ(copy.shardCount(), original.shardCount());
  for (ShardId s = 0; s < copy.shardCount(); ++s) {
    EXPECT_EQ(copy.shard(s).demand, original.shard(s).demand);
    EXPECT_DOUBLE_EQ(copy.shard(s).moveBytes, original.shard(s).moveBytes);
    EXPECT_EQ(copy.initialMachineOf(s), original.initialMachineOf(s));
  }
  EXPECT_EQ(copy.transientGamma(), original.transientGamma());
}

TEST(Instance, DeserializeRejectsGarbage) {
  EXPECT_THROW(Instance::deserialize("not an instance"), std::runtime_error);
  EXPECT_THROW(Instance::deserialize("resex-instance v9\n"), std::runtime_error);
}

TEST(Instance, DeserializeRejectsTruncated) {
  const Instance original = uniformInstance(2, 0, {10.0, 20.0});
  std::string text = original.serialize();
  text.resize(text.size() / 2);
  EXPECT_THROW(Instance::deserialize(text), std::runtime_error);
}

TEST(Instance, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "resex_instance_test.txt";
  const Instance original = uniformInstance(2, 1, {5.0, 6.0});
  original.saveToFile(path);
  const Instance copy = Instance::loadFromFile(path);
  EXPECT_EQ(copy.serialize(), original.serialize());
  std::remove(path.c_str());
}

TEST(Instance, LoadFromMissingFileThrows) {
  EXPECT_THROW(Instance::loadFromFile("/nonexistent/inst.txt"), std::runtime_error);
}

}  // namespace
}  // namespace resex
