#include "cluster/migration.hpp"

#include <gtest/gtest.h>

#include "common/test_instances.hpp"

namespace resex {
namespace {

using testing::placedInstance;
using testing::uniformInstance;

TEST(DiffMoves, EmptyWhenIdentical) {
  const std::vector<MachineId> a{0, 1, 2};
  EXPECT_TRUE(diffMoves(a, a).empty());
}

TEST(DiffMoves, ListsEveryDifference) {
  const std::vector<MachineId> start{0, 1, 2};
  const std::vector<MachineId> target{1, 1, 0};
  const auto moves = diffMoves(start, target);
  ASSERT_EQ(moves.size(), 2u);
  EXPECT_EQ(moves[0], (Move{0, 0, 1}));
  EXPECT_EQ(moves[1], (Move{2, 2, 0}));
}

TEST(DiffMoves, RejectsSizeMismatch) {
  EXPECT_THROW(diffMoves({0}, {0, 1}), std::invalid_argument);
}

TEST(DiffMoves, RejectsUnassigned) {
  EXPECT_THROW(diffMoves({kNoMachine}, {0}), std::invalid_argument);
}

TEST(Schedule, CountsAndPeak) {
  Schedule s;
  EXPECT_EQ(s.moveCount(), 0u);
  EXPECT_DOUBLE_EQ(s.peakTransientUtil(), 0.0);
  Phase p1;
  p1.moves.push_back(Move{0, 0, 1});
  p1.peakTransientUtil = 0.7;
  Phase p2;
  p2.moves.push_back(Move{1, 1, 0});
  p2.moves.push_back(Move{2, 2, 0});
  p2.peakTransientUtil = 0.9;
  s.phases = {p1, p2};
  EXPECT_EQ(s.phaseCount(), 2u);
  EXPECT_EQ(s.moveCount(), 3u);
  EXPECT_DOUBLE_EQ(s.peakTransientUtil(), 0.9);
}

TEST(VerifySchedule, AcceptsValidSingleMove) {
  const Instance inst = uniformInstance(2, 1, {40.0, 30.0});
  Schedule s;
  Phase p;
  p.moves.push_back(Move{0, 0, 2});
  s.phases.push_back(p);
  s.totalBytes = 40.0;
  const std::vector<MachineId> target{2, 1};
  EXPECT_TRUE(verifySchedule(inst, inst.initialAssignment(), target, s).empty());
}

TEST(VerifySchedule, RejectsWrongSource) {
  const Instance inst = uniformInstance(2, 1, {40.0, 30.0});
  Schedule s;
  Phase p;
  p.moves.push_back(Move{0, 1, 2});  // shard 0 is on machine 0, not 1
  s.phases.push_back(p);
  s.totalBytes = 40.0;
  const std::vector<MachineId> target{2, 1};
  EXPECT_FALSE(verifySchedule(inst, inst.initialAssignment(), target, s).empty());
}

TEST(VerifySchedule, RejectsCopyWindowOverload) {
  // Machine 1 holds 80; moving a 30-shard there with gamma=1 needs a 110
  // copy window on a 100 machine.
  const Instance inst = placedInstance(2, 0, {30.0, 80.0}, {0, 1});
  Schedule s;
  Phase p;
  p.moves.push_back(Move{0, 0, 1});
  s.phases.push_back(p);
  s.totalBytes = 30.0;
  const std::vector<MachineId> target{1, 1};
  const auto problems = verifySchedule(inst, inst.initialAssignment(), target, s);
  ASSERT_FALSE(problems.empty());
}

TEST(VerifySchedule, GammaZeroAllowsTightSwapOver) {
  // With gamma=0 there is no copy cost; only the end state matters.
  const Instance inst = placedInstance(2, 0, {30.0, 60.0}, {0, 1}, 100.0,
                                       ResourceVector{0.0, 0.0});
  Schedule s;
  Phase p;
  p.moves.push_back(Move{0, 0, 1});
  s.phases.push_back(p);
  s.totalBytes = 30.0;
  const std::vector<MachineId> target{1, 1};
  EXPECT_TRUE(verifySchedule(inst, inst.initialAssignment(), target, s).empty());
}

TEST(VerifySchedule, RejectsShardMovedTwiceInOnePhase) {
  const Instance inst = uniformInstance(3, 0, {10.0, 10.0, 10.0});
  Schedule s;
  Phase p;
  p.moves.push_back(Move{0, 0, 1});
  p.moves.push_back(Move{0, 0, 2});
  s.phases.push_back(p);
  s.totalBytes = 20.0;
  const std::vector<MachineId> target{1, 1, 2};
  EXPECT_FALSE(verifySchedule(inst, inst.initialAssignment(), target, s).empty());
}

TEST(VerifySchedule, RejectsIncompleteTargetMismatch) {
  const Instance inst = uniformInstance(2, 1, {40.0, 30.0});
  Schedule s;  // empty but claims complete
  const std::vector<MachineId> target{2, 1};
  const auto problems = verifySchedule(inst, inst.initialAssignment(), target, s);
  EXPECT_FALSE(problems.empty());
}

TEST(VerifySchedule, AcceptsIncompleteWithUnscheduledListed) {
  const Instance inst = uniformInstance(2, 1, {40.0, 30.0});
  Schedule s;
  s.complete = false;
  s.unscheduled.push_back(Move{0, 0, 2});
  const std::vector<MachineId> target{2, 1};
  EXPECT_TRUE(verifySchedule(inst, inst.initialAssignment(), target, s).empty());
}

TEST(VerifySchedule, RejectsWrongByteTotal) {
  const Instance inst = uniformInstance(2, 1, {40.0, 30.0});
  Schedule s;
  Phase p;
  p.moves.push_back(Move{0, 0, 2});
  s.phases.push_back(p);
  s.totalBytes = 1.0;  // wrong
  const std::vector<MachineId> target{2, 1};
  EXPECT_FALSE(verifySchedule(inst, inst.initialAssignment(), target, s).empty());
}

TEST(VerifySchedule, AcceptsIncompleteMidStagingHop) {
  // Shard 0 made its first staging hop onto the exchange machine but the
  // final hop to machine 1 was never scheduled: valid as long as the shard's
  // true position and remaining intent are reported.
  const Instance inst = uniformInstance(2, 1, {40.0, 30.0});
  Schedule s;
  Phase p;
  p.moves.push_back(Move{0, 0, 2});
  s.phases.push_back(p);
  s.totalBytes = 40.0;
  s.complete = false;
  s.unscheduled.push_back(Move{0, 2, 1});
  const std::vector<MachineId> target{1, 1};
  EXPECT_TRUE(verifySchedule(inst, inst.initialAssignment(), target, s).empty());
}

TEST(VerifySchedule, RejectsIncompleteWithOffTargetShardUnlisted) {
  // Same mid-staging state, but the leftover hop is not reported: shard 0
  // is neither at its target nor listed unscheduled.
  const Instance inst = uniformInstance(2, 1, {40.0, 30.0});
  Schedule s;
  Phase p;
  p.moves.push_back(Move{0, 0, 2});
  s.phases.push_back(p);
  s.totalBytes = 40.0;
  s.complete = false;
  const std::vector<MachineId> target{1, 1};
  const auto problems = verifySchedule(inst, inst.initialAssignment(), target, s);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("unscheduled"), std::string::npos) << problems[0];
}

TEST(EstimateSchedule, IncompleteScheduleCountsOnlyExecutedPhases) {
  const Instance inst = uniformInstance(2, 1, {40.0, 30.0});
  Schedule s;
  Phase p;
  p.moves.push_back(Move{0, 0, 2});
  s.phases.push_back(p);
  s.totalBytes = 40.0;
  s.complete = false;
  s.unscheduled.push_back(Move{1, 1, 0});  // never executes, costs no time
  EXPECT_DOUBLE_EQ(estimateScheduleSeconds(inst, s, 10.0), 4.0);
  // An all-unscheduled plan costs nothing.
  Schedule empty;
  empty.complete = false;
  empty.unscheduled.push_back(Move{0, 0, 2});
  EXPECT_DOUBLE_EQ(estimateScheduleSeconds(inst, empty, 10.0), 0.0);
}

TEST(EstimateSchedule, StagedHopsPayPerHop) {
  // Shard 0 stages through the exchange machine: two phases, each moving
  // its 40 bytes, so the clock pays twice even though the shard is one.
  const Instance inst = uniformInstance(2, 1, {40.0, 30.0});
  Schedule s;
  Phase hop1;
  hop1.moves.push_back(Move{0, 0, 2});
  Phase hop2;
  hop2.moves.push_back(Move{0, 2, 1});
  s.phases = {hop1, hop2};
  s.stagedHops = 1;
  s.totalBytes = 80.0;
  EXPECT_DOUBLE_EQ(estimateScheduleSeconds(inst, s, 10.0), 8.0);
}

TEST(VerifySchedule, RejectsDegenerateMove) {
  const Instance inst = uniformInstance(2, 0, {10.0, 10.0});
  Schedule s;
  Phase p;
  p.moves.push_back(Move{0, 0, 0});
  s.phases.push_back(p);
  s.totalBytes = 10.0;
  const std::vector<MachineId> target{0, 1};
  EXPECT_FALSE(verifySchedule(inst, inst.initialAssignment(), target, s).empty());
}

}  // namespace
}  // namespace resex
