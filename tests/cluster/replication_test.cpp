// Replication (anti-affinity) behaviour across the whole stack.
#include <gtest/gtest.h>

#include "cluster/assignment.hpp"
#include "cluster/scheduler.hpp"
#include "core/baselines.hpp"
#include "core/sra.hpp"
#include "model/branch_bound.hpp"
#include "model/ip_model.hpp"
#include "workload/synthetic.hpp"

namespace resex {
namespace {

/// 2 replicas per logical shard on a small uniform cluster.
Instance replicatedInstance(std::size_t regular, std::size_t exchange,
                            const std::vector<double>& logicalSizes,
                            double cap = 100.0) {
  const std::size_t repl = 2;
  std::vector<Machine> machines(regular + exchange);
  for (std::size_t i = 0; i < machines.size(); ++i) {
    machines[i].id = static_cast<MachineId>(i);
    machines[i].isExchange = i >= regular;
    machines[i].capacity = ResourceVector{cap, cap};
  }
  std::vector<Shard> shards(logicalSizes.size() * repl);
  std::vector<std::uint32_t> groups(shards.size());
  std::vector<MachineId> initial(shards.size());
  for (std::size_t g = 0; g < logicalSizes.size(); ++g) {
    for (std::size_t r = 0; r < repl; ++r) {
      const std::size_t s = g * repl + r;
      shards[s].id = static_cast<ShardId>(s);
      shards[s].demand = ResourceVector{logicalSizes[g], logicalSizes[g]};
      shards[s].moveBytes = logicalSizes[g];
      groups[s] = static_cast<std::uint32_t>(g);
      // Replica r of group g starts on machine (g + r) mod regular:
      // distinct machines as long as regular >= 2.
      initial[s] = static_cast<MachineId>((g + r) % regular);
    }
  }
  return Instance(2, std::move(machines), std::move(shards), std::move(initial),
                  exchange, ResourceVector{1.0, 1.0}, std::move(groups));
}

TEST(Replication, InstanceExposesGroups) {
  const Instance inst = replicatedInstance(4, 1, {10.0, 20.0});
  EXPECT_TRUE(inst.hasReplication());
  EXPECT_EQ(inst.replicaGroupOf(0), 0u);
  EXPECT_EQ(inst.replicaGroupOf(1), 0u);
  EXPECT_EQ(inst.replicaGroupOf(2), 1u);
  ASSERT_EQ(inst.replicasInGroup(0).size(), 2u);
  EXPECT_EQ(inst.replicaPeers(3).size(), 2u);
}

TEST(Replication, UnreplicatedInstanceHasSingletonGroups) {
  const Instance inst = tinyTestInstance();
  EXPECT_FALSE(inst.hasReplication());
  EXPECT_EQ(inst.replicaGroupOf(3), 3u);
  EXPECT_EQ(inst.replicasInGroup(3).size(), 1u);
}

TEST(Replication, ConstructorRejectsCoLocatedInitial) {
  std::vector<Machine> machines(2);
  machines[0] = {0, ResourceVector{100.0}, false, 0};
  machines[1] = {1, ResourceVector{100.0}, false, 0};
  std::vector<Shard> shards(2);
  shards[0] = {0, ResourceVector{10.0}, 1.0};
  shards[1] = {1, ResourceVector{10.0}, 1.0};
  EXPECT_THROW(Instance(1, machines, shards, {0, 0}, 0, ResourceVector{1.0}, {0, 0}),
               std::invalid_argument);
}

TEST(Replication, ConstructorRejectsMoreReplicasThanMachines) {
  std::vector<Machine> machines(2);
  machines[0] = {0, ResourceVector{100.0}, false, 0};
  machines[1] = {1, ResourceVector{100.0}, false, 0};
  std::vector<Shard> shards(3);
  for (ShardId s = 0; s < 3; ++s) shards[s] = {s, ResourceVector{10.0}, 1.0};
  EXPECT_THROW(
      Instance(1, machines, shards, {0, 1, 0}, 0, ResourceVector{1.0}, {0, 0, 0}),
      std::invalid_argument);
}

TEST(Replication, SerializationRoundTripsGroups) {
  const Instance original = replicatedInstance(4, 1, {10.0, 20.0, 5.0});
  const Instance copy = Instance::deserialize(original.serialize());
  EXPECT_TRUE(copy.hasReplication());
  for (ShardId s = 0; s < copy.shardCount(); ++s)
    EXPECT_EQ(copy.replicaGroupOf(s), original.replicaGroupOf(s));
}

TEST(Replication, CanPlaceRefusesPeerMachine) {
  const Instance inst = replicatedInstance(4, 1, {10.0});
  Assignment a(inst);
  // Shard 0 on machine 0, shard 1 (its replica) on machine 1.
  EXPECT_TRUE(a.hasReplicaOn(0, 1));
  EXPECT_FALSE(a.hasReplicaOn(0, 2));
  EXPECT_FALSE(a.canPlace(0, 1));
  EXPECT_TRUE(a.canPlace(0, 2));
}

TEST(Replication, ValidateFlagsCoLocation) {
  const Instance inst = replicatedInstance(4, 1, {10.0});
  Assignment a(inst);
  // Force co-location through the raw mutation API.
  a.moveShard(0, 1);
  const auto problems = a.validate(false);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("co-located"), std::string::npos);
}

TEST(Replication, StaticConflictHelperMatches) {
  const Instance inst = replicatedInstance(4, 1, {10.0});
  EXPECT_TRUE(Assignment::replicaConflict(inst, inst.initialAssignment(), 0, 1));
  EXPECT_FALSE(Assignment::replicaConflict(inst, inst.initialAssignment(), 0, 3));
}

TEST(Replication, SchedulerNeverCoLocatesInFlight) {
  // Swap the two replicas of a group between machines 0 and 1 — directly
  // impossible (they may never co-reside), so staging must route one
  // through a third machine.
  const Instance inst = replicatedInstance(2, 1, {30.0});
  const std::vector<MachineId> target{1, 0};  // swapped
  MigrationScheduler scheduler;
  const Schedule schedule =
      scheduler.build(inst, inst.initialAssignment(), target);
  EXPECT_TRUE(schedule.complete);
  EXPECT_GE(schedule.stagedHops, 1u);
  EXPECT_TRUE(verifySchedule(inst, inst.initialAssignment(), target, schedule).empty());
}

TEST(Replication, VerifyCatchesCoLocatingSchedule) {
  const Instance inst = replicatedInstance(4, 0, {10.0});
  Schedule bad;
  Phase p;
  p.moves.push_back(Move{0, 0, 1});  // onto the peer's machine
  bad.phases.push_back(p);
  bad.totalBytes = 10.0;
  const std::vector<MachineId> target{1, 1};
  EXPECT_FALSE(verifySchedule(inst, inst.initialAssignment(), target, bad).empty());
}

TEST(Replication, GeneratorProducesValidReplicatedInstances) {
  SyntheticConfig config;
  config.seed = 9;
  config.machines = 12;
  config.exchangeMachines = 2;
  config.shardsPerMachine = 12.0;
  config.replicationFactor = 3;
  config.loadFactor = 0.7;
  const Instance inst = generateSynthetic(config);
  EXPECT_TRUE(inst.hasReplication());
  EXPECT_EQ(inst.shardCount() % 3, 0u);
  Assignment a(inst);
  EXPECT_TRUE(a.validate(/*requireCapacity=*/true).empty());
  // Replicas share demand vectors.
  for (std::uint32_t g = 0; g < inst.replicaGroupCount(); ++g) {
    const auto members = inst.replicasInGroup(g);
    for (std::size_t i = 1; i < members.size(); ++i)
      EXPECT_EQ(inst.shard(members[i]).demand, inst.shard(members[0]).demand);
  }
}

TEST(Replication, GeneratorRejectsReplicationOverMachines) {
  SyntheticConfig config;
  config.machines = 2;
  config.replicationFactor = 3;
  EXPECT_THROW(generateSynthetic(config), std::invalid_argument);
}

TEST(Replication, SraKeepsAntiAffinity) {
  SyntheticConfig gen;
  gen.seed = 77;
  gen.machines = 12;
  gen.exchangeMachines = 2;
  gen.shardsPerMachine = 12.0;
  gen.replicationFactor = 2;
  gen.loadFactor = 0.75;
  gen.placementSkew = 1.0;
  const Instance inst = generateSynthetic(gen);

  SraConfig config;
  config.lns.maxIterations = 3000;
  Sra sra(config);
  const RebalanceResult r = sra.rebalance(inst);
  Assignment after(inst, r.finalMapping);
  EXPECT_TRUE(after.validate(/*requireCapacity=*/true).empty());
  EXPECT_GE(after.vacantCount(), inst.exchangeCount());
  EXPECT_TRUE(verifySchedule(inst, inst.initialAssignment(), r.targetMapping,
                             r.schedule)
                  .empty());
  EXPECT_LT(r.after.bottleneckUtil, r.before.bottleneckUtil);
}

TEST(Replication, BaselinesKeepAntiAffinity) {
  SyntheticConfig gen;
  gen.seed = 78;
  gen.machines = 10;
  gen.exchangeMachines = 1;
  gen.shardsPerMachine = 10.0;
  gen.replicationFactor = 2;
  gen.loadFactor = 0.65;
  gen.placementSkew = 1.0;
  const Instance inst = generateSynthetic(gen);

  SwapLocalSearch ls;
  GreedyRebalancer greedy;
  FfdRepack ffd;
  for (Rebalancer* alg : std::initializer_list<Rebalancer*>{&ls, &greedy, &ffd}) {
    const RebalanceResult r = alg->rebalance(inst);
    Assignment after(inst, r.finalMapping);
    const auto problems = after.validate(/*requireCapacity=*/false);
    for (const auto& p : problems)
      EXPECT_EQ(p.find("co-located"), std::string::npos) << alg->name() << ": " << p;
  }
}

TEST(Replication, BranchBoundRespectsAntiAffinity) {
  // Two groups of two 40-replicas on 3 machines (no vacancy): the optimum
  // must spread replicas; a non-replicated relaxation could stack both
  // replicas of a group together.
  const Instance inst = replicatedInstance(3, 0, {40.0, 40.0});
  const BranchBoundResult r = BranchBoundSolver().solve(inst);
  ASSERT_TRUE(r.optimal);
  Assignment best(inst, r.mapping);
  EXPECT_TRUE(best.validate(/*requireCapacity=*/true).empty());
  // 4 x 40 over 3 machines with anti-affinity: one machine gets replicas
  // of both groups (0.8), so the optimum is 0.8.
  EXPECT_NEAR(r.bottleneck, 0.8, 1e-9);
}

TEST(Replication, IpModelHasAntiAffinityConstraints) {
  const Instance inst = replicatedInstance(3, 0, {40.0});
  const IpModel model(inst);
  bool found = false;
  for (const auto& c : model.constraints())
    if (c.name.rfind("antiaffinity_", 0) == 0) found = true;
  EXPECT_TRUE(found);
  // A co-locating mapping violates the model.
  const auto violations = model.checkMapping({0, 0});
  bool flagged = false;
  for (const auto& v : violations)
    if (v.rfind("antiaffinity_", 0) == 0) flagged = true;
  EXPECT_TRUE(flagged);
}

}  // namespace
}  // namespace resex
