#include "cluster/resource.hpp"

#include <gtest/gtest.h>

namespace resex {
namespace {

TEST(ResourceVector, DefaultIsEmpty) {
  ResourceVector v;
  EXPECT_EQ(v.dims(), 0u);
  EXPECT_TRUE(v.isZero());
}

TEST(ResourceVector, FillConstructor) {
  ResourceVector v(3, 2.5);
  EXPECT_EQ(v.dims(), 3u);
  for (std::size_t d = 0; d < 3; ++d) EXPECT_DOUBLE_EQ(v[d], 2.5);
}

TEST(ResourceVector, InitializerList) {
  ResourceVector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.dims(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
}

TEST(ResourceVector, Arithmetic) {
  ResourceVector a{1.0, 2.0};
  ResourceVector b{0.5, 1.5};
  const ResourceVector sum = a + b;
  EXPECT_DOUBLE_EQ(sum[0], 1.5);
  EXPECT_DOUBLE_EQ(sum[1], 3.5);
  const ResourceVector diff = a - b;
  EXPECT_DOUBLE_EQ(diff[0], 0.5);
  EXPECT_DOUBLE_EQ(diff[1], 0.5);
  const ResourceVector scaled = a * 3.0;
  EXPECT_DOUBLE_EQ(scaled[0], 3.0);
  EXPECT_DOUBLE_EQ(scaled[1], 6.0);
}

TEST(ResourceVector, CompoundOps) {
  ResourceVector a{1.0, 1.0};
  a += ResourceVector{1.0, 2.0};
  a -= ResourceVector{0.5, 0.5};
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a[0], 3.0);
  EXPECT_DOUBLE_EQ(a[1], 5.0);
}

TEST(ResourceVector, Hadamard) {
  ResourceVector a{2.0, 3.0};
  ResourceVector g{0.5, 1.0};
  const ResourceVector h = a.hadamard(g);
  EXPECT_DOUBLE_EQ(h[0], 1.0);
  EXPECT_DOUBLE_EQ(h[1], 3.0);
}

TEST(ResourceVector, Equality) {
  EXPECT_EQ((ResourceVector{1.0, 2.0}), (ResourceVector{1.0, 2.0}));
  EXPECT_NE((ResourceVector{1.0, 2.0}), (ResourceVector{1.0, 3.0}));
  EXPECT_NE((ResourceVector{1.0}), (ResourceVector{1.0, 0.0}));
}

TEST(ResourceVector, FitsWithin) {
  ResourceVector load{5.0, 5.0};
  EXPECT_TRUE(load.fitsWithin(ResourceVector{5.0, 5.0}));
  EXPECT_TRUE(load.fitsWithin(ResourceVector{10.0, 10.0}));
  EXPECT_FALSE(load.fitsWithin(ResourceVector{10.0, 4.0}));
}

TEST(ResourceVector, FitsWithinTolerance) {
  ResourceVector load{5.0 + 1e-12, 5.0};
  EXPECT_TRUE(load.fitsWithin(ResourceVector{5.0, 5.0}));
}

TEST(ResourceVector, UtilizationAgainstPicksWorstDim) {
  ResourceVector load{50.0, 90.0};
  ResourceVector cap{100.0, 100.0};
  EXPECT_DOUBLE_EQ(load.utilizationAgainst(cap), 0.9);
}

TEST(ResourceVector, UtilizationZeroCapacityZeroLoad) {
  ResourceVector load{0.0, 50.0};
  ResourceVector cap{0.0, 100.0};
  EXPECT_DOUBLE_EQ(load.utilizationAgainst(cap), 0.5);
}

TEST(ResourceVector, UtilizationZeroCapacityPositiveLoadIsHuge) {
  ResourceVector load{1.0};
  ResourceVector cap{0.0};
  EXPECT_GT(load.utilizationAgainst(cap), 1e17);
}

TEST(ResourceVector, MaxComponentAndSum) {
  ResourceVector v{1.0, 7.0, 3.0};
  EXPECT_DOUBLE_EQ(v.maxComponent(), 7.0);
  EXPECT_DOUBLE_EQ(v.sum(), 11.0);
}

TEST(ResourceVector, ClampNonNegativeOnlyFixesTinyDrift) {
  ResourceVector v{-1e-12, -5.0};
  v.clampNonNegative();
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], -5.0);  // a real negative is a bug; don't mask it
}

TEST(ResourceVector, ToStringFormats) {
  ResourceVector v{1.0, 2.5};
  EXPECT_EQ(v.toString(1), "(1.0, 2.5)");
}

TEST(DemandDistance, EuclideanBasics) {
  EXPECT_DOUBLE_EQ(demandDistance(ResourceVector{0.0, 0.0}, ResourceVector{3.0, 4.0}),
                   5.0);
  EXPECT_DOUBLE_EQ(demandDistance(ResourceVector{1.0}, ResourceVector{1.0}), 0.0);
}

}  // namespace
}  // namespace resex
