// Deep tests of the scheduler's deadlock-breaking machinery: staging hop
// caps, make-room eviction, stray cleanup, and the duration model.
#include <gtest/gtest.h>

#include "cluster/assignment.hpp"
#include "cluster/scheduler.hpp"
#include "common/test_instances.hpp"
#include "util/rng.hpp"
#include "workload/synthetic.hpp"

namespace resex {
namespace {

using testing::placedInstance;

TEST(SchedulerStaging, ChainWithExactCapacityFitCompletes) {
  // Machine 1 is stuffed with two 40s; shard 0 (60) moves there while one
  // 40 moves out to machine 0 — the copy windows interlock: phase 1 can
  // only run the 40 (whose window on m0 lands exactly at capacity),
  // phase 2 runs the 60.
  const Instance inst = placedInstance(3, 0, {60.0, 40.0, 40.0}, {0, 1, 1});
  const std::vector<MachineId> target{1, 0, 1};
  MigrationScheduler scheduler;
  const Schedule s = scheduler.build(inst, inst.initialAssignment(), target);
  EXPECT_TRUE(s.complete);
  EXPECT_GE(s.phaseCount(), 2u);
  EXPECT_TRUE(verifySchedule(inst, inst.initialAssignment(), target, s).empty());
}

TEST(SchedulerStaging, StagingPrefersSmallEnoughIntermediate) {
  // Swap of a 60 and a 50 on full machines; the only spare machine has
  // capacity 55, so only the 50 can stage through it.
  std::vector<Machine> machines(3);
  machines[0] = {0, ResourceVector{100.0, 100.0}, false, 0};
  machines[1] = {1, ResourceVector{100.0, 100.0}, false, 0};
  machines[2] = {2, ResourceVector{55.0, 55.0}, true, 1};
  std::vector<Shard> shards(2);
  shards[0] = {0, ResourceVector{60.0, 60.0}, 60.0};
  shards[1] = {1, ResourceVector{50.0, 50.0}, 50.0};
  const Instance inst(2, std::move(machines), std::move(shards), {0, 1}, 1,
                      ResourceVector{1.0, 1.0});
  const std::vector<MachineId> target{1, 0};
  MigrationScheduler scheduler;
  const Schedule s = scheduler.build(inst, inst.initialAssignment(), target);
  ASSERT_TRUE(s.complete);
  EXPECT_TRUE(verifySchedule(inst, inst.initialAssignment(), target, s).empty());
  // The 50 must be the one that took the detour through machine 2.
  bool fiftyStaged = false;
  for (const Phase& p : s.phases)
    for (const Move& mv : p.moves)
      if (mv.shard == 1 && mv.to == 2) fiftyStaged = true;
  EXPECT_TRUE(fiftyStaged);
}

TEST(SchedulerStaging, HopCapBoundsThrashing) {
  SchedulerOptions options;
  options.maxHopsPerShard = 1;
  options.maxStagingFactor = 0.5;
  MigrationScheduler scheduler(options);
  // An unschedulable swap: with the tiny hop budget it must fail fast
  // rather than thrash.
  const Instance inst = placedInstance(2, 0, {70.0, 70.0}, {0, 1});
  const std::vector<MachineId> target{1, 0};
  const Schedule s = scheduler.build(inst, inst.initialAssignment(), target);
  EXPECT_FALSE(s.complete);
  EXPECT_LE(s.stagedHops, 2u);
  EXPECT_TRUE(verifySchedule(inst, inst.initialAssignment(), target, s).empty());
}

TEST(SchedulerStaging, CleanupReturnsStraysTowardStart) {
  // Force an incomplete schedule with a stranded stage: shard 0 can stage
  // to the vacant machine but never reach its target. After cleanup it
  // must be back on its start machine, not stranded on the intermediate.
  // m0: A(50) B(30); m1: C(90); m2 vacant. Target: A -> m1 (impossible:
  // 90+50 > 100 and C never leaves).
  const Instance inst = placedInstance(2, 1, {50.0, 30.0, 90.0}, {0, 0, 1});
  const std::vector<MachineId> target{1, 0, 1};
  MigrationScheduler scheduler;
  const Schedule s = scheduler.build(inst, inst.initialAssignment(), target);
  ASSERT_FALSE(s.complete);
  ASSERT_EQ(s.unscheduled.size(), 1u);
  EXPECT_EQ(s.unscheduled[0].shard, 0u);
  // Replay: shard 0 ends where the schedule left it; cleanup should have
  // brought it home to machine 0.
  std::vector<MachineId> where = inst.initialAssignment();
  for (const Phase& p : s.phases)
    for (const Move& mv : p.moves) where[mv.shard] = mv.to;
  EXPECT_EQ(where[0], 0u);
  EXPECT_TRUE(verifySchedule(inst, inst.initialAssignment(), target, s).empty());
}

TEST(SchedulerStaging, RandomTightInstancesAlwaysVerify) {
  // Stress: tight homogeneous instances with big shards; whatever the
  // scheduler produces (complete or not) must verify.
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    SyntheticConfig gen;
    gen.seed = seed;
    gen.machines = 12;
    gen.exchangeMachines = seed % 3;  // 0..2 exchange machines
    gen.shardsPerMachine = 10.0;
    gen.loadFactor = 0.9;
    gen.placementSkew = 1.0;
    gen.skuCount = 1;
    gen.shardSizeSigma = 1.2;
    gen.maxShardFraction = 0.6;
    const Instance inst = generateSynthetic(gen);

    // A random-ish ambitious target built from feasible end-state moves.
    Assignment target(inst);
    Rng rng(seed * 31);
    for (int churn = 0; churn < 200; ++churn) {
      const auto s = static_cast<ShardId>(rng.below(inst.shardCount()));
      const auto m = static_cast<MachineId>(rng.below(inst.machineCount()));
      if (target.machineOf(s) != m && target.canPlace(s, m)) target.moveShard(s, m);
    }
    MigrationScheduler scheduler;
    const Schedule s =
        scheduler.build(inst, inst.initialAssignment(), target.mapping());
    EXPECT_TRUE(
        verifySchedule(inst, inst.initialAssignment(), target.mapping(), s).empty())
        << "seed " << seed;
  }
}

TEST(ScheduleDuration, SinglePhaseUsesBusiestEndpoint) {
  const Instance inst = placedInstance(3, 1, {10.0, 20.0}, {0, 0});
  Schedule s;
  Phase p;
  p.moves.push_back(Move{0, 0, 1});  // 10 bytes out of m0
  p.moves.push_back(Move{1, 0, 2});  // 20 bytes out of m0
  s.phases.push_back(p);
  // Busiest endpoint is m0 with 30 outgoing bytes.
  EXPECT_DOUBLE_EQ(estimateScheduleSeconds(inst, s, 10.0), 3.0);
}

TEST(ScheduleDuration, PhasesAreBarriers) {
  const Instance inst = placedInstance(3, 1, {10.0, 20.0}, {0, 1});
  Schedule s;
  Phase p1;
  p1.moves.push_back(Move{0, 0, 2});  // 10 bytes
  Phase p2;
  p2.moves.push_back(Move{1, 1, 3});  // 20 bytes
  s.phases = {p1, p2};
  EXPECT_DOUBLE_EQ(estimateScheduleSeconds(inst, s, 10.0), 1.0 + 2.0);
}

TEST(ScheduleDuration, EmptyScheduleIsInstant) {
  const Instance inst = placedInstance(2, 0, {10.0}, {0});
  EXPECT_DOUBLE_EQ(estimateScheduleSeconds(inst, Schedule{}, 1.0), 0.0);
}

TEST(ScheduleDuration, RejectsNonPositiveBandwidth) {
  const Instance inst = placedInstance(2, 0, {10.0}, {0});
  EXPECT_THROW(estimateScheduleSeconds(inst, Schedule{}, 0.0), std::invalid_argument);
}

TEST(ScheduleDuration, MoreParallelismIsFaster) {
  // The same 4 relocations as one phase of 4 concurrent moves vs 4 serial
  // phases: concurrent must be strictly faster (distinct endpoints).
  const Instance inst =
      placedInstance(4, 4, {10.0, 10.0, 10.0, 10.0}, {0, 1, 2, 3});
  Schedule wide;
  Phase all;
  for (ShardId s = 0; s < 4; ++s)
    all.moves.push_back(Move{s, s, static_cast<MachineId>(s + 4)});
  wide.phases.push_back(all);
  Schedule narrow;
  for (ShardId s = 0; s < 4; ++s) {
    Phase p;
    p.moves.push_back(Move{s, s, static_cast<MachineId>(s + 4)});
    narrow.phases.push_back(p);
  }
  EXPECT_LT(estimateScheduleSeconds(inst, wide, 5.0),
            estimateScheduleSeconds(inst, narrow, 5.0));
}

}  // namespace
}  // namespace resex
