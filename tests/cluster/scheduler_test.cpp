#include "cluster/scheduler.hpp"

#include <gtest/gtest.h>

#include "cluster/assignment.hpp"
#include "common/test_instances.hpp"
#include "workload/synthetic.hpp"

namespace resex {
namespace {

using testing::placedInstance;
using testing::uniformInstance;

TEST(Scheduler, EmptyDiffYieldsEmptySchedule) {
  const Instance inst = uniformInstance(2, 0, {10.0, 20.0});
  MigrationScheduler scheduler;
  const Schedule s =
      scheduler.build(inst, inst.initialAssignment(), inst.initialAssignment());
  EXPECT_TRUE(s.complete);
  EXPECT_EQ(s.phaseCount(), 0u);
  EXPECT_DOUBLE_EQ(s.totalBytes, 0.0);
}

TEST(Scheduler, SingleDirectMove) {
  const Instance inst = uniformInstance(2, 1, {40.0, 30.0});
  MigrationScheduler scheduler;
  const std::vector<MachineId> target{2, 1};
  const Schedule s = scheduler.build(inst, inst.initialAssignment(), target);
  EXPECT_TRUE(s.complete);
  EXPECT_EQ(s.stagedHops, 0u);
  EXPECT_TRUE(verifySchedule(inst, inst.initialAssignment(), target, s).empty());
}

TEST(Scheduler, ParallelIndependentMovesShareAPhase) {
  // Four shards moving to four distinct empty-ish machines: one phase.
  const Instance inst =
      placedInstance(4, 4, {10.0, 10.0, 10.0, 10.0}, {0, 1, 2, 3});
  MigrationScheduler scheduler;
  const std::vector<MachineId> target{4, 5, 6, 7};
  const Schedule s = scheduler.build(inst, inst.initialAssignment(), target);
  EXPECT_TRUE(s.complete);
  EXPECT_EQ(s.phaseCount(), 1u);
  EXPECT_TRUE(verifySchedule(inst, inst.initialAssignment(), target, s).empty());
}

TEST(Scheduler, TwoShardSwapNeedsStagingWhenTight) {
  // Two machines of capacity 100, each holding one 70-shard; swap them.
  // Direct moves are transient-infeasible both ways (70 + 70 > 100), so
  // the scheduler must stage through the vacant exchange machine.
  const Instance inst = placedInstance(2, 1, {70.0, 70.0}, {0, 1});
  MigrationScheduler scheduler;
  const std::vector<MachineId> target{1, 0};
  const Schedule s = scheduler.build(inst, inst.initialAssignment(), target);
  EXPECT_TRUE(s.complete);
  EXPECT_GE(s.stagedHops, 1u);
  EXPECT_GT(s.totalBytes, 140.0);  // staging pays extra bytes
  EXPECT_TRUE(verifySchedule(inst, inst.initialAssignment(), target, s).empty());
}

TEST(Scheduler, SwapDeadlockFailsWithoutStaging) {
  const Instance inst = placedInstance(2, 1, {70.0, 70.0}, {0, 1});
  SchedulerOptions options;
  options.allowStaging = false;
  MigrationScheduler scheduler(options);
  const std::vector<MachineId> target{1, 0};
  const Schedule s = scheduler.build(inst, inst.initialAssignment(), target);
  EXPECT_FALSE(s.complete);
  EXPECT_EQ(s.unscheduled.size(), 2u);
  EXPECT_TRUE(verifySchedule(inst, inst.initialAssignment(), target, s).empty());
}

TEST(Scheduler, SwapDeadlockFailsWithNoVacantMachineAnywhere) {
  // No exchange machine and every regular machine nearly full: the swap
  // cannot be realized at all.
  const Instance inst = placedInstance(2, 0, {70.0, 70.0}, {0, 1});
  MigrationScheduler scheduler;
  const std::vector<MachineId> target{1, 0};
  const Schedule s = scheduler.build(inst, inst.initialAssignment(), target);
  EXPECT_FALSE(s.complete);
}

TEST(Scheduler, ChainMoveRunsInPhases) {
  // a->b->c chain where b must leave before a arrives (gamma=1, cap 100):
  // shard0: m0(60) -> m1; shard1: m1(60) -> m2 (empty). Phase 1 can only
  // run shard1 (m1's window for shard0 is 60+60 > 100), phase 2 runs
  // shard0.
  const Instance inst = placedInstance(3, 0, {60.0, 60.0}, {0, 1});
  MigrationScheduler scheduler;
  const std::vector<MachineId> target{1, 2};
  const Schedule s = scheduler.build(inst, inst.initialAssignment(), target);
  EXPECT_TRUE(s.complete);
  EXPECT_EQ(s.phaseCount(), 2u);
  EXPECT_EQ(s.stagedHops, 0u);
  EXPECT_TRUE(verifySchedule(inst, inst.initialAssignment(), target, s).empty());
}

TEST(Scheduler, PhaseCapLimitsConcurrency) {
  const Instance inst =
      placedInstance(4, 4, {10.0, 10.0, 10.0, 10.0}, {0, 1, 2, 3});
  SchedulerOptions options;
  options.maxMovesPerPhase = 1;
  MigrationScheduler scheduler(options);
  const std::vector<MachineId> target{4, 5, 6, 7};
  const Schedule s = scheduler.build(inst, inst.initialAssignment(), target);
  EXPECT_TRUE(s.complete);
  EXPECT_EQ(s.phaseCount(), 4u);
  for (const Phase& p : s.phases) EXPECT_EQ(p.moves.size(), 1u);
  EXPECT_TRUE(verifySchedule(inst, inst.initialAssignment(), target, s).empty());
}

TEST(Scheduler, PeakTransientUtilIsRecorded) {
  const Instance inst = placedInstance(2, 1, {50.0, 40.0}, {0, 1});
  MigrationScheduler scheduler;
  // Move shard 1 (40) onto machine 0 (holding 50): window = 90/100.
  const std::vector<MachineId> target{0, 0};
  const Schedule s = scheduler.build(inst, inst.initialAssignment(), target);
  EXPECT_TRUE(s.complete);
  ASSERT_EQ(s.phaseCount(), 1u);
  EXPECT_NEAR(s.phases[0].peakTransientUtil, 0.9, 1e-9);
}

TEST(Scheduler, RejectsUnassignedMappings) {
  const Instance inst = uniformInstance(2, 0, {10.0});
  MigrationScheduler scheduler;
  EXPECT_THROW(scheduler.build(inst, {kNoMachine}, {0}), std::invalid_argument);
  EXPECT_THROW(scheduler.build(inst, {0}, {kNoMachine}), std::invalid_argument);
}

TEST(Scheduler, LowGammaAllowsDirectTightMoves) {
  // gamma=(0.1, 0.1): copies are cheap, so the tight swap from the staging
  // test becomes... still end-state infeasible mid-swap (70+70), but a
  // chain a->b with b nearly full works directly: m1 holds 85; moving 10
  // onto it needs window 85 + 1 = 86 and end 95.
  const Instance inst = placedInstance(2, 0, {10.0, 85.0}, {0, 1}, 100.0,
                                       ResourceVector{0.1, 0.1});
  MigrationScheduler scheduler;
  const std::vector<MachineId> target{1, 1};
  const Schedule s = scheduler.build(inst, inst.initialAssignment(), target);
  EXPECT_TRUE(s.complete);
  EXPECT_EQ(s.stagedHops, 0u);
  EXPECT_TRUE(verifySchedule(inst, inst.initialAssignment(), target, s).empty());
}

TEST(Scheduler, RealisticInstanceSchedulesCompletely) {
  const Instance inst = tinyTestInstance(3, 8, 64, 2, 0.55);
  // Target: shuffle some shards around via a feasible random-ish target
  // built by moving every 4th shard to the next machine when it fits.
  Assignment target(inst);
  for (ShardId s = 0; s < inst.shardCount(); s += 4) {
    const MachineId cur = target.machineOf(s);
    const MachineId next = static_cast<MachineId>((cur + 1) % inst.machineCount());
    if (target.canPlace(s, next)) target.moveShard(s, next);
  }
  MigrationScheduler scheduler;
  const Schedule sched =
      scheduler.build(inst, inst.initialAssignment(), target.mapping());
  EXPECT_TRUE(sched.complete);
  EXPECT_TRUE(verifySchedule(inst, inst.initialAssignment(), target.mapping(), sched)
                  .empty());
}

}  // namespace
}  // namespace resex
