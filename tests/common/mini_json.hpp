// A tiny recursive-descent JSON reader for tests: parses a document and
// flattens it into path -> scalar-text pairs so assertions can check that
// exported JSON is well-formed and round-trips the values that went in.
//
// Paths join object keys and array indices with '/', e.g.
//   {"counters":{"lns.iterations":7}}  ->  "counters/lns.iterations" == "7"
//   [{"ph":"X"}]                       ->  "0/ph" == "X"
//
// Not a production parser: no \u escapes beyond pass-through, no
// tolerance for malformed input (that is the point — malformed export
// must fail the test).
#pragma once

#include <cctype>
#include <map>
#include <stdexcept>
#include <string>

namespace resex::testing {

class MiniJson {
 public:
  /// Parses `text`; throws std::runtime_error on any syntax error.
  static std::map<std::string, std::string> flatten(const std::string& text) {
    MiniJson parser(text);
    parser.skipWs();
    parser.parseValue("");
    parser.skipWs();
    if (parser.pos_ != text.size())
      throw std::runtime_error("trailing characters after JSON document");
    return parser.out_;
  }

 private:
  explicit MiniJson(const std::string& text) : text_(text) {}

  char peek() {
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end of JSON");
    return text_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (take() != c)
      throw std::runtime_error(std::string("expected '") + c + "' at offset " +
                               std::to_string(pos_ - 1));
  }
  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = take();
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            out += "\\u";  // pass through, tests only compare ASCII
            break;
          default: out += esc;
        }
      } else {
        out += c;
      }
    }
  }

  void parseValue(const std::string& path) {
    skipWs();
    const char c = peek();
    if (c == '{') {
      parseObject(path);
    } else if (c == '[') {
      parseArray(path);
    } else if (c == '"') {
      out_[path] = parseString();
    } else {
      // number / true / false / null
      std::string token;
      while (pos_ < text_.size()) {
        const char t = text_[pos_];
        if (t == ',' || t == '}' || t == ']' ||
            std::isspace(static_cast<unsigned char>(t)))
          break;
        token += t;
        ++pos_;
      }
      if (token.empty()) throw std::runtime_error("empty JSON scalar");
      out_[path] = token;
    }
  }

  void parseObject(const std::string& path) {
    expect('{');
    skipWs();
    if (peek() == '}') {
      take();
      return;
    }
    while (true) {
      skipWs();
      const std::string key = parseString();
      skipWs();
      expect(':');
      parseValue(path.empty() ? key : path + "/" + key);
      skipWs();
      const char c = take();
      if (c == '}') return;
      if (c != ',') throw std::runtime_error("expected ',' or '}' in object");
    }
  }

  void parseArray(const std::string& path) {
    expect('[');
    skipWs();
    if (peek() == ']') {
      take();
      out_[path + "/#size"] = "0";
      return;
    }
    std::size_t index = 0;
    while (true) {
      parseValue(path + "/" + std::to_string(index));
      ++index;
      skipWs();
      const char c = take();
      if (c == ']') {
        out_[path + "/#size"] = std::to_string(index);
        return;
      }
      if (c != ',') throw std::runtime_error("expected ',' or ']' in array");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::map<std::string, std::string> out_;
};

}  // namespace resex::testing
