// Shared helpers for building small deterministic instances in tests.
#pragma once

#include <vector>

#include "cluster/instance.hpp"

namespace resex::testing {

/// `regular` machines with capacity (cap, cap), `exchange` vacant exchange
/// machines of the same size, one shard per entry of `shardSizes` with
/// demand (size, size), placed round-robin over the regular machines.
/// moveBytes == demand size; gamma defaults to full duplication.
inline Instance uniformInstance(std::size_t regular, std::size_t exchange,
                                const std::vector<double>& shardSizes,
                                double cap = 100.0,
                                ResourceVector gamma = ResourceVector{1.0, 1.0}) {
  std::vector<Machine> machines(regular + exchange);
  for (std::size_t i = 0; i < machines.size(); ++i) {
    machines[i].id = static_cast<MachineId>(i);
    machines[i].isExchange = i >= regular;
    machines[i].capacity = ResourceVector{cap, cap};
  }
  std::vector<Shard> shards(shardSizes.size());
  std::vector<MachineId> initial(shardSizes.size());
  for (std::size_t s = 0; s < shardSizes.size(); ++s) {
    shards[s].id = static_cast<ShardId>(s);
    shards[s].demand = ResourceVector{shardSizes[s], shardSizes[s]};
    shards[s].moveBytes = shardSizes[s];
    initial[s] = static_cast<MachineId>(s % regular);
  }
  return Instance(2, std::move(machines), std::move(shards), std::move(initial), exchange,
                  std::move(gamma));
}

/// Like uniformInstance but with an explicit initial placement.
inline Instance placedInstance(std::size_t regular, std::size_t exchange,
                               const std::vector<double>& shardSizes,
                               const std::vector<MachineId>& placement,
                               double cap = 100.0,
                               ResourceVector gamma = ResourceVector{1.0, 1.0}) {
  std::vector<Machine> machines(regular + exchange);
  for (std::size_t i = 0; i < machines.size(); ++i) {
    machines[i].id = static_cast<MachineId>(i);
    machines[i].isExchange = i >= regular;
    machines[i].capacity = ResourceVector{cap, cap};
  }
  std::vector<Shard> shards(shardSizes.size());
  for (std::size_t s = 0; s < shardSizes.size(); ++s) {
    shards[s].id = static_cast<ShardId>(s);
    shards[s].demand = ResourceVector{shardSizes[s], shardSizes[s]};
    shards[s].moveBytes = shardSizes[s];
  }
  return Instance(2, std::move(machines), std::move(shards), placement, exchange,
                  std::move(gamma));
}

}  // namespace resex::testing
