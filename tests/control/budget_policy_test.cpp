// Multi-epoch controller behaviour: budgets, cooldowns, and trace-driven
// accounting across a whole run.
#include <gtest/gtest.h>

#include "control/controller.hpp"

#include <memory>
#include "workload/synthetic.hpp"
#include "workload/trace.hpp"

namespace resex {
namespace {

/// Trace keeps a pointer to its base instance, so both must share a
/// lifetime: bundle them (heap-allocated base keeps its address stable).
struct TraceBundle {
  std::unique_ptr<Instance> base;
  Trace trace;
};

TraceBundle driftTrace(std::uint64_t seed, std::size_t epochs) {
  auto base = std::make_unique<Instance>(tinyTestInstance(seed, 8, 96, 2, 0.5));
  TraceConfig config;
  config.seed = seed + 1;
  config.epochs = epochs;
  config.peakLoadFactor = 0.8;
  Trace trace = generateTrace(*base, config);
  return TraceBundle{std::move(base), std::move(trace)};
}

TEST(ControllerRun, BudgetGatesSomeEpochsButAccountingStaysConsistent) {
  const TraceBundle bundle = driftTrace(404, 6);
  const Trace& trace = bundle.trace;
  ControllerConfig config;
  config.trigger.always = true;
  config.trigger.cooldownEpochs = 0;
  config.sra.lns.maxIterations = 1200;
  // A budget that some plans exceed and some respect.
  config.bytesBudgetPerEpoch = 2e11;

  ClusterController controller(config);
  std::vector<MachineId> mapping = trace.base().initialAssignment();
  double executedBytes = 0.0;
  for (std::size_t e = 0; e < trace.epochCount(); ++e) {
    const Instance inst = trace.instanceForEpoch(e, mapping);
    const EpochReport report = controller.step(inst);
    if (report.executed) executedBytes += report.scheduleBytes;
    if (report.triggered && !report.executed)
      EXPECT_GT(report.scheduleBytes, config.bytesBudgetPerEpoch);
    mapping = controller.mapping();
  }
  EXPECT_NEAR(controller.cumulativeBytes(), executedBytes, 1.0);
  EXPECT_EQ(controller.history().size(), trace.epochCount());
}

TEST(ControllerRun, CooldownSkipsAlternateEpochs) {
  const TraceBundle bundle = driftTrace(405, 6);
  const Trace& trace = bundle.trace;
  ControllerConfig config;
  config.trigger.always = true;
  config.trigger.cooldownEpochs = 2;
  config.sra.lns.maxIterations = 800;

  ClusterController controller(config);
  std::vector<MachineId> mapping = trace.base().initialAssignment();
  for (std::size_t e = 0; e < trace.epochCount(); ++e) {
    const Instance inst = trace.instanceForEpoch(e, mapping);
    controller.step(inst);
    mapping = controller.mapping();
  }
  // Epochs 0, 2, 4 fire; 1, 3, 5 cool down.
  ASSERT_EQ(controller.history().size(), 6u);
  for (std::size_t e = 0; e < 6; ++e)
    EXPECT_EQ(controller.history()[e].triggered, e % 2 == 0) << "epoch " << e;
}

TEST(ControllerRun, UntriggeredEpochsCarryMappingUnchanged) {
  const TraceBundle bundle = driftTrace(406, 3);
  const Trace& trace = bundle.trace;
  ControllerConfig config;
  config.trigger.bottleneckThreshold = 1e9;
  config.trigger.cvThreshold = 1e9;
  config.trigger.fireOnInfeasible = false;
  ClusterController controller(config);
  std::vector<MachineId> mapping = trace.base().initialAssignment();
  for (std::size_t e = 0; e < trace.epochCount(); ++e) {
    const Instance inst = trace.instanceForEpoch(e, mapping);
    const EpochReport report = controller.step(inst);
    EXPECT_FALSE(report.triggered);
    EXPECT_EQ(controller.mapping(), inst.initialAssignment());
    EXPECT_DOUBLE_EQ(report.after.bottleneckUtil, report.before.bottleneckUtil);
    mapping = controller.mapping();
  }
  EXPECT_EQ(controller.rebalancesExecuted(), 0u);
}

TEST(ControllerRun, ReportsSolveTimeOnlyWhenTriggered) {
  const Instance inst = tinyTestInstance(407, 8, 96, 2, 0.7);
  ControllerConfig config;
  config.trigger.always = true;
  config.trigger.cooldownEpochs = 2;  // suppresses the very next epoch
  config.sra.lns.maxIterations = 500;
  ClusterController controller(config);
  const EpochReport fired = controller.step(inst);
  EXPECT_TRUE(fired.triggered);
  EXPECT_GT(fired.solveSeconds, 0.0);
  const EpochReport cooled = controller.step(inst);
  EXPECT_FALSE(cooled.triggered);
  EXPECT_DOUBLE_EQ(cooled.solveSeconds, 0.0);
}

}  // namespace
}  // namespace resex
