#include "control/controller.hpp"

#include <gtest/gtest.h>

#include "common/test_instances.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace.hpp"

namespace resex {
namespace {

Instance skewedInstance(std::uint64_t seed, double load = 0.8) {
  SyntheticConfig gen;
  gen.seed = seed;
  gen.machines = 10;
  gen.exchangeMachines = 2;
  gen.shardsPerMachine = 12.0;
  gen.loadFactor = load;
  gen.placementSkew = 1.1;
  gen.skuCount = 1;
  return generateSynthetic(gen);
}

ControllerConfig fastController() {
  ControllerConfig config;
  config.sra.lns.maxIterations = 1500;
  return config;
}

TEST(Trigger, FiresOnHighBottleneck) {
  RebalanceTrigger trigger(TriggerConfig{});
  BalanceMetrics hot;
  hot.bottleneckUtil = 0.95;
  hot.utilCv = 0.1;
  EXPECT_TRUE(trigger.shouldRebalance(hot, 0));
}

TEST(Trigger, FiresOnHighCv) {
  RebalanceTrigger trigger(TriggerConfig{});
  BalanceMetrics skewed;
  skewed.bottleneckUtil = 0.5;
  skewed.utilCv = 0.5;
  EXPECT_TRUE(trigger.shouldRebalance(skewed, 0));
}

TEST(Trigger, QuietClusterDoesNotFire) {
  RebalanceTrigger trigger(TriggerConfig{});
  BalanceMetrics calm;
  calm.bottleneckUtil = 0.6;
  calm.utilCv = 0.05;
  EXPECT_FALSE(trigger.shouldRebalance(calm, 0));
}

TEST(Trigger, InfeasibleStateAlwaysFires) {
  RebalanceTrigger trigger(TriggerConfig{});
  BalanceMetrics broken;
  broken.bottleneckUtil = 0.2;
  broken.utilCv = 0.0;
  broken.feasible = false;
  EXPECT_TRUE(trigger.shouldRebalance(broken, 0));
}

TEST(Trigger, CooldownSuppressesRefiring) {
  TriggerConfig config;
  config.cooldownEpochs = 3;
  RebalanceTrigger trigger(config);
  BalanceMetrics hot;
  hot.bottleneckUtil = 0.99;
  EXPECT_TRUE(trigger.shouldRebalance(hot, 0));
  EXPECT_FALSE(trigger.shouldRebalance(hot, 1));
  EXPECT_FALSE(trigger.shouldRebalance(hot, 2));
  EXPECT_TRUE(trigger.shouldRebalance(hot, 3));
}

TEST(Trigger, AlwaysModeIgnoresMetricsButNotCooldown) {
  TriggerConfig config;
  config.always = true;
  config.cooldownEpochs = 2;
  RebalanceTrigger trigger(config);
  BalanceMetrics calm;
  EXPECT_TRUE(trigger.shouldRebalance(calm, 0));
  EXPECT_FALSE(trigger.shouldRebalance(calm, 1));
  EXPECT_TRUE(trigger.shouldRebalance(calm, 2));
}

TEST(Controller, ExecutesWhenTriggered) {
  const Instance inst = skewedInstance(1);
  ClusterController controller(fastController());
  const EpochReport report = controller.step(inst);
  EXPECT_TRUE(report.triggered);  // skewed start: high cv
  EXPECT_TRUE(report.executed);
  EXPECT_LT(report.after.bottleneckUtil, report.before.bottleneckUtil);
  EXPECT_EQ(controller.rebalancesExecuted(), 1u);
  EXPECT_GT(controller.cumulativeBytes(), 0.0);
  EXPECT_EQ(controller.mapping().size(), inst.shardCount());
}

TEST(Controller, SkipsQuietEpochs) {
  ControllerConfig config = fastController();
  config.trigger.bottleneckThreshold = 0.999;
  config.trigger.cvThreshold = 10.0;  // effectively never
  ClusterController controller(config);
  const Instance inst = skewedInstance(2, 0.6);
  const EpochReport report = controller.step(inst);
  EXPECT_FALSE(report.triggered);
  EXPECT_FALSE(report.executed);
  EXPECT_EQ(controller.mapping(), inst.initialAssignment());
  EXPECT_EQ(controller.cumulativeBytes(), 0.0);
}

TEST(Controller, ByteBudgetDiscardsExpensivePlans) {
  ControllerConfig config = fastController();
  config.bytesBudgetPerEpoch = 1.0;  // absurdly small
  ClusterController controller(config);
  const Instance inst = skewedInstance(3);
  const EpochReport report = controller.step(inst);
  EXPECT_TRUE(report.triggered);
  EXPECT_FALSE(report.executed);
  EXPECT_GT(report.scheduleBytes, 1.0);  // the plan existed but was discarded
  EXPECT_EQ(controller.mapping(), inst.initialAssignment());
  EXPECT_DOUBLE_EQ(controller.cumulativeBytes(), 0.0);
}

TEST(Controller, HistoryAccumulates) {
  ControllerConfig config = fastController();
  config.trigger.cooldownEpochs = 5;  // second epoch suppressed by cooldown
  ClusterController controller(config);
  const Instance inst = skewedInstance(4);
  controller.step(inst);
  controller.step(inst);
  ASSERT_EQ(controller.history().size(), 2u);
  EXPECT_EQ(controller.history()[0].epoch, 0u);
  EXPECT_EQ(controller.history()[1].epoch, 1u);
  EXPECT_TRUE(controller.history()[0].triggered);
  EXPECT_FALSE(controller.history()[1].triggered);
}

// Returns a fixed plan instead of running SRA, so the execution policies
// can be exercised with a crafted incomplete schedule.
class CraftedPlanController : public ClusterController {
 public:
  CraftedPlanController(ControllerConfig config, RebalanceResult crafted)
      : ClusterController(config), crafted_(std::move(crafted)) {}

  RebalanceResult plan(const Instance&) override { return crafted_; }

 private:
  RebalanceResult crafted_;
};

// Three machines, shards {60, 60} on machines 0 and 1. The "plan" wants
// shard 0 on machine 2 and shard 1 on machine 0, but only shard 0's move
// got scheduled; shard 1's relocation is reported unscheduled.
Instance partialInstance() {
  return testing::placedInstance(3, 0, {60.0, 60.0}, {0, 1});
}

RebalanceResult partialPlan(const Instance& inst) {
  RebalanceResult crafted;
  crafted.algorithm = "crafted";
  crafted.targetMapping = {2, 0};
  Phase phase;
  phase.moves.push_back(Move{0, 0, 2});
  crafted.schedule.phases.push_back(phase);
  crafted.schedule.totalBytes = 60.0;
  crafted.schedule.complete = false;
  crafted.schedule.unscheduled.push_back(Move{1, 1, 0});
  crafted.finalMapping = applySchedule(inst.initialAssignment(), crafted.schedule);
  return crafted;
}

ControllerConfig alwaysFire() {
  ControllerConfig config;
  config.trigger.always = true;
  return config;
}

TEST(Controller, ExecutePartialAdvancesTheScheduledMoves) {
  const Instance inst = partialInstance();
  ControllerConfig config = alwaysFire();
  config.partialPolicy = PartialSchedulePolicy::kExecutePartial;
  CraftedPlanController controller(config, partialPlan(inst));
  const EpochReport report = controller.step(inst);
  EXPECT_TRUE(report.triggered);
  EXPECT_TRUE(report.executed);
  EXPECT_FALSE(report.scheduleComplete);
  EXPECT_EQ(report.unscheduledMoves, 1u);
  EXPECT_EQ(controller.mapping(), (std::vector<MachineId>{2, 1}));
  EXPECT_DOUBLE_EQ(report.executedBytes, 60.0);
  EXPECT_DOUBLE_EQ(controller.cumulativeBytes(), 60.0);
}

TEST(Controller, DiscardPolicyKeepsTheMappingPut) {
  const Instance inst = partialInstance();
  ControllerConfig config = alwaysFire();
  config.partialPolicy = PartialSchedulePolicy::kDiscard;
  CraftedPlanController controller(config, partialPlan(inst));
  const EpochReport report = controller.step(inst);
  EXPECT_TRUE(report.triggered);
  EXPECT_FALSE(report.executed);
  EXPECT_FALSE(report.scheduleComplete);
  EXPECT_EQ(report.unscheduledMoves, 1u);  // surfaced, not silently dropped
  EXPECT_EQ(controller.mapping(), inst.initialAssignment());
  EXPECT_DOUBLE_EQ(controller.cumulativeBytes(), 0.0);
}

TEST(Controller, ExecutorModeCleanRunMatchesLegacyAccounting) {
  const Instance inst = skewedInstance(21);
  ControllerConfig config = fastController();
  config.useExecutor = true;
  config.executor.sra = config.sra;
  config.executor.sra.polish = false;
  ClusterController controller(config);
  const EpochReport report = controller.step(inst);
  EXPECT_TRUE(report.executed);
  EXPECT_LT(report.after.bottleneckUtil, report.before.bottleneckUtil);
  EXPECT_FALSE(report.degradedCompletion);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(report.abortedMoves, 0u);
  EXPECT_EQ(report.replans, 0u);
  EXPECT_TRUE(report.crashedMachines.empty());
  EXPECT_DOUBLE_EQ(report.executedBytes, report.scheduleBytes);
  EXPECT_DOUBLE_EQ(controller.cumulativeBytes(), report.executedBytes);
}

TEST(Controller, ExecutorModeSurfacesDegradation) {
  const Instance inst = skewedInstance(22);
  ControllerConfig config = fastController();
  config.useExecutor = true;
  config.executor.sra = config.sra;
  config.executor.sra.polish = false;
  config.executor.maxRetries = 0;
  config.faults.copyFailureProbability = 1.0;  // every copy attempt fails
  ClusterController controller(config);
  const EpochReport report = controller.step(inst);
  EXPECT_TRUE(report.executed);
  EXPECT_TRUE(report.degradedCompletion);
  EXPECT_GT(report.abortedMoves, 0u);
  EXPECT_GT(report.unscheduledMoves, 0u);
  EXPECT_DOUBLE_EQ(report.executedBytes, 0.0);
  EXPECT_EQ(controller.mapping(), inst.initialAssignment());  // nothing moved
}

TEST(Controller, DrivesTraceOperationEndToEnd) {
  const Instance base = tinyTestInstance(999, 8, 96, 2, 0.55);
  TraceConfig traceConfig;
  traceConfig.seed = 4;
  traceConfig.epochs = 5;
  traceConfig.peakLoadFactor = 0.8;
  const Trace trace = generateTrace(base, traceConfig);

  ControllerConfig config = fastController();
  config.trigger.always = true;
  config.trigger.cooldownEpochs = 0;
  ClusterController controller(config);

  std::vector<MachineId> mapping = base.initialAssignment();
  for (std::size_t e = 0; e < trace.epochCount(); ++e) {
    const Instance inst = trace.instanceForEpoch(e, mapping);
    const EpochReport report = controller.step(inst);
    EXPECT_TRUE(report.executed) << "epoch " << e;
    mapping = controller.mapping();
    Assignment state(inst, mapping);
    EXPECT_GE(state.vacantCount(), inst.exchangeCount());
  }
  EXPECT_EQ(controller.rebalancesExecuted(), trace.epochCount());
}

TEST(Controller, ObservedCpuDemandReplacesDimensionZeroOnly) {
  const Instance base = skewedInstance(5);
  std::vector<double> observed(base.shardCount());
  for (ShardId s = 0; s < base.shardCount(); ++s)
    observed[s] = 0.25 + 0.01 * static_cast<double>(s);
  const Instance updated = withObservedCpuDemand(base, observed);
  ASSERT_EQ(updated.shardCount(), base.shardCount());
  EXPECT_EQ(updated.machineCount(), base.machineCount());
  EXPECT_EQ(updated.exchangeCount(), base.exchangeCount());
  EXPECT_EQ(updated.initialAssignment(), base.initialAssignment());
  for (ShardId s = 0; s < base.shardCount(); ++s) {
    EXPECT_DOUBLE_EQ(updated.shard(s).demand[0], observed[s]);
    EXPECT_DOUBLE_EQ(updated.shard(s).demand[1], base.shard(s).demand[1]);
    EXPECT_EQ(updated.replicaGroupOf(s), base.replicaGroupOf(s));
  }
}

TEST(Controller, ObservedCpuDemandRejectsBadInput) {
  const Instance base = skewedInstance(6);
  EXPECT_THROW(withObservedCpuDemand(base, std::vector<double>(3, 0.1)),
               std::invalid_argument);
  std::vector<double> negative(base.shardCount(), 0.1);
  negative[0] = -1.0;
  EXPECT_THROW(withObservedCpuDemand(base, negative), std::invalid_argument);
}

TEST(Controller, StepsOnObservedDemandAndImprovesBalance) {
  // The serving loop's contract: measure per-shard service time, rewrite
  // CPU demand with it, and a controller step still plans and lands a
  // better-balanced mapping for the instance it was measured on.
  const Instance base = skewedInstance(7);
  std::vector<double> observed(base.shardCount());
  for (ShardId s = 0; s < base.shardCount(); ++s)
    observed[s] = base.shard(s).demand[0] * 1.07;  // measured, slightly off model
  const Instance measured = withObservedCpuDemand(base, observed);
  ControllerConfig config = fastController();
  config.trigger.always = true;
  ClusterController controller(config);
  const EpochReport report = controller.step(measured);
  EXPECT_TRUE(report.triggered);
  EXPECT_TRUE(report.executed);
  EXPECT_LE(report.after.bottleneckUtil, report.before.bottleneckUtil + 1e-9);
}

}  // namespace
}  // namespace resex
