#include "control/executor.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/test_instances.hpp"
#include "workload/synthetic.hpp"

namespace resex {
namespace {

Instance cluster(std::uint64_t seed, double load = 0.65) {
  SyntheticConfig gen;
  gen.seed = seed;
  gen.machines = 10;
  gen.exchangeMachines = 2;
  gen.shardsPerMachine = 10.0;
  gen.loadFactor = load;
  gen.placementSkew = 1.0;
  gen.skuCount = 1;
  return generateSynthetic(gen);
}

ExecutorConfig fastExecutor(std::uint64_t seed) {
  ExecutorConfig config;
  config.sra.lns.seed = seed;
  config.sra.lns.maxIterations = 2500;
  config.sra.polish = false;  // replans must be deterministic
  return config;
}

RebalanceResult planFor(const Instance& inst, std::uint64_t seed) {
  SraConfig config;
  config.lns.seed = seed;
  config.lns.maxIterations = 2500;
  config.polish = false;
  return Sra(config).rebalance(inst);
}

bool survivorsWithinAllowance(const Instance& inst, const ExecutionReport& run) {
  Assignment start(inst);
  Assignment after(inst, run.finalMapping);
  for (MachineId m = 0; m < inst.machineCount(); ++m) {
    if (std::find(run.crashedMachines.begin(), run.crashedMachines.end(), m) !=
        run.crashedMachines.end())
      continue;
    if (after.utilizationOf(m) > std::max(1.0, start.utilizationOf(m)) + 1e-9)
      return false;
  }
  return true;
}

TEST(ExecutorConfigValidation, RejectsOutOfRangeParameters) {
  auto expectThrow = [](ExecutorConfig config, const std::string& field) {
    try {
      validateExecutorConfig(config);
      FAIL() << "expected invalid_argument naming " << field;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos) << e.what();
    }
  };
  ExecutorConfig config;
  config.maxRetries = 63;  // 2^retries must stay representable
  expectThrow(config, "maxRetries");
  config = {};
  config.backoffBaseSeconds = 0.0;
  expectThrow(config, "backoffBaseSeconds");
  config = {};
  config.backoffCapSeconds = config.backoffBaseSeconds / 2.0;
  expectThrow(config, "backoffCapSeconds");
  config = {};
  config.migrationBandwidth = -1.0;
  expectThrow(config, "migrationBandwidth");
  config = {};
  config.epsilonCapacity = 0.0;
  expectThrow(config, "epsilonCapacity");
  EXPECT_NO_THROW(validateExecutorConfig(ExecutorConfig{}));
}

TEST(ExecutorConfigValidation, MessageCarriesTheValue) {
  ExecutorConfig config;
  config.migrationBandwidth = -2.5;
  try {
    validateExecutorConfig(config);
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'-2.5'"), std::string::npos) << e.what();
  }
}

TEST(FaultPlanValidation, RejectsOutOfRangeParameters) {
  FaultPlan plan;
  plan.copyFailureProbability = 1.5;
  EXPECT_THROW(validateFaultPlan(plan), std::invalid_argument);
  plan = {};
  plan.clusterBandwidthMultiplier = 0.0;
  EXPECT_THROW(validateFaultPlan(plan), std::invalid_argument);
  plan = {};
  plan.crashes.push_back(MachineCrashEvent{0, 0, 2.0});
  EXPECT_THROW(validateFaultPlan(plan), std::invalid_argument);
  plan = {};
  plan.stragglers.push_back(StragglerEvent{0, -1.0});
  EXPECT_THROW(validateFaultPlan(plan), std::invalid_argument);
  EXPECT_NO_THROW(validateFaultPlan(FaultPlan{}));
}

TEST(FaultInjector, DrawsAreDeterministicAndOrderIndependent) {
  FaultPlan plan;
  plan.seed = 42;
  plan.copyFailureProbability = 0.5;
  const FaultInjector a(plan);
  const FaultInjector b(plan);
  bool sawFail = false;
  bool sawPass = false;
  for (std::size_t phase = 0; phase < 4; ++phase)
    for (ShardId shard = 0; shard < 32; ++shard) {
      const bool fails = a.copyAttemptFails(phase, shard, 0);
      EXPECT_EQ(fails, b.copyAttemptFails(phase, shard, 0));
      (fails ? sawFail : sawPass) = true;
    }
  EXPECT_TRUE(sawFail);
  EXPECT_TRUE(sawPass);
  // Extremes short-circuit.
  plan.copyFailureProbability = 0.0;
  EXPECT_FALSE(FaultInjector(plan).copyAttemptFails(0, 0, 0));
  plan.copyFailureProbability = 1.0;
  EXPECT_TRUE(FaultInjector(plan).copyAttemptFails(0, 0, 0));
}

TEST(ReplanInstance, CollapsesCrashedAndDropsExchangeTags) {
  const Instance inst = cluster(7);
  std::vector<MachineId> mapping = inst.initialAssignment();
  mapping[0] = static_cast<MachineId>(inst.machineCount() - 1);  // on exchange
  const MachineId crashed[] = {3};
  const Instance replan = replanInstance(inst, crashed, mapping, 1e-6);
  for (std::size_t d = 0; d < inst.dims(); ++d)
    EXPECT_DOUBLE_EQ(replan.machine(3).capacity[d], 1e-6);
  EXPECT_EQ(replan.exchangeCount(), 0u);  // mid-flight shards may sit anywhere
  EXPECT_EQ(replan.initialAssignment(), mapping);
  EXPECT_EQ(replan.machine(0).capacity, inst.machine(0).capacity);
}

TEST(Executor, CleanRunMatchesThePlan) {
  const Instance inst = cluster(11);
  const RebalanceResult plan = planFor(inst, 1);
  ASSERT_GT(plan.schedule.moveCount(), 0u);
  const MigrationExecutor executor(fastExecutor(1));
  const ExecutionReport run = executor.execute(inst, plan.schedule);
  EXPECT_EQ(run.finalMapping, plan.finalMapping);
  EXPECT_DOUBLE_EQ(run.committedBytes, plan.schedule.totalBytes);
  EXPECT_EQ(run.movesCommitted, plan.schedule.moveCount());
  EXPECT_EQ(run.retries, 0u);
  EXPECT_EQ(run.abortedMoves, 0u);
  EXPECT_EQ(run.replans, 0u);
  EXPECT_DOUBLE_EQ(run.wastedBytes, 0.0);
  EXPECT_FALSE(run.degraded);
  EXPECT_TRUE(run.complete());
  EXPECT_TRUE(run.unexecutedMoves.empty());
  ASSERT_EQ(run.plans.size(), 1u);
  EXPECT_TRUE(run.plans[0].committed.complete);
}

TEST(Executor, RetriesAreDeterministicAcrossRuns) {
  const Instance inst = cluster(12);
  const RebalanceResult plan = planFor(inst, 2);
  FaultPlan faults;
  faults.seed = 99;
  faults.copyFailureProbability = 0.3;
  ExecutorConfig config = fastExecutor(2);
  config.maxRetries = 6;
  const MigrationExecutor executor(config);
  const ExecutionReport run = executor.execute(inst, plan.schedule, faults);
  const ExecutionReport rerun = executor.execute(inst, plan.schedule, faults);
  EXPECT_GT(run.retries, 0u);
  EXPECT_GT(run.wastedBytes, 0.0);  // failed attempts burn bytes
  EXPECT_GT(run.simulatedSeconds, 0.0);
  EXPECT_EQ(run.finalMapping, rerun.finalMapping);
  EXPECT_EQ(run.retries, rerun.retries);
  EXPECT_EQ(run.abortedMoves, rerun.abortedMoves);
  EXPECT_DOUBLE_EQ(run.committedBytes, rerun.committedBytes);
  EXPECT_DOUBLE_EQ(run.wastedBytes, rerun.wastedBytes);
  EXPECT_TRUE(survivorsWithinAllowance(inst, run));
}

TEST(Executor, RetryExhaustionDegradesWithoutThrowing) {
  const Instance inst = cluster(13);
  const RebalanceResult plan = planFor(inst, 3);
  ASSERT_GT(plan.schedule.moveCount(), 0u);
  FaultPlan faults;
  faults.copyFailureProbability = 1.0;  // every attempt fails
  ExecutorConfig config = fastExecutor(3);
  config.maxRetries = 1;
  const MigrationExecutor executor(config);
  ExecutionReport run;
  ASSERT_NO_THROW(run = executor.execute(inst, plan.schedule, faults));
  EXPECT_EQ(run.finalMapping, inst.initialAssignment());  // nothing moved
  EXPECT_EQ(run.movesCommitted, 0u);
  EXPECT_GT(run.abortedMoves, 0u);
  EXPECT_DOUBLE_EQ(run.committedBytes, 0.0);
  EXPECT_GT(run.wastedBytes, 0.0);
  EXPECT_TRUE(run.degraded);
  EXPECT_FALSE(run.unexecutedMoves.empty());
  // The partial result reports exactly the relocations that never happened.
  EXPECT_EQ(run.unexecutedMoves.size(),
            diffMoves(inst.initialAssignment(), plan.finalMapping).size());
}

TEST(Executor, CrashTriggersReplanAndSurvivorsStayValid) {
  const Instance inst = cluster(14, 0.6);
  const RebalanceResult plan = planFor(inst, 4);
  ASSERT_GT(plan.schedule.phaseCount(), 0u);
  FaultPlan faults;
  faults.seed = 5;
  faults.crashes.push_back(MachineCrashEvent{4, 0, 0.5});
  const MigrationExecutor executor(fastExecutor(4));
  const ExecutionReport run = executor.execute(inst, plan.schedule, faults);
  ASSERT_EQ(run.crashedMachines, std::vector<MachineId>{4});
  EXPECT_GE(run.replans, 1u);
  EXPECT_EQ(run.finalMapping.size(), inst.shardCount());
  EXPECT_TRUE(survivorsWithinAllowance(inst, run));
  if (!run.degraded) {
    for (ShardId s = 0; s < inst.shardCount(); ++s)
      EXPECT_NE(run.finalMapping[s], 4u) << "shard " << s << " left on the corpse";
  } else {
    EXPECT_TRUE(!run.unexecutedMoves.empty() || run.replanFailed);
  }
  // Every committed plan replays cleanly against its own instance.
  for (const PlanRecord& record : run.plans) {
    const Instance planInst =
        replanInstance(inst, record.crashedBefore, record.start, 1e-6);
    EXPECT_TRUE(
        verifySchedule(planInst, record.start, record.target, record.committed)
            .empty());
  }
}

TEST(Executor, ReplanBudgetZeroDegradesGracefully) {
  const Instance inst = cluster(15, 0.6);
  const RebalanceResult plan = planFor(inst, 5);
  FaultPlan faults;
  faults.crashes.push_back(MachineCrashEvent{2, 0, 0.0});
  ExecutorConfig config = fastExecutor(5);
  config.maxReplans = 0;
  const MigrationExecutor executor(config);
  const ExecutionReport run = executor.execute(inst, plan.schedule, faults);
  EXPECT_TRUE(run.replanFailed);
  EXPECT_TRUE(run.degraded);
  EXPECT_EQ(run.replans, 0u);
  EXPECT_EQ(run.finalMapping.size(), inst.shardCount());
  for (const MachineId m : run.finalMapping) EXPECT_LT(m, inst.machineCount());
  EXPECT_TRUE(survivorsWithinAllowance(inst, run));
}

TEST(Executor, StragglersStretchTheSimulatedClock) {
  const Instance inst = cluster(16);
  const RebalanceResult plan = planFor(inst, 6);
  ASSERT_GT(plan.schedule.moveCount(), 0u);
  const MigrationExecutor executor(fastExecutor(6));
  const ExecutionReport clean = executor.execute(inst, plan.schedule);
  FaultPlan slow;
  slow.clusterBandwidthMultiplier = 0.5;  // every NIC at half speed
  const ExecutionReport degraded = executor.execute(inst, plan.schedule, slow);
  EXPECT_EQ(degraded.finalMapping, clean.finalMapping);  // only time changes
  EXPECT_GT(degraded.simulatedSeconds, clean.simulatedSeconds);
}

}  // namespace
}  // namespace resex
