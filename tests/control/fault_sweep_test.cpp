// Randomized fault sweep: for a range of seeds, plan a rebalance, execute
// it under seeded copy failures plus a mid-flight machine crash, and check
// the invariants the executor guarantees regardless of what the faults do:
//
//   * the final mapping is always fully assigned (a real cluster state);
//   * every committed plan replays cleanly through verifySchedule against
//     its own replanning instance;
//   * committed bytes equal the sum of the committed schedules' totals;
//   * two runs with the same seeds match bit-for-bit;
//   * survivors never exceed max(capacity, their starting load);
//   * a non-degraded run leaves crashed machines empty, a degraded run
//     reports unexecuted moves or a failed replan.
//
// Registered under the `fault-sweep` ctest label so CI can run it under
// sanitizers explicitly.
#include <gtest/gtest.h>

#include <algorithm>

#include "control/executor.hpp"
#include "workload/synthetic.hpp"

namespace resex {
namespace {

struct SweepCase {
  std::uint64_t seed = 0;
  double copyFail = 0.0;
  bool crash = false;
  std::size_t maxRetries = 3;
};

void runSweepCase(const SweepCase& sweep) {
  SCOPED_TRACE("seed " + std::to_string(sweep.seed));
  SyntheticConfig gen;
  gen.seed = sweep.seed;
  gen.machines = 12;
  gen.exchangeMachines = 2;
  gen.shardsPerMachine = 10.0;
  gen.loadFactor = 0.6;
  gen.placementSkew = 1.0;
  gen.skuCount = 1;
  const Instance inst = generateSynthetic(gen);

  SraConfig sra;
  sra.lns.seed = sweep.seed + 1;
  sra.lns.maxIterations = 2000;
  sra.polish = false;
  const RebalanceResult plan = Sra(sra).rebalance(inst);
  if (plan.schedule.phaseCount() == 0) return;  // nothing to execute

  FaultPlan faults;
  faults.seed = sweep.seed * 31 + 7;
  faults.copyFailureProbability = sweep.copyFail;
  if (sweep.crash) {
    MachineCrashEvent crash;
    crash.machine = static_cast<MachineId>(sweep.seed % gen.machines);
    crash.phase = sweep.seed % 2;
    crash.fraction = 0.5;
    faults.crashes.push_back(crash);
  }

  ExecutorConfig config;
  config.maxRetries = sweep.maxRetries;
  config.maxReplans = 2;
  config.sra = sra;
  const MigrationExecutor executor(config);
  const ExecutionReport run = executor.execute(inst, plan.schedule, faults);
  const ExecutionReport rerun = executor.execute(inst, plan.schedule, faults);

  // Fully assigned mapping.
  ASSERT_EQ(run.finalMapping.size(), inst.shardCount());
  for (const MachineId m : run.finalMapping) ASSERT_LT(m, inst.machineCount());

  // Bit-for-bit determinism.
  EXPECT_EQ(run.finalMapping, rerun.finalMapping);
  EXPECT_EQ(run.retries, rerun.retries);
  EXPECT_EQ(run.abortedMoves, rerun.abortedMoves);
  EXPECT_EQ(run.replans, rerun.replans);
  EXPECT_DOUBLE_EQ(run.committedBytes, rerun.committedBytes);
  EXPECT_DOUBLE_EQ(run.wastedBytes, rerun.wastedBytes);

  // Committed plans replay cleanly; their byte totals add up.
  double committedTotal = 0.0;
  for (const PlanRecord& record : run.plans) {
    const Instance planInst =
        replanInstance(inst, record.crashedBefore, record.start,
                       config.epsilonCapacity);
    const auto problems =
        verifySchedule(planInst, record.start, record.target, record.committed);
    EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems[0]);
    committedTotal += record.committed.totalBytes;
  }
  EXPECT_NEAR(run.committedBytes, committedTotal,
              1e-9 * std::max(1.0, committedTotal));

  // Survivors stay within max(capacity, starting load).
  const auto isCrashed = [&run](MachineId m) {
    return std::find(run.crashedMachines.begin(), run.crashedMachines.end(),
                     m) != run.crashedMachines.end();
  };
  Assignment start(inst);
  Assignment after(inst, run.finalMapping);
  for (MachineId m = 0; m < inst.machineCount(); ++m) {
    if (isCrashed(m)) continue;
    EXPECT_LE(after.utilizationOf(m),
              std::max(1.0, start.utilizationOf(m)) + 1e-9)
        << "machine " << m;
  }

  // Crash accounting is coherent.
  if (!run.degraded) {
    for (ShardId s = 0; s < inst.shardCount(); ++s)
      EXPECT_FALSE(isCrashed(run.finalMapping[s]))
          << "shard " << s << " left on a crashed machine";
  } else {
    EXPECT_TRUE(!run.unexecutedMoves.empty() || run.replanFailed);
  }
}

TEST(FaultSweep, CopyFailuresOnly) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed)
    runSweepCase(SweepCase{seed, 0.25, false});
}

TEST(FaultSweep, CrashWithCopyFailures) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed)
    runSweepCase(SweepCase{seed, 0.2, true});
}

TEST(FaultSweep, AggressiveFaults) {
  // High failure rate with a tiny retry budget: degradation is likely; the
  // invariants must hold anyway.
  for (std::uint64_t seed = 5; seed <= 7; ++seed)
    runSweepCase(SweepCase{seed, 0.6, true, 0});
}

}  // namespace
}  // namespace resex
