#include "control/recovery.hpp"

#include <gtest/gtest.h>

#include "workload/synthetic.hpp"

namespace resex {
namespace {

Instance cluster(std::uint64_t seed, std::size_t exchange, double load = 0.75) {
  SyntheticConfig gen;
  gen.seed = seed;
  gen.machines = 12;
  gen.exchangeMachines = exchange;
  gen.shardsPerMachine = 12.0;
  gen.loadFactor = load;
  gen.placementSkew = 0.8;
  gen.skuCount = 1;
  return generateSynthetic(gen);
}

RecoveryConfig fastRecovery() {
  RecoveryConfig config;
  config.sra.lns.maxIterations = 4000;
  return config;
}

TEST(FailedMachine, CapacityCollapses) {
  const Instance inst = cluster(1, 2);
  const Instance crippled = withFailedMachine(inst, 3);
  for (std::size_t d = 0; d < inst.dims(); ++d)
    EXPECT_DOUBLE_EQ(crippled.machine(3).capacity[d], 1e-6);
  // Everything else untouched.
  EXPECT_EQ(crippled.machine(0).capacity, inst.machine(0).capacity);
  EXPECT_EQ(crippled.shardCount(), inst.shardCount());
  EXPECT_EQ(crippled.initialAssignment(), inst.initialAssignment());
}

TEST(FailedMachine, RejectsBadArguments) {
  const Instance inst = cluster(2, 1);
  EXPECT_THROW(withFailedMachine(inst, 999), std::invalid_argument);
  EXPECT_THROW(withFailedMachine(inst, 0, 0.0), std::invalid_argument);
}

TEST(Recovery, EvacuatesTheFailedMachine) {
  const Instance inst = cluster(3, 2);
  const RecoveryResult r = recoverFromFailure(inst, 2, fastRecovery());
  EXPECT_GT(r.shardsToEvacuate, 0u);
  EXPECT_TRUE(r.evacuated);
  for (ShardId s = 0; s < inst.shardCount(); ++s)
    EXPECT_NE(r.rebalance.finalMapping[s], 2u);
}

TEST(Recovery, SurvivorsStayWithinCapacity) {
  const Instance inst = cluster(4, 2);
  const RecoveryResult r = recoverFromFailure(inst, 5, fastRecovery());
  ASSERT_TRUE(r.evacuated);
  EXPECT_LE(r.survivorBottleneck, 1.0 + 1e-9);
}

TEST(Recovery, CompensationStillReturnsKVacantSurvivors) {
  const Instance inst = cluster(5, 2);
  const MachineId failed = 1;
  const RecoveryResult r = recoverFromFailure(inst, failed, fastRecovery());
  ASSERT_TRUE(r.evacuated);
  // Count vacant machines other than the corpse: must be >= k.
  std::vector<bool> occupied(inst.machineCount(), false);
  for (const MachineId m : r.rebalance.finalMapping) occupied[m] = true;
  std::size_t vacantSurvivors = 0;
  for (MachineId m = 0; m < inst.machineCount(); ++m)
    if (!occupied[m] && m != failed) ++vacantSurvivors;
  EXPECT_GE(vacantSurvivors, inst.exchangeCount());
}

TEST(Recovery, ScheduleIsTransientValid) {
  const Instance inst = cluster(6, 2);
  const RecoveryResult r = recoverFromFailure(inst, 0, fastRecovery());
  ASSERT_TRUE(r.evacuated);
  const Instance crippled = withFailedMachine(inst, 0);
  EXPECT_TRUE(verifySchedule(crippled, crippled.initialAssignment(),
                             r.rebalance.targetMapping, r.rebalance.schedule)
                  .empty());
}

TEST(Recovery, ExchangeMachinesMakeTightRecoveryPossible) {
  //

  // At load 0.85, the failed machine's shards need substantial headroom.
  // With two exchange machines recovery succeeds; without any, the same
  // cluster (identical regular machines and shards cannot be constructed
  // seed-identically, so compare success rates over seeds instead).
  int withExchange = 0;
  int withoutExchange = 0;
  for (std::uint64_t seed = 10; seed < 14; ++seed) {
    {
      const Instance inst = cluster(seed, 2, 0.85);
      const RecoveryResult r = recoverFromFailure(inst, 1, fastRecovery());
      if (r.evacuated && r.rebalance.scheduleComplete()) ++withExchange;
    }
    {
      const Instance inst = cluster(seed, 0, 0.85);
      const RecoveryResult r = recoverFromFailure(inst, 1, fastRecovery());
      if (r.evacuated && r.rebalance.scheduleComplete()) ++withoutExchange;
    }
  }
  EXPECT_GE(withExchange, withoutExchange);
  EXPECT_GE(withExchange, 3);
}

TEST(RecoveryConfigValidation, RejectsBadParametersNamingTheField) {
  RecoveryConfig config;
  config.epsilonCapacity = 0.0;
  try {
    validateRecoveryConfig(config);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("RecoveryConfig.epsilonCapacity"), std::string::npos) << what;
    EXPECT_NE(what.find("'0'"), std::string::npos) << what;
  }
  config = {};
  config.migrationBandwidth = -5.0;
  try {
    validateRecoveryConfig(config);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("RecoveryConfig.migrationBandwidth"), std::string::npos)
        << what;
    EXPECT_NE(what.find("'-5'"), std::string::npos) << what;
  }
  EXPECT_NO_THROW(validateRecoveryConfig(RecoveryConfig{}));
  // recoverFromFailure validates at entry.
  const Instance inst = cluster(20, 1);
  RecoveryConfig bad;
  bad.epsilonCapacity = -1.0;
  EXPECT_THROW(recoverFromFailure(inst, 0, bad), std::invalid_argument);
}

TEST(FailedMachine, ComposesForCascadingCrashes) {
  const Instance inst = cluster(21, 2);
  const Instance twice = withFailedMachine(withFailedMachine(inst, 3), 7);
  for (std::size_t d = 0; d < inst.dims(); ++d) {
    EXPECT_DOUBLE_EQ(twice.machine(3).capacity[d], 1e-6);
    EXPECT_DOUBLE_EQ(twice.machine(7).capacity[d], 1e-6);
  }
  EXPECT_EQ(twice.machine(0).capacity, inst.machine(0).capacity);
  // Collapsing an already-collapsed machine is a no-op.
  const Instance thrice = withFailedMachine(twice, 3);
  EXPECT_DOUBLE_EQ(thrice.machine(3).capacity[0], 1e-6);
}

TEST(Recovery, MultiFailureEvacuatesEveryCorpse) {
  const Instance inst = cluster(22, 2, 0.6);
  const MachineId failed[] = {2, 5};
  const RecoveryResult r =
      recoverFromFailure(inst, std::span<const MachineId>(failed), fastRecovery());
  EXPECT_GT(r.shardsToEvacuate, 0u);
  if (r.evacuated) {
    for (ShardId s = 0; s < inst.shardCount(); ++s) {
      EXPECT_NE(r.rebalance.finalMapping[s], 2u);
      EXPECT_NE(r.rebalance.finalMapping[s], 5u);
    }
    EXPECT_LE(r.survivorBottleneck, 1.0 + 1e-9);
  } else {
    // Degradation is allowed at this load, but must be reported coherently:
    // some shard still sits on a corpse.
    bool onCorpse = false;
    for (ShardId s = 0; s < inst.shardCount(); ++s)
      onCorpse |= r.rebalance.finalMapping[s] == 2u ||
                  r.rebalance.finalMapping[s] == 5u;
    EXPECT_TRUE(onCorpse);
  }
}

TEST(Recovery, MultiFailureRaisesTheCompensationTarget) {
  const Instance inst = cluster(23, 2, 0.55);
  const MachineId failed[] = {1, 4};
  const RecoveryResult r =
      recoverFromFailure(inst, std::span<const MachineId>(failed), fastRecovery());
  ASSERT_TRUE(r.evacuated);
  // Corpses must not masquerade as returned exchange machines: at least k
  // vacant machines besides the two dead ones.
  std::vector<bool> occupied(inst.machineCount(), false);
  for (const MachineId m : r.rebalance.finalMapping) occupied[m] = true;
  std::size_t vacantSurvivors = 0;
  for (MachineId m = 0; m < inst.machineCount(); ++m)
    if (!occupied[m] && m != 1u && m != 4u) ++vacantSurvivors;
  EXPECT_GE(vacantSurvivors, inst.exchangeCount());
}

TEST(Recovery, MultiFailureRejectsEmptyList) {
  const Instance inst = cluster(24, 1);
  EXPECT_THROW(
      recoverFromFailure(inst, std::span<const MachineId>{}, fastRecovery()),
      std::invalid_argument);
}

TEST(Recovery, ReplicatedClusterKeepsAntiAffinityThroughRecovery) {
  SyntheticConfig gen;
  gen.seed = 31;
  gen.machines = 10;
  gen.exchangeMachines = 2;
  gen.shardsPerMachine = 10.0;
  gen.replicationFactor = 2;
  gen.loadFactor = 0.65;
  gen.skuCount = 1;
  const Instance inst = generateSynthetic(gen);
  const RecoveryResult r = recoverFromFailure(inst, 4, fastRecovery());
  ASSERT_TRUE(r.evacuated);
  const Instance crippled = withFailedMachine(inst, 4);
  Assignment after(crippled, r.rebalance.finalMapping);
  const auto problems = after.validate(/*requireCapacity=*/false);
  for (const auto& p : problems)
    EXPECT_EQ(p.find("co-located"), std::string::npos) << p;
}

}  // namespace
}  // namespace resex
