#include "core/baselines.hpp"

#include <gtest/gtest.h>

#include "common/test_instances.hpp"
#include "workload/synthetic.hpp"

namespace resex {
namespace {

using testing::placedInstance;

Instance skewedInstance(std::uint64_t seed = 111) {
  SyntheticConfig config;
  config.seed = seed;
  config.machines = 10;
  config.exchangeMachines = 2;
  config.shardsPerMachine = 12.0;
  config.loadFactor = 0.6;
  config.placementSkew = 1.0;
  config.skuCount = 1;
  return generateSynthetic(config);
}

TEST(Noop, LeavesEverythingInPlace) {
  const Instance inst = skewedInstance();
  NoopRebalancer noop;
  const RebalanceResult r = noop.rebalance(inst);
  EXPECT_EQ(r.finalMapping, inst.initialAssignment());
  EXPECT_EQ(r.schedule.moveCount(), 0u);
  EXPECT_DOUBLE_EQ(r.after.bottleneckUtil, r.before.bottleneckUtil);
  EXPECT_TRUE(r.scheduleComplete());
}

TEST(SwapLs, ImprovesBottleneck) {
  const Instance inst = skewedInstance();
  SwapLocalSearch ls;
  const RebalanceResult r = ls.rebalance(inst);
  EXPECT_LT(r.after.bottleneckUtil, r.before.bottleneckUtil);
}

TEST(SwapLs, NeverTouchesExchangeMachines) {
  const Instance inst = skewedInstance();
  SwapLocalSearch ls;
  const RebalanceResult r = ls.rebalance(inst);
  for (ShardId s = 0; s < inst.shardCount(); ++s)
    EXPECT_LT(r.finalMapping[s], inst.regularCount()) << "shard " << s;
}

TEST(SwapLs, ScheduleIsValidStepByStep) {
  const Instance inst = skewedInstance(222);
  SwapLocalSearch ls;
  const RebalanceResult r = ls.rebalance(inst);
  EXPECT_TRUE(verifySchedule(inst, inst.initialAssignment(), r.finalMapping, r.schedule)
                  .empty());
}

TEST(SwapLs, EveryStepIsItsOwnPhase) {
  const Instance inst = skewedInstance(333);
  SwapLocalSearch ls;
  const RebalanceResult r = ls.rebalance(inst);
  for (const Phase& p : r.schedule.phases) EXPECT_LE(p.moves.size(), 2u);
}

TEST(SwapLs, StallsOnTightSwapDeadlock) {
  // Two 70-shards on two 100-machines with a spare exchange machine: the
  // balanced state requires a swap the baseline cannot execute (no
  // exchange usage, no staging). It must stop without improvement.
  const Instance inst = placedInstance(2, 1, {70.0, 70.0}, {0, 1});
  SwapLocalSearch ls;
  const RebalanceResult r = ls.rebalance(inst);
  EXPECT_EQ(r.schedule.moveCount(), 0u);
  EXPECT_DOUBLE_EQ(r.after.bottleneckUtil, 0.7);
}

TEST(SwapLs, RespectsStepBudget) {
  SwapLsConfig config;
  config.maxSteps = 3;
  const Instance inst = skewedInstance(444);
  SwapLocalSearch ls(config);
  const RebalanceResult r = ls.rebalance(inst);
  EXPECT_LE(r.schedule.phaseCount(), 3u);
}

TEST(Greedy, ImprovesSkewedCluster) {
  const Instance inst = skewedInstance(555);
  GreedyRebalancer greedy;
  const RebalanceResult r = greedy.rebalance(inst);
  EXPECT_LT(r.after.bottleneckUtil, r.before.bottleneckUtil);
  EXPECT_TRUE(verifySchedule(inst, inst.initialAssignment(), r.finalMapping, r.schedule)
                  .empty());
}

TEST(Greedy, OneMovePerPhase) {
  const Instance inst = skewedInstance(666);
  GreedyRebalancer greedy;
  const RebalanceResult r = greedy.rebalance(inst);
  for (const Phase& p : r.schedule.phases) EXPECT_EQ(p.moves.size(), 1u);
}

TEST(Greedy, NeverUsesExchangeMachines) {
  const Instance inst = skewedInstance(777);
  GreedyRebalancer greedy;
  const RebalanceResult r = greedy.rebalance(inst);
  for (ShardId s = 0; s < inst.shardCount(); ++s)
    EXPECT_LT(r.finalMapping[s], inst.regularCount());
}

TEST(Greedy, RespectsMoveBudget) {
  GreedyConfig config;
  config.maxMoves = 2;
  const Instance inst = skewedInstance(888);
  GreedyRebalancer greedy(config);
  const RebalanceResult r = greedy.rebalance(inst);
  EXPECT_LE(r.schedule.moveCount(), 2u);
}

TEST(FfdRepack, AchievesNearIdealBalance) {
  const Instance inst = skewedInstance(999);
  FfdRepack ffd;
  const RebalanceResult r = ffd.rebalance(inst);
  // FFD over many small shards lands close to the mean utilization.
  EXPECT_LT(r.finalScore.bottleneckUtil, r.before.bottleneckUtil);
  EXPECT_LT(r.finalScore.bottleneckUtil, 0.75);
}

TEST(FfdRepack, MovesFarMoreBytesThanSwapLs) {
  const Instance inst = skewedInstance(1010);
  FfdRepack ffd;
  SwapLocalSearch ls;
  const RebalanceResult rFfd = ffd.rebalance(inst);
  const RebalanceResult rLs = ls.rebalance(inst);
  EXPECT_GT(rFfd.after.migratedBytes, rLs.after.migratedBytes);
}

TEST(FfdRepack, TargetsOnlyRegularMachines) {
  const Instance inst = skewedInstance(1111);
  FfdRepack ffd;
  const RebalanceResult r = ffd.rebalance(inst);
  for (const MachineId m : r.targetMapping) EXPECT_LT(m, inst.regularCount());
}

TEST(AllBaselines, AfterStateIsCapacityFeasible) {
  const Instance inst = skewedInstance(1212);
  NoopRebalancer noop;
  SwapLocalSearch ls;
  GreedyRebalancer greedy;
  for (Rebalancer* r : std::initializer_list<Rebalancer*>{&noop, &ls, &greedy}) {
    const RebalanceResult result = r->rebalance(inst);
    Assignment after(inst, result.finalMapping);
    EXPECT_TRUE(after.validate(/*requireCapacity=*/true).empty()) << r->name();
  }
}

TEST(Flow, ImprovesSkewedCluster) {
  const Instance inst = skewedInstance(1313);
  FlowRebalancer flow;
  const RebalanceResult r = flow.rebalance(inst);
  EXPECT_LT(r.after.bottleneckUtil, r.before.bottleneckUtil);
  EXPECT_TRUE(verifySchedule(inst, inst.initialAssignment(), r.finalMapping, r.schedule)
                  .empty());
}

TEST(Flow, StopsWithinTolerance) {
  const Instance inst = skewedInstance(1414);
  FlowConfig config;
  config.tolerance = 0.05;
  FlowRebalancer flow(config);
  const RebalanceResult r = flow.rebalance(inst);
  // After convergence, max and min regular-machine utilization are within
  // ~2*tolerance of each other (or the search got stuck, in which case
  // the bottleneck must still be no worse than before).
  EXPECT_LE(r.after.bottleneckUtil, r.before.bottleneckUtil + 1e-9);
}

TEST(Flow, NeverUsesExchangeMachines) {
  const Instance inst = skewedInstance(1515);
  FlowRebalancer flow;
  const RebalanceResult r = flow.rebalance(inst);
  for (ShardId s = 0; s < inst.shardCount(); ++s)
    EXPECT_LT(r.finalMapping[s], inst.regularCount());
}

TEST(Flow, RespectsMoveBudget) {
  FlowConfig config;
  config.maxMoves = 3;
  const Instance inst = skewedInstance(1616);
  FlowRebalancer flow(config);
  const RebalanceResult r = flow.rebalance(inst);
  EXPECT_LE(r.schedule.moveCount(), 3u);
}

TEST(Flow, KeepsAntiAffinity) {
  SyntheticConfig gen;
  gen.seed = 1717;
  gen.machines = 10;
  gen.exchangeMachines = 1;
  gen.shardsPerMachine = 10.0;
  gen.replicationFactor = 2;
  gen.loadFactor = 0.6;
  gen.placementSkew = 1.0;
  const Instance inst = generateSynthetic(gen);
  FlowRebalancer flow;
  const RebalanceResult r = flow.rebalance(inst);
  Assignment after(inst, r.finalMapping);
  const auto problems = after.validate(false);
  for (const auto& p : problems)
    EXPECT_EQ(p.find("co-located"), std::string::npos) << p;
}

TEST(ApplySchedule, ReplaysPhases) {
  Schedule s;
  Phase p1;
  p1.moves.push_back(Move{0, 0, 1});
  Phase p2;
  p2.moves.push_back(Move{0, 1, 2});
  p2.moves.push_back(Move{1, 1, 0});
  s.phases = {p1, p2};
  const std::vector<MachineId> start{0, 1};
  const auto result = applySchedule(start, s);
  EXPECT_EQ(result, (std::vector<MachineId>{2, 0}));
}

}  // namespace
}  // namespace resex
