#include "metrics/balance.hpp"

#include <gtest/gtest.h>

#include "common/test_instances.hpp"

namespace resex {
namespace {

using testing::placedInstance;
using testing::uniformInstance;

TEST(Balance, PerfectlyEvenCluster) {
  const Instance inst = uniformInstance(4, 0, {25.0, 25.0, 25.0, 25.0});
  Assignment a(inst);
  const BalanceMetrics m = measureBalance(a);
  EXPECT_DOUBLE_EQ(m.bottleneckUtil, 0.25);
  EXPECT_DOUBLE_EQ(m.meanUtil, 0.25);
  EXPECT_NEAR(m.utilCv, 0.0, 1e-12);
  EXPECT_NEAR(m.jain, 1.0, 1e-12);
  EXPECT_TRUE(m.feasible);
  EXPECT_EQ(m.movedShards, 0u);
}

TEST(Balance, SkewedClusterHasHighCv) {
  const Instance inst = placedInstance(4, 0, {80.0, 5.0, 5.0, 5.0}, {0, 1, 2, 3});
  Assignment a(inst);
  const BalanceMetrics m = measureBalance(a);
  EXPECT_DOUBLE_EQ(m.bottleneckUtil, 0.8);
  EXPECT_GT(m.utilCv, 1.0);
  EXPECT_LT(m.jain, 0.5);
}

TEST(Balance, PerDimBottleneckSeparatesDimensions) {
  std::vector<Machine> machines(2);
  machines[0] = {0, ResourceVector{100.0, 100.0}, false, 0};
  machines[1] = {1, ResourceVector{100.0, 100.0}, false, 0};
  std::vector<Shard> shards(2);
  shards[0] = {0, ResourceVector{70.0, 10.0}, 1.0};
  shards[1] = {1, ResourceVector{10.0, 50.0}, 1.0};
  const Instance inst(2, std::move(machines), std::move(shards), {0, 1}, 0,
                      ResourceVector{1.0, 1.0});
  Assignment a(inst);
  const BalanceMetrics m = measureBalance(a);
  ASSERT_EQ(m.perDimBottleneck.size(), 2u);
  EXPECT_DOUBLE_EQ(m.perDimBottleneck[0], 0.7);
  EXPECT_DOUBLE_EQ(m.perDimBottleneck[1], 0.5);
  EXPECT_DOUBLE_EQ(m.bottleneckUtil, 0.7);
}

TEST(Balance, VacantCountIncludesExchange) {
  const Instance inst = uniformInstance(3, 2, {10.0, 10.0, 10.0});
  Assignment a(inst);
  const BalanceMetrics m = measureBalance(a);
  EXPECT_EQ(m.vacantMachines, 2u);
}

TEST(Balance, ExchangeMachinesExcludedFromMeanByDefault) {
  const Instance inst = uniformInstance(2, 2, {50.0, 50.0});
  Assignment a(inst);
  const BalanceMetrics without = measureBalance(a, /*includeExchange=*/false);
  const BalanceMetrics with = measureBalance(a, /*includeExchange=*/true);
  EXPECT_DOUBLE_EQ(without.meanUtil, 0.5);
  EXPECT_DOUBLE_EQ(with.meanUtil, 0.25);  // two vacant machines dilute
}

TEST(Balance, InfeasibleWhenOverCapacity) {
  const Instance inst = uniformInstance(2, 0, {60.0, 70.0});
  Assignment a(inst, {0, 0});
  const BalanceMetrics m = measureBalance(a);
  EXPECT_FALSE(m.feasible);
  EXPECT_GT(m.bottleneckUtil, 1.0);
}

TEST(Balance, MigrationFieldsMirrorAssignment) {
  const Instance inst = uniformInstance(3, 0, {10.0, 20.0, 30.0});
  Assignment a(inst);
  a.moveShard(2, 0);
  const BalanceMetrics m = measureBalance(a);
  EXPECT_EQ(m.movedShards, 1u);
  EXPECT_DOUBLE_EQ(m.migratedBytes, 30.0);
}

TEST(Balance, SummaryContainsKeyNumbers) {
  const Instance inst = uniformInstance(2, 0, {50.0, 50.0});
  Assignment a(inst);
  const std::string text = measureBalance(a).summary();
  EXPECT_NE(text.find("bottleneck=0.5"), std::string::npos);
  EXPECT_NE(text.find("feasible=yes"), std::string::npos);
}

}  // namespace
}  // namespace resex
