#include "core/objective.hpp"

#include <gtest/gtest.h>

#include "common/test_instances.hpp"

namespace resex {
namespace {

using testing::placedInstance;
using testing::uniformInstance;

TEST(Score, LexicographicOrder) {
  Score a{0, 0.5, 0.1, 100.0};
  Score b{0, 0.6, 0.0, 0.0};
  EXPECT_TRUE(a.betterThan(b));
  EXPECT_FALSE(b.betterThan(a));
}

TEST(Score, VacancyDeficitDominatesEverything) {
  Score feasible{0, 0.99, 9.0, 1e12};
  Score infeasible{1, 0.1, 0.0, 0.0};
  EXPECT_TRUE(feasible.betterThan(infeasible));
  EXPECT_FALSE(infeasible.betterThan(feasible));
}

TEST(Score, TieOnBottleneckFallsToSpread) {
  Score a{0, 0.5, 0.1, 50.0};
  Score b{0, 0.5, 0.2, 10.0};
  EXPECT_TRUE(a.betterThan(b));
}

TEST(Score, TieOnSpreadFallsToBytes) {
  Score a{0, 0.5, 0.1, 10.0};
  Score b{0, 0.5, 0.1, 50.0};
  EXPECT_TRUE(a.betterThan(b));
  EXPECT_FALSE(b.betterThan(a));
}

TEST(Score, EqualScoresAreNotBetter) {
  Score a{0, 0.5, 0.1, 10.0};
  EXPECT_FALSE(a.betterThan(a));
}

TEST(Score, ToleranceAbsorbsNoise) {
  Score a{0, 0.5, 0.1, 10.0};
  Score b{0, 0.5 + 1e-12, 0.1, 10.0};
  EXPECT_FALSE(a.betterThan(b));
  EXPECT_FALSE(b.betterThan(a));
}

TEST(Score, ToStringMentionsFields) {
  Score s{1, 0.5, 0.2, 3.0};
  const std::string text = s.toString();
  EXPECT_NE(text.find("deficit=1"), std::string::npos);
  EXPECT_NE(text.find("0.5"), std::string::npos);
}

TEST(Objective, EvaluateInitialState) {
  const Instance inst = uniformInstance(2, 1, {40.0, 20.0});
  const Objective obj(inst.exchangeCount());
  Assignment a(inst);
  const Score s = obj.evaluate(a);
  EXPECT_EQ(s.vacancyDeficit, 0u);  // exchange machine is vacant
  EXPECT_DOUBLE_EQ(s.bottleneckUtil, 0.4);
  EXPECT_DOUBLE_EQ(s.migratedBytes, 0.0);
  EXPECT_NEAR(s.meanSqUtil, (0.16 + 0.04) / 3.0, 1e-12);
}

TEST(Objective, DeficitAppearsWhenVacancyConsumed) {
  const Instance inst = placedInstance(2, 1, {40.0, 20.0, 10.0}, {0, 1, 0});
  const Objective obj(inst.exchangeCount());
  Assignment a(inst);
  a.moveShard(2, 2);  // occupy the exchange machine; all three machines busy
  const Score s = obj.evaluate(a);
  EXPECT_EQ(s.vacancyDeficit, 1u);
}

TEST(Objective, DeficitClearedByDrainingRegularMachine) {
  const Instance inst = placedInstance(2, 1, {40.0, 20.0, 10.0}, {0, 1, 0});
  const Objective obj(inst.exchangeCount());
  Assignment a(inst);
  a.moveShard(2, 2);
  a.moveShard(1, 2);  // machine 1 drained: one vacancy restored
  const Score s = obj.evaluate(a);
  EXPECT_EQ(s.vacancyDeficit, 0u);
}

TEST(Objective, ScalarizePenalizesDeficitHeavily) {
  const Objective obj(1);
  Score feasible{0, 0.9, 0.5, 0.0};
  Score infeasible{1, 0.1, 0.0, 0.0};
  EXPECT_LT(obj.scalarize(feasible), obj.scalarize(infeasible));
}

TEST(Objective, ScalarizeMonotoneInBottleneck) {
  const Objective obj(0);
  Score lo{0, 0.4, 0.1, 10.0};
  Score hi{0, 0.6, 0.1, 10.0};
  EXPECT_LT(obj.scalarize(lo), obj.scalarize(hi));
}

TEST(Objective, BytesWeightBreaksTiesOnlyGently) {
  // Normalizer 1e9 total bytes, weight 0.05.
  const Objective obj(0, 0.1, 0.05, 1e9);
  Score cheap{0, 0.5, 0.1, 0.0};
  Score pricey{0, 0.5, 0.1, 1e9};
  EXPECT_LT(obj.scalarize(cheap), obj.scalarize(pricey));
  // Moving the whole cluster costs exactly bytesWeight in scalar terms,
  // so a meaningful bottleneck improvement always dominates.
  Score better{0, 0.4, 0.1, 1e9};
  EXPECT_LT(obj.scalarize(better), obj.scalarize(cheap));
}

TEST(Objective, ZeroNormalizerRemovesBytesFromScalar) {
  const Objective obj(0);
  Score cheap{0, 0.5, 0.1, 0.0};
  Score pricey{0, 0.5, 0.1, 1e12};
  EXPECT_DOUBLE_EQ(obj.scalarize(cheap), obj.scalarize(pricey));
  // Lexicographic comparison still prefers fewer bytes.
  EXPECT_TRUE(cheap.betterThan(pricey));
}

}  // namespace
}  // namespace resex
