#include "core/objective.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/test_instances.hpp"
#include "util/rng.hpp"

namespace resex {
namespace {

using testing::placedInstance;
using testing::uniformInstance;

TEST(Score, LexicographicOrder) {
  Score a{0, 0.5, 0.1, 100.0};
  Score b{0, 0.6, 0.0, 0.0};
  EXPECT_TRUE(a.betterThan(b));
  EXPECT_FALSE(b.betterThan(a));
}

TEST(Score, VacancyDeficitDominatesEverything) {
  Score feasible{0, 0.99, 9.0, 1e12};
  Score infeasible{1, 0.1, 0.0, 0.0};
  EXPECT_TRUE(feasible.betterThan(infeasible));
  EXPECT_FALSE(infeasible.betterThan(feasible));
}

TEST(Score, TieOnBottleneckFallsToSpread) {
  Score a{0, 0.5, 0.1, 50.0};
  Score b{0, 0.5, 0.2, 10.0};
  EXPECT_TRUE(a.betterThan(b));
}

TEST(Score, TieOnSpreadFallsToBytes) {
  Score a{0, 0.5, 0.1, 10.0};
  Score b{0, 0.5, 0.1, 50.0};
  EXPECT_TRUE(a.betterThan(b));
  EXPECT_FALSE(b.betterThan(a));
}

TEST(Score, EqualScoresAreNotBetter) {
  Score a{0, 0.5, 0.1, 10.0};
  EXPECT_FALSE(a.betterThan(a));
}

TEST(Score, ToleranceAbsorbsNoise) {
  Score a{0, 0.5, 0.1, 10.0};
  Score b{0, 0.5 + 1e-12, 0.1, 10.0};
  EXPECT_FALSE(a.betterThan(b));
  EXPECT_FALSE(b.betterThan(a));
}

TEST(Score, ToStringMentionsFields) {
  Score s{1, 0.5, 0.2, 3.0};
  const std::string text = s.toString();
  EXPECT_NE(text.find("deficit=1"), std::string::npos);
  EXPECT_NE(text.find("0.5"), std::string::npos);
}

// -- Strict-weak-order properties of the quantized comparison --------------
//
// The previous tolerance-band implementation was non-transitive: a ~ b and
// b ~ c (each within tol) while a < c, which let best-score tracking walk
// downhill through a chain of "equal within tolerance" candidates. The
// quantized comparison must behave as a single canonical strict weak order.

Score randomScore(Rng& rng) {
  Score s;
  s.vacancyDeficit = rng.below(3);
  // Cluster values around bucket edges so equal-bucket and adjacent-bucket
  // pairs are both common.
  s.bottleneckUtil = 0.5 + static_cast<double>(rng.below(6)) * 1e-9 * 0.4;
  s.meanSqUtil = 0.25 + static_cast<double>(rng.below(6)) * 1e-4 * 0.4;
  s.migratedBytes = static_cast<double>(rng.below(4)) * 1e-6 * 0.4;
  return s;
}

TEST(Score, ComparisonIsIrreflexiveAndAsymmetric) {
  Rng rng(42);
  for (int i = 0; i < 20000; ++i) {
    const Score a = randomScore(rng);
    const Score b = randomScore(rng);
    EXPECT_FALSE(a.betterThan(a));
    if (a.betterThan(b)) EXPECT_FALSE(b.betterThan(a));
  }
}

TEST(Score, ComparisonIsTransitive) {
  Rng rng(43);
  for (int i = 0; i < 20000; ++i) {
    const Score a = randomScore(rng);
    const Score b = randomScore(rng);
    const Score c = randomScore(rng);
    if (a.betterThan(b) && b.betterThan(c)) EXPECT_TRUE(a.betterThan(c));
    // Equivalence ("neither better") must be transitive too — this is the
    // property tolerance bands break.
    const bool abEq = !a.betterThan(b) && !b.betterThan(a);
    const bool bcEq = !b.betterThan(c) && !c.betterThan(b);
    if (abEq && bcEq) {
      EXPECT_FALSE(a.betterThan(c));
      EXPECT_FALSE(c.betterThan(a));
    }
  }
}

TEST(Score, BestTrackingNeverRegressesThroughNoiseChains) {
  // Feed best-score tracking (keep `best` iff candidate.betterThan(best))
  // a long chain of candidates that differ by sub-tolerance noise, with
  // occasional real improvements. The tracked best must never end up worse
  // than any candidate it once rejected or adopted.
  Rng rng(44);
  Score best{0, 0.9, 0.5, 100.0};
  std::vector<Score> adopted{best};
  Score truth = best;  // noise-free shadow of the real best
  double realBottleneck = 0.9;
  for (int i = 0; i < 50000; ++i) {
    Score cand = truth;
    if (rng.chance(0.02)) {
      realBottleneck -= 1e-4;  // genuine improvement, well above tol
      truth.bottleneckUtil = realBottleneck;
      cand = truth;
    }
    // Sub-tolerance jitter, the incremental-update noise this guards.
    cand.bottleneckUtil += (rng.uniform() - 0.5) * 1e-10;
    cand.meanSqUtil += (rng.uniform() - 0.5) * 1e-6;
    if (cand.betterThan(best)) {
      best = cand;
      adopted.push_back(cand);
    }
  }
  // Every adoption must have strictly improved on ALL previous adoptions
  // (transitivity guarantees this; bands did not).
  for (std::size_t i = 1; i < adopted.size(); ++i)
    for (std::size_t j = 0; j < i; ++j)
      EXPECT_FALSE(adopted[j].betterThan(adopted[i]))
          << "adoption " << i << " regressed vs earlier adoption " << j;
  // And the final best must reflect the genuine improvements.
  EXPECT_NEAR(best.bottleneckUtil, realBottleneck, 1e-6);
}

TEST(Objective, EvaluateInitialState) {
  const Instance inst = uniformInstance(2, 1, {40.0, 20.0});
  const Objective obj(inst.exchangeCount());
  Assignment a(inst);
  const Score s = obj.evaluate(a);
  EXPECT_EQ(s.vacancyDeficit, 0u);  // exchange machine is vacant
  EXPECT_DOUBLE_EQ(s.bottleneckUtil, 0.4);
  EXPECT_DOUBLE_EQ(s.migratedBytes, 0.0);
  EXPECT_NEAR(s.meanSqUtil, (0.16 + 0.04) / 3.0, 1e-12);
}

TEST(Objective, DeficitAppearsWhenVacancyConsumed) {
  const Instance inst = placedInstance(2, 1, {40.0, 20.0, 10.0}, {0, 1, 0});
  const Objective obj(inst.exchangeCount());
  Assignment a(inst);
  a.moveShard(2, 2);  // occupy the exchange machine; all three machines busy
  const Score s = obj.evaluate(a);
  EXPECT_EQ(s.vacancyDeficit, 1u);
}

TEST(Objective, DeficitClearedByDrainingRegularMachine) {
  const Instance inst = placedInstance(2, 1, {40.0, 20.0, 10.0}, {0, 1, 0});
  const Objective obj(inst.exchangeCount());
  Assignment a(inst);
  a.moveShard(2, 2);
  a.moveShard(1, 2);  // machine 1 drained: one vacancy restored
  const Score s = obj.evaluate(a);
  EXPECT_EQ(s.vacancyDeficit, 0u);
}

TEST(Objective, ScalarizePenalizesDeficitHeavily) {
  const Objective obj(1);
  Score feasible{0, 0.9, 0.5, 0.0};
  Score infeasible{1, 0.1, 0.0, 0.0};
  EXPECT_LT(obj.scalarize(feasible), obj.scalarize(infeasible));
}

TEST(Objective, ScalarizeMonotoneInBottleneck) {
  const Objective obj(0);
  Score lo{0, 0.4, 0.1, 10.0};
  Score hi{0, 0.6, 0.1, 10.0};
  EXPECT_LT(obj.scalarize(lo), obj.scalarize(hi));
}

TEST(Objective, BytesWeightBreaksTiesOnlyGently) {
  // Normalizer 1e9 total bytes, weight 0.05.
  const Objective obj(0, 0.1, 0.05, 1e9);
  Score cheap{0, 0.5, 0.1, 0.0};
  Score pricey{0, 0.5, 0.1, 1e9};
  EXPECT_LT(obj.scalarize(cheap), obj.scalarize(pricey));
  // Moving the whole cluster costs exactly bytesWeight in scalar terms,
  // so a meaningful bottleneck improvement always dominates.
  Score better{0, 0.4, 0.1, 1e9};
  EXPECT_LT(obj.scalarize(better), obj.scalarize(cheap));
}

TEST(Objective, ZeroNormalizerRemovesBytesFromScalar) {
  const Objective obj(0);
  Score cheap{0, 0.5, 0.1, 0.0};
  Score pricey{0, 0.5, 0.1, 1e12};
  EXPECT_DOUBLE_EQ(obj.scalarize(cheap), obj.scalarize(pricey));
  // Lexicographic comparison still prefers fewer bytes.
  EXPECT_TRUE(cheap.betterThan(pricey));
}

}  // namespace
}  // namespace resex
