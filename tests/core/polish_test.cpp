#include "core/polish.hpp"

#include <gtest/gtest.h>

#include "common/test_instances.hpp"
#include "workload/synthetic.hpp"

namespace resex {
namespace {

using testing::placedInstance;

TEST(Polish, FlattensObviousImbalance) {
  // Machine 0 holds everything; polish must spread.
  const Instance inst =
      placedInstance(4, 0, {20.0, 20.0, 20.0, 20.0}, {0, 0, 0, 0});
  Assignment a(inst);
  const Objective obj(0);
  const PolishStats stats = polishAssignment(a, obj);
  EXPECT_GT(stats.moves + stats.swaps, 0u);
  EXPECT_NEAR(a.bottleneckUtilization(), 0.2, 1e-9);
  EXPECT_TRUE(a.validate(true).empty());
}

TEST(Polish, NeverIncreasesBottleneck) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Instance inst = tinyTestInstance(seed, 8, 80, 2, 0.7);
    Assignment a(inst);
    const Objective obj(inst.exchangeCount());
    const double before = a.bottleneckUtilization();
    polishAssignment(a, obj);
    EXPECT_LE(a.bottleneckUtilization(), before + 1e-9);
    EXPECT_TRUE(a.validate(true).empty());
  }
}

TEST(Polish, RespectsVacancyTarget) {
  const Instance inst = tinyTestInstance(5, 6, 48, 2, 0.7);
  Assignment a(inst);
  const Objective obj(inst.exchangeCount());
  polishAssignment(a, obj);
  EXPECT_GE(a.vacantCount(), obj.vacancyTarget());
}

TEST(Polish, StepBudgetLimitsWork) {
  const Instance inst =
      placedInstance(4, 0, {20.0, 20.0, 20.0, 20.0}, {0, 0, 0, 0});
  Assignment a(inst);
  const Objective obj(0);
  const PolishStats stats = polishAssignment(a, obj, /*maxSteps=*/1);
  EXPECT_EQ(stats.moves + stats.swaps, 1u);
}

TEST(Polish, AlreadyOptimalIsNoop) {
  const Instance inst = placedInstance(2, 0, {30.0, 30.0}, {0, 1});
  Assignment a(inst);
  const Objective obj(0);
  const PolishStats stats = polishAssignment(a, obj);
  EXPECT_EQ(stats.moves + stats.swaps, 0u);
  EXPECT_EQ(a.mapping(), inst.initialAssignment());
}

TEST(Polish, UsesSwapsWhenMovesAreCapacityBlocked) {
  // m0: 70 + 20 (bneck 0.9); m1: 55. Moving 20 to m1 gives 75 vs 70 ->
  // bottleneck 0.75; swapping 20 <-> 55... polish picks the best option
  // and must land at most 0.75.
  const Instance inst = placedInstance(2, 0, {70.0, 20.0, 55.0}, {0, 0, 1});
  Assignment a(inst);
  const Objective obj(0);
  polishAssignment(a, obj);
  EXPECT_LE(a.bottleneckUtilization(), 0.75 + 1e-9);
}

TEST(Prune, ReturnsPointlessMoves) {
  const Instance inst = placedInstance(3, 0, {10.0, 10.0, 10.0}, {0, 1, 2});
  Assignment a(inst);
  // Displace shard 0 for no reason.
  a.moveShard(0, 1);
  const Objective obj(0);
  const std::size_t returned = pruneRedundantMoves(a, obj, 0.5);
  EXPECT_EQ(returned, 1u);
  EXPECT_EQ(a.machineOf(0), 0u);
  EXPECT_EQ(a.migratedBytes(), 0.0);
}

TEST(Prune, KeepsMovesTheBottleneckNeeds) {
  // m0 held 60+30 (0.9); shard 1 moved to m1 (30). Returning it would
  // push m0 back to 0.9 > cap 0.7 -> must stay.
  const Instance inst = placedInstance(2, 0, {60.0, 30.0}, {0, 0});
  Assignment a(inst);
  a.moveShard(1, 1);
  const Objective obj(0);
  const std::size_t returned = pruneRedundantMoves(a, obj, 0.7);
  EXPECT_EQ(returned, 0u);
  EXPECT_EQ(a.machineOf(1), 1u);
}

TEST(Prune, NeverBreaksVacancyTarget) {
  // Shard 0 was moved off machine 0, which is now the only vacancy
  // satisfying the target; returning it would violate compensation.
  const Instance inst = placedInstance(2, 0, {10.0, 10.0}, {0, 1});
  Assignment a(inst);
  a.moveShard(0, 1);  // machine 0 vacant now
  const Objective obj(/*vacancyTarget=*/1);
  const std::size_t returned = pruneRedundantMoves(a, obj, 1.0);
  EXPECT_EQ(returned, 0u);
  EXPECT_TRUE(a.isVacant(0));
}

TEST(Prune, RespectsCapAndCapacity) {
  const Instance inst = placedInstance(2, 0, {60.0, 50.0}, {0, 1});
  Assignment a(inst);
  a.moveShard(1, 0);  // m0 now 110: over capacity (allowed by raw move API)
  const Objective obj(0);
  // Returning shard 1 home is feasible and below cap -> must happen.
  const std::size_t returned = pruneRedundantMoves(a, obj, 0.6);
  EXPECT_EQ(returned, 1u);
  EXPECT_TRUE(a.validate(true).empty());
}

TEST(Prune, MultiPassChainsReturns) {
  // Shard 1's return is blocked until shard 0 returns first.
  // m0 cap 100: shard0 (60) home m0 but sits on m1; shard1 (50) home m1
  // but sits on m2. Returning shard1 to m1 first requires shard0 to leave.
  const Instance inst = placedInstance(3, 0, {60.0, 50.0}, {0, 1});
  Assignment a(inst);
  a.moveShard(0, 1);
  a.moveShard(1, 2);
  const Objective obj(0);
  const std::size_t returned = pruneRedundantMoves(a, obj, 0.61);
  EXPECT_EQ(returned, 2u);
  EXPECT_EQ(a.machineOf(0), 0u);
  EXPECT_EQ(a.machineOf(1), 1u);
}

}  // namespace
}  // namespace resex
