#include "metrics/report.hpp"

#include <gtest/gtest.h>

#include "core/sra.hpp"
#include "workload/synthetic.hpp"

namespace resex {
namespace {

RebalanceResult sampleResult() {
  const Instance inst = tinyTestInstance(5, 6, 48, 2, 0.7);
  SraConfig config;
  config.lns.maxIterations = 800;
  Sra sra(config);
  return sra.rebalance(inst);
}

TEST(Report, TextMentionsKeySections) {
  const RebalanceResult result = sampleResult();
  const std::string text = renderReport(result);
  EXPECT_NE(text.find("algorithm: SRA"), std::string::npos);
  EXPECT_NE(text.find("before:"), std::string::npos);
  EXPECT_NE(text.find("after:"), std::string::npos);
  EXPECT_NE(text.find("schedule:"), std::string::npos);
  EXPECT_NE(text.find("score:"), std::string::npos);
}

TEST(Report, JsonIsStructurallySound) {
  const RebalanceResult result = sampleResult();
  const std::string json = toJson(result);
  // No DOM parser in-tree; check bracket balance and key presence.
  long depth = 0;
  bool inString = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) inString = !inString;
    if (inString) continue;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(inString);
  EXPECT_NE(json.find("\"algorithm\":\"SRA\""), std::string::npos);
  EXPECT_NE(json.find("\"before\":"), std::string::npos);
  EXPECT_NE(json.find("\"after\":"), std::string::npos);
  EXPECT_NE(json.find("\"schedule\":"), std::string::npos);
  EXPECT_NE(json.find("\"phases\":"), std::string::npos);
}

TEST(Report, JsonMoveDetailOnlyWhenAsked) {
  const RebalanceResult result = sampleResult();
  const std::string lean = toJson(result, /*includeMoves=*/false);
  const std::string full = toJson(result, /*includeMoves=*/true);
  EXPECT_EQ(lean.find("\"detail\""), std::string::npos);
  if (result.schedule.moveCount() > 0) {
    EXPECT_NE(full.find("\"detail\""), std::string::npos);
    EXPECT_GT(full.size(), lean.size());
  }
}

TEST(Report, JsonPhaseCountMatchesSchedule) {
  const RebalanceResult result = sampleResult();
  const std::string json = toJson(result);
  std::size_t count = 0;
  for (std::size_t pos = json.find("\"peak_transient_util\"");
       pos != std::string::npos;
       pos = json.find("\"peak_transient_util\"", pos + 1))
    ++count;
  // One per phase plus the schedule-level field.
  EXPECT_EQ(count, result.schedule.phaseCount() + 1);
}

}  // namespace
}  // namespace resex
