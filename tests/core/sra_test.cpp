#include "core/sra.hpp"

#include <gtest/gtest.h>

#include "common/test_instances.hpp"
#include "core/baselines.hpp"
#include "workload/synthetic.hpp"

namespace resex {
namespace {

using testing::placedInstance;

SraConfig fastSra(std::uint64_t seed = 1, std::size_t iters = 4000) {
  SraConfig config;
  config.lns.seed = seed;
  config.lns.maxIterations = iters;
  config.lns.timeBudgetSeconds = 30.0;
  return config;
}

Instance skewedInstance(std::uint64_t seed = 2024, double load = 0.7) {
  SyntheticConfig config;
  config.seed = seed;
  config.machines = 12;
  config.exchangeMachines = 2;
  config.shardsPerMachine = 12.0;
  config.loadFactor = load;
  config.placementSkew = 1.0;
  config.skuCount = 1;
  return generateSynthetic(config);
}

TEST(Sra, ImprovesBottleneckSignificantly) {
  const Instance inst = skewedInstance();
  Sra sra(fastSra());
  const RebalanceResult r = sra.rebalance(inst);
  EXPECT_LT(r.after.bottleneckUtil, r.before.bottleneckUtil * 0.95);
}

TEST(Sra, ScheduleIsCompleteAndValid) {
  const Instance inst = skewedInstance(77);
  Sra sra(fastSra(3));
  const RebalanceResult r = sra.rebalance(inst);
  EXPECT_TRUE(r.scheduleComplete());
  EXPECT_TRUE(
      verifySchedule(inst, inst.initialAssignment(), r.targetMapping, r.schedule)
          .empty());
  EXPECT_EQ(r.finalMapping, r.targetMapping);
}

TEST(Sra, CompensationHolds) {
  const Instance inst = skewedInstance(78);
  Sra sra(fastSra(5));
  const RebalanceResult r = sra.rebalance(inst);
  Assignment after(inst, r.finalMapping);
  EXPECT_GE(after.vacantCount(), inst.exchangeCount());
  EXPECT_EQ(r.finalScore.vacancyDeficit, 0u);
}

TEST(Sra, FinalStateCapacityFeasible) {
  const Instance inst = skewedInstance(79, 0.8);
  Sra sra(fastSra(7));
  const RebalanceResult r = sra.rebalance(inst);
  Assignment after(inst, r.finalMapping);
  EXPECT_TRUE(after.validate(/*requireCapacity=*/true).empty());
}

TEST(Sra, BeatsSwapLsOnTightInstance) {
  const Instance inst = skewedInstance(80, 0.8);
  Sra sra(fastSra(9, 6000));
  SwapLocalSearch ls;
  const RebalanceResult rSra = sra.rebalance(inst);
  const RebalanceResult rLs = ls.rebalance(inst);
  EXPECT_LE(rSra.after.bottleneckUtil, rLs.after.bottleneckUtil + 1e-9);
}

TEST(Sra, SolvesTheCanonicalSwapDeadlock) {
  // The two-70s deadlock the baseline cannot touch: SRA balances it to
  // 0.7 each... it is already balanced; instead make it 70/70 on one
  // machine vs empty: SRA must split them using the exchange machine for
  // scheduling if needed.
  const Instance inst = placedInstance(2, 1, {49.0, 49.0}, {0, 0});
  Sra sra(fastSra(11, 2000));
  const RebalanceResult r = sra.rebalance(inst);
  EXPECT_NEAR(r.after.bottleneckUtil, 0.49, 1e-6);
  EXPECT_TRUE(r.scheduleComplete());
  Assignment after(inst, r.finalMapping);
  EXPECT_GE(after.vacantCount(), 1u);
}

TEST(Sra, UsesExchangeMachinesWhenProfitable) {
  // Tight cluster where spreading onto the exchange machines (and
  // draining a regular one) is the only way to cut the bottleneck.
  const Instance inst = skewedInstance(81, 0.85);
  Sra sra(fastSra(13, 8000));
  const RebalanceResult r = sra.rebalance(inst);
  Assignment after(inst, r.finalMapping);
  bool usedExchange = false;
  for (ShardId s = 0; s < inst.shardCount(); ++s)
    if (inst.machine(after.machineOf(s)).isExchange) usedExchange = true;
  // Not guaranteed in principle, but with this seed/skew it happens; the
  // assertion documents the mechanism actually firing.
  EXPECT_TRUE(usedExchange);
  EXPECT_GE(after.vacantCount(), inst.exchangeCount());
}

TEST(Sra, LastSearchExposesTrajectoryWhenAsked) {
  const Instance inst = skewedInstance(82);
  SraConfig config = fastSra(15, 1500);
  config.lns.recordTrajectory = true;
  Sra sra(config);
  sra.rebalance(inst);
  EXPECT_FALSE(sra.lastSearch().stats.trajectory.empty());
}

TEST(Sra, PortfolioModeWorks) {
  const Instance inst = skewedInstance(83);
  SraConfig config = fastSra(17, 1200);
  config.portfolioSearches = 4;
  Sra sra(config);
  const RebalanceResult r = sra.rebalance(inst);
  EXPECT_TRUE(r.scheduleComplete());
  EXPECT_LT(r.after.bottleneckUtil, r.before.bottleneckUtil);
}

TEST(Sra, DeterministicForSeedSingleSearch) {
  const Instance inst = skewedInstance(84);
  Sra a(fastSra(19, 1500));
  Sra b(fastSra(19, 1500));
  const RebalanceResult ra = a.rebalance(inst);
  const RebalanceResult rb = b.rebalance(inst);
  EXPECT_EQ(ra.finalMapping, rb.finalMapping);
  EXPECT_EQ(ra.schedule.phaseCount(), rb.schedule.phaseCount());
}

TEST(Sra, ReportsSolveTime) {
  const Instance inst = skewedInstance(85);
  Sra sra(fastSra(21, 500));
  const RebalanceResult r = sra.rebalance(inst);
  EXPECT_GT(r.solveSeconds, 0.0);
}

}  // namespace
}  // namespace resex
