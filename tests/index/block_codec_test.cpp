#include "index/block_codec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "index/cursor.hpp"
#include "index/varbyte.hpp"
#include "util/rng.hpp"

namespace resex {
namespace {

struct Postings {
  std::vector<DocId> docs;
  std::vector<std::uint32_t> freqs;
};

/// Random strictly-increasing postings. gapBound 1 yields consecutive ids
/// (the 0-bit doc width); freqBound 1 yields all-ones frequencies.
Postings randomPostings(Rng& rng, std::size_t length, std::uint32_t gapBound,
                        std::uint32_t freqBound) {
  Postings p;
  DocId doc = static_cast<DocId>(rng.below(50));
  for (std::size_t i = 0; i < length; ++i) {
    if (i > 0) doc += 1 + static_cast<DocId>(rng.below(gapBound));
    p.docs.push_back(doc);
    p.freqs.push_back(1 + static_cast<std::uint32_t>(rng.below(freqBound)));
  }
  return p;
}

TEST(BlockCodec, RoundtripFuzzMatchesVbyteReference) {
  Rng rng(71);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t length = rng.below(600);
    const auto gapBound = static_cast<std::uint32_t>(1 + rng.below(5000));
    const auto freqBound = static_cast<std::uint32_t>(1 + rng.below(300));
    const Postings p = randomPostings(rng, length, gapBound, freqBound);
    const BlockPostingList list(p.docs, p.freqs);
    ASSERT_EQ(list.documentCount(), length);

    std::vector<DocId> docs;
    std::vector<std::uint32_t> freqs;
    list.decode(docs, freqs);
    EXPECT_EQ(docs, p.docs) << "trial " << trial;
    EXPECT_EQ(freqs, p.freqs) << "trial " << trial;

    // Cross-check the doc-id sequence against the seed VByte codec the
    // block format replaced: both must reproduce the input exactly.
    EXPECT_EQ(decodeMonotone(encodeMonotone(p.docs)), p.docs) << "trial " << trial;
  }
}

TEST(BlockCodec, BlockMetadataInvariants) {
  Rng rng(72);
  const Postings p = randomPostings(rng, 1000, 40, 25);
  const BlockPostingList list(p.docs, p.freqs);
  ASSERT_EQ(list.blockCount(),
            (p.docs.size() + kPostingBlockSize - 1) / kPostingBlockSize);
  std::size_t covered = 0;
  for (std::size_t b = 0; b < list.blockCount(); ++b) {
    const PostingBlockMeta& meta = list.block(b);
    const std::size_t begin = covered;
    const std::size_t end = begin + meta.count;
    ASSERT_LE(end, p.docs.size());
    EXPECT_EQ(meta.firstDoc, p.docs[begin]) << "block " << b;
    EXPECT_EQ(meta.lastDoc, p.docs[end - 1]) << "block " << b;
    std::uint32_t maxTf = 0;
    for (std::size_t i = begin; i < end; ++i) maxTf = std::max(maxTf, p.freqs[i]);
    EXPECT_EQ(meta.maxTf, maxTf) << "block " << b;
    // Full blocks bit-pack; only the final partial block may use VByte.
    if (meta.count == kPostingBlockSize)
      EXPECT_NE(meta.docBits, kVbyteTailBits) << "block " << b;
    else
      EXPECT_EQ(b, list.blockCount() - 1) << "partial block not last";
    covered = end;
  }
  EXPECT_EQ(covered, p.docs.size());
}

TEST(BlockCodec, ZeroBitWidthsEncodeDenseRuns) {
  // Consecutive ids with frequency 1 everywhere: both widths collapse to
  // zero bits, so a full block's payload is empty.
  std::vector<DocId> docs(kPostingBlockSize);
  std::vector<std::uint32_t> freqs(kPostingBlockSize, 1);
  for (std::uint32_t i = 0; i < kPostingBlockSize; ++i) docs[i] = 100 + i;
  const BlockPostingList list(docs, freqs);
  ASSERT_EQ(list.blockCount(), 1u);
  EXPECT_EQ(list.block(0).docBits, 0);
  EXPECT_EQ(list.block(0).freqBits, 0);
  std::vector<DocId> outDocs;
  std::vector<std::uint32_t> outFreqs;
  list.decode(outDocs, outFreqs);
  EXPECT_EQ(outDocs, docs);
  EXPECT_EQ(outFreqs, freqs);
}

TEST(BlockCodec, VbyteTailBlock) {
  Rng rng(73);
  const Postings p = randomPostings(rng, kPostingBlockSize + 2, 1000, 50);
  const BlockPostingList list(p.docs, p.freqs);
  ASSERT_EQ(list.blockCount(), 2u);
  EXPECT_NE(list.block(0).docBits, kVbyteTailBits);
  EXPECT_EQ(list.block(1).docBits, kVbyteTailBits);
  EXPECT_EQ(list.block(1).count, 2u);
  std::vector<DocId> docs;
  std::vector<std::uint32_t> freqs;
  list.decode(docs, freqs);
  EXPECT_EQ(docs, p.docs);
  EXPECT_EQ(freqs, p.freqs);
}

TEST(BlockCodec, BlockBoundsDominateEveryPosting) {
  Rng rng(74);
  const Postings p = randomPostings(rng, 700, 8, 20);
  // Document lengths indexed by (dense) doc id.
  std::vector<std::uint32_t> docLengths(p.docs.back() + 1, 1);
  double total = 0.0;
  for (auto& len : docLengths) {
    len = 1 + static_cast<std::uint32_t>(rng.below(200));
    total += len;
  }
  const double avgLen = total / static_cast<double>(docLengths.size());
  const Bm25Params params;
  const BlockPostingList list(p.docs, p.freqs, docLengths, avgLen, params);
  EXPECT_TRUE(list.boundsExactFor(avgLen, params));
  EXPECT_FALSE(list.boundsExactFor(avgLen + 1.0, params));
  EXPECT_FALSE(list.boundsExactFor(avgLen, Bm25Params{.k1 = 0.9, .b = 0.75}));

  const double idf = 1.7;  // any positive idf scales both sides equally
  std::size_t covered = 0;
  for (std::size_t b = 0; b < list.blockCount(); ++b) {
    const PostingBlockMeta& meta = list.block(b);
    for (std::size_t i = covered; i < covered + meta.count; ++i) {
      const double score = bm25TermScore(idf, p.freqs[i], docLengths[p.docs[i]],
                                         avgLen, params);
      // Precomputed bound: exact max under the build statistics.
      EXPECT_GE(idf * meta.maxWeight, score) << "block " << b << " posting " << i;
      // Recomputed bound: valid under *any* statistics (here: a different
      // avgdl, as when a shard scores with global stats).
      const double otherAvg = avgLen * 1.7;
      EXPECT_GE(bm25TermScore(idf, meta.maxTf, meta.minDocLen, otherAvg, params),
                bm25TermScore(idf, p.freqs[i], docLengths[p.docs[i]], otherAvg,
                              params))
          << "block " << b << " posting " << i;
    }
    covered += meta.count;
  }
}

TEST(BlockCodec, EmptyListBehaves) {
  const BlockPostingList list(std::vector<DocId>{}, std::vector<std::uint32_t>{});
  EXPECT_EQ(list.documentCount(), 0u);
  EXPECT_EQ(list.blockCount(), 0u);
  std::vector<DocId> docs{1, 2, 3};
  std::vector<std::uint32_t> freqs{1};
  list.decode(docs, freqs);
  EXPECT_TRUE(docs.empty());
  EXPECT_TRUE(freqs.empty());

  CursorBuffer buffer;
  TermCursor cursor;
  cursor.init(&list, 1.0, 1.0, false, &buffer, nullptr);
  EXPECT_TRUE(cursor.exhausted());
}

TEST(BlockCodec, RejectsInvalidInput) {
  EXPECT_THROW(BlockPostingList({3, 3}, {1, 1}), std::invalid_argument);
  EXPECT_THROW(BlockPostingList({5, 4}, {1, 1}), std::invalid_argument);
  EXPECT_THROW(BlockPostingList({1, 2}, {1, 0}), std::invalid_argument);
  EXPECT_THROW(BlockPostingList({1, 2}, {1}), std::invalid_argument);
}

TEST(BlockCodec, TruncatedVbyteInputThrowsEverywhere) {
  // Every proper prefix of a valid VByte stream must throw, not read out
  // of bounds — the tail-block decoder leans on this.
  Rng rng(75);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<std::uint8_t> bytes;
    const int values = 1 + static_cast<int>(rng.below(6));
    for (int i = 0; i < values; ++i)
      varbyteEncode(rng() >> rng.below(40), bytes);
    // Chop the final value at every partial length.
    std::size_t lastStart = 0;
    {
      std::size_t offset = 0;
      for (int i = 0; i < values; ++i) {
        lastStart = offset;
        varbyteDecode(bytes, offset);
      }
    }
    for (std::size_t cut = lastStart; cut < bytes.size(); ++cut) {
      std::vector<std::uint8_t> truncated(bytes.begin(),
                                          bytes.begin() + static_cast<std::ptrdiff_t>(cut));
      std::size_t offset = 0;
      for (int i = 0; i + 1 < values; ++i) varbyteDecode(truncated, offset);
      EXPECT_THROW(varbyteDecode(truncated, offset), std::out_of_range)
          << "trial " << trial << " cut " << cut;
    }
  }
  // A run of continuation bytes (terminator bit clear) exceeding 64 bits.
  const std::vector<std::uint8_t> overflow(11, 0x01);
  std::size_t offset = 0;
  EXPECT_THROW(varbyteDecode(overflow, offset), std::out_of_range);
}

TEST(BlockCodec, CursorNextGeqMatchesLinearReference) {
  Rng rng(76);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t length = 1 + rng.below(900);
    const auto gapBound = static_cast<std::uint32_t>(1 + rng.below(60));
    const Postings p = randomPostings(rng, length, gapBound, 9);
    const BlockPostingList list(p.docs, p.freqs);
    CursorBuffer buffer;
    TermCursor cursor;
    cursor.init(&list, 1.0, 1.0, false, &buffer, nullptr);
    DocId target = 0;
    while (!cursor.exhausted()) {
      target += static_cast<DocId>(rng.below(2 * gapBound + 8));
      cursor.nextGeq(target);
      const auto it = std::lower_bound(p.docs.begin(), p.docs.end(), target);
      if (it == p.docs.end()) {
        EXPECT_TRUE(cursor.exhausted()) << "trial " << trial;
        break;
      }
      ASSERT_FALSE(cursor.exhausted()) << "trial " << trial << " target " << target;
      EXPECT_EQ(cursor.doc(), *it) << "trial " << trial;
      EXPECT_EQ(cursor.freq(),
                p.freqs[static_cast<std::size_t>(it - p.docs.begin())])
          << "trial " << trial;
      target = cursor.doc() + 1;
    }
  }
}

TEST(BlockCodec, CursorSkipsBlocksWithoutDecoding) {
  // 8 full blocks; seeking straight to the last block's first document
  // passes 7 blocks on metadata alone and decodes nothing.
  Rng rng(77);
  const Postings p = randomPostings(rng, 8 * kPostingBlockSize, 6, 4);
  const BlockPostingList list(p.docs, p.freqs);
  ASSERT_EQ(list.blockCount(), 8u);
  CursorBuffer buffer;
  ExecStats stats;
  TermCursor cursor;
  cursor.init(&list, 1.0, 1.0, false, &buffer, &stats);
  cursor.nextGeq(list.block(7).firstDoc);
  EXPECT_EQ(cursor.doc(), list.block(7).firstDoc);
  EXPECT_EQ(stats.blocksSkipped, 7u);
  EXPECT_EQ(stats.blocksDecoded, 0u);
  EXPECT_EQ(stats.postingsScanned, 0u);
  // The first frequency access forces exactly one block decode.
  cursor.freq();
  EXPECT_EQ(stats.blocksDecoded, 1u);
  EXPECT_EQ(stats.postingsScanned, kPostingBlockSize);
}

}  // namespace
}  // namespace resex
