#include "index/block_max.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "index/partition.hpp"
#include "util/rng.hpp"
#include "workload/zipf.hpp"

namespace resex {
namespace {

struct Fixture {
  SyntheticDocConfig config;
  std::vector<Document> docs;
  InvertedIndex index;
  BlockMaxIndex blockIndex;

  explicit Fixture(std::uint64_t seed = 51, std::size_t blockSize = 64)
      : config{.seed = seed, .docCount = 3000, .termCount = 600, .termExponent = 1.0},
        docs(generateDocuments(config)),
        index(config.termCount, docs),
        blockIndex(index, blockSize) {}
};

void expectSameTopK(const std::vector<ScoredDoc>& pruned,
                    const std::vector<ScoredDoc>& exhaustive) {
  ASSERT_EQ(pruned.size(), exhaustive.size());
  for (std::size_t i = 0; i < pruned.size(); ++i) {
    EXPECT_NEAR(pruned[i].score, exhaustive[i].score, 1e-9) << "rank " << i;
    if (pruned[i].doc != exhaustive[i].doc)
      EXPECT_LT(std::abs(pruned[i].score - exhaustive[i].score), 1e-9)
          << "rank " << i << ": different doc without a score tie";
  }
}

TEST(BlockMaxIndex, MetadataCoversEveryPosting) {
  Fixture f;
  std::vector<DocId> docs;
  std::vector<std::uint32_t> freqs;
  for (TermId t = 0; t < f.config.termCount; ++t) {
    f.index.postings(t).decode(docs, freqs);
    const auto& blocks = f.blockIndex.blocks(t);
    const std::size_t expected = (docs.size() + 63) / 64;
    ASSERT_EQ(blocks.size(), expected) << "term " << t;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      const std::size_t begin = b * 64;
      const std::size_t end = std::min(begin + 64, docs.size());
      EXPECT_EQ(blocks[b].lastDoc, docs[end - 1]);
      std::uint32_t maxTf = 0;
      for (std::size_t i = begin; i < end; ++i) maxTf = std::max(maxTf, freqs[i]);
      EXPECT_EQ(blocks[b].maxTf, maxTf);
    }
  }
}

TEST(BlockMaxIndex, RejectsZeroBlockSize) {
  Fixture f;
  EXPECT_THROW(BlockMaxIndex(f.index, 0), std::invalid_argument);
}

TEST(BlockMaxWand, ExactlyMatchesExhaustiveTopK) {
  Fixture f;
  Rng rng(4);
  const ZipfSampler termPick(f.config.termCount, 0.9);
  for (int q = 0; q < 200; ++q) {
    std::vector<TermId> query;
    const std::size_t len = 1 + rng.below(4);
    for (std::size_t i = 0; i < len; ++i)
      query.push_back(static_cast<TermId>(termPick.sample(rng) - 1));
    expectSameTopK(topKBlockMaxWand(f.blockIndex, query, 10, Bm25Params{}),
                   topKDisjunctive(f.index, query, 10, Bm25Params{}));
  }
}

TEST(BlockMaxWand, MatchesAcrossKValuesAndBlockSizes) {
  for (const std::size_t blockSize : {8u, 64u, 1024u}) {
    Fixture f(51, blockSize);
    const std::vector<TermId> query{0, 5, 60};
    for (const std::size_t k : {1u, 10u, 200u})
      expectSameTopK(topKBlockMaxWand(f.blockIndex, query, k, Bm25Params{}),
                     topKDisjunctive(f.index, query, k, Bm25Params{}));
  }
}

TEST(BlockMaxWand, SkipsBlocksAndBeatsPlainWandOnWork) {
  Fixture f;
  const std::vector<TermId> query{0, 1};
  WandStats plain;
  topKWand(f.index, query, 10, Bm25Params{}, &plain);
  BlockMaxStats bmw;
  topKBlockMaxWand(f.blockIndex, query, 10, Bm25Params{}, &bmw);
  EXPECT_GT(bmw.blockSkips, 0u);
  EXPECT_LE(bmw.postingsEvaluated, plain.postingsEvaluated);
}

TEST(BlockMaxWand, DegenerateInputs) {
  Fixture f;
  EXPECT_TRUE(topKBlockMaxWand(f.blockIndex, {}, 10, Bm25Params{}).empty());
  EXPECT_TRUE(topKBlockMaxWand(f.blockIndex, {0}, 0, Bm25Params{}).empty());
}

TEST(BlockMaxWand, WorksWithGlobalStatsInPartitionedSearch) {
  Fixture f;
  const PartitionedIndex part(f.config.termCount, f.docs, 3);
  const std::vector<TermId> query{2, 11, 30};
  std::vector<std::vector<ScoredDoc>> perShard;
  for (std::size_t i = 0; i < part.shardCount(); ++i) {
    const BlockMaxIndex shardBlocks(part.shard(i), 64);
    perShard.push_back(topKBlockMaxWand(shardBlocks, query, 10, Bm25Params{},
                                        nullptr, &part.globalStats()));
  }
  expectSameTopK(mergeTopK(perShard, 10),
                 topKDisjunctive(f.index, query, 10, Bm25Params{}));
}

TEST(BlockMaxWand, ManySeedsAgreeWithExhaustive) {
  for (const std::uint64_t seed : {61ULL, 62ULL, 63ULL}) {
    Fixture f(seed, 32);
    Rng rng(seed);
    const ZipfSampler termPick(f.config.termCount, 1.1);
    for (int q = 0; q < 40; ++q) {
      std::vector<TermId> query;
      for (std::size_t i = 0; i < 3; ++i)
        query.push_back(static_cast<TermId>(termPick.sample(rng) - 1));
      expectSameTopK(topKBlockMaxWand(f.blockIndex, query, 7, Bm25Params{}),
                     topKDisjunctive(f.index, query, 7, Bm25Params{}));
    }
  }
}

}  // namespace
}  // namespace resex
