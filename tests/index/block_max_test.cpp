// Block-Max WAND over the intrinsic per-block metadata of the posting
// codec (the standalone BlockMaxIndex this API used to require is gone —
// block-max bounds now live inside every BlockPostingList).

#include "index/block_max.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "index/partition.hpp"
#include "index/wand.hpp"
#include "util/rng.hpp"
#include "workload/zipf.hpp"

namespace resex {
namespace {

struct Fixture {
  SyntheticDocConfig config;
  std::vector<Document> docs;
  InvertedIndex index;

  explicit Fixture(std::uint64_t seed = 51, std::uint32_t docCount = 3000)
      : config{.seed = seed, .docCount = docCount, .termCount = 600, .termExponent = 1.0},
        docs(generateDocuments(config)),
        index(config.termCount, docs) {}
};

void expectSameTopK(const std::vector<ScoredDoc>& pruned,
                    const std::vector<ScoredDoc>& exhaustive) {
  ASSERT_EQ(pruned.size(), exhaustive.size());
  for (std::size_t i = 0; i < pruned.size(); ++i) {
    EXPECT_NEAR(pruned[i].score, exhaustive[i].score, 1e-9) << "rank " << i;
    if (pruned[i].doc != exhaustive[i].doc)
      EXPECT_LT(std::abs(pruned[i].score - exhaustive[i].score), 1e-9)
          << "rank " << i << ": different doc without a score tie";
  }
}

TEST(BlockMaxWand, ExactlyMatchesExhaustiveTopK) {
  Fixture f;
  Rng rng(4);
  const ZipfSampler termPick(f.config.termCount, 0.9);
  for (int q = 0; q < 200; ++q) {
    std::vector<TermId> query;
    const std::size_t len = 1 + rng.below(4);
    for (std::size_t i = 0; i < len; ++i)
      query.push_back(static_cast<TermId>(termPick.sample(rng) - 1));
    expectSameTopK(topKBlockMaxWand(f.index, query, 10, Bm25Params{}),
                   topKDisjunctiveTaat(f.index, query, 10, Bm25Params{}));
  }
}

TEST(BlockMaxWand, MatchesAcrossKValues) {
  Fixture f;
  const std::vector<TermId> query{0, 5, 60};
  for (const std::size_t k : {1u, 10u, 200u, 100000u})
    expectSameTopK(topKBlockMaxWand(f.index, query, k, Bm25Params{}),
                   topKDisjunctiveTaat(f.index, query, k, Bm25Params{}));
}

TEST(BlockMaxWand, SkipsBlocksAndPrunesWorkOnSelectiveQueries) {
  // Larger corpus and vocabulary so head lists span many blocks and the
  // tail holds genuinely rare terms; a rare co-term gates the pivot and
  // lets whole head blocks go by undecoded.
  SyntheticDocConfig config{
      .seed = 47, .docCount = 20000, .termCount = 2000, .termExponent = 1.05};
  const auto docs = generateDocuments(config);
  const InvertedIndex index(config.termCount, docs);
  TermId rare = 0;
  for (TermId t = config.termCount; t-- > 0;) {
    const std::size_t df = index.documentFrequency(t);
    if (df >= 10 && df <= 80) {
      rare = t;
      break;
    }
  }
  ASSERT_GT(index.documentFrequency(0), 20 * index.documentFrequency(rare));
  ExecStats exhaustive;
  topKDisjunctiveTaat(index, {0, rare}, 5, Bm25Params{}, &exhaustive);
  BlockMaxStats bmw;
  topKBlockMaxWand(index, {0, rare}, 5, Bm25Params{}, &bmw);
  EXPECT_GT(bmw.blockSkips, 0u);
  EXPECT_LT(bmw.postingsEvaluated, exhaustive.postingsScanned);
}

TEST(BlockMaxWand, DegenerateInputs) {
  Fixture f;
  EXPECT_TRUE(topKBlockMaxWand(f.index, {}, 10, Bm25Params{}).empty());
  EXPECT_TRUE(topKBlockMaxWand(f.index, {0}, 0, Bm25Params{}).empty());
}

TEST(BlockMaxWand, WorksWithGlobalStatsInPartitionedSearch) {
  Fixture f;
  const PartitionedIndex part(f.config.termCount, f.docs, 3);
  const std::vector<TermId> query{2, 11, 30};
  std::vector<std::vector<ScoredDoc>> perShard;
  for (std::size_t i = 0; i < part.shardCount(); ++i)
    perShard.push_back(topKBlockMaxWand(part.shard(i), query, 10, Bm25Params{},
                                        nullptr, &part.globalStats()));
  expectSameTopK(mergeTopK(perShard, 10),
                 topKDisjunctiveTaat(f.index, query, 10, Bm25Params{}));
}

TEST(BlockMaxWand, ManySeedsAgreeWithExhaustive) {
  for (const std::uint64_t seed : {61ULL, 62ULL, 63ULL}) {
    Fixture f(seed);
    Rng rng(seed);
    const ZipfSampler termPick(f.config.termCount, 1.1);
    for (int q = 0; q < 40; ++q) {
      std::vector<TermId> query;
      for (std::size_t i = 0; i < 3; ++i)
        query.push_back(static_cast<TermId>(termPick.sample(rng) - 1));
      expectSameTopK(topKBlockMaxWand(f.index, query, 7, Bm25Params{}),
                     topKDisjunctiveTaat(f.index, query, 7, Bm25Params{}));
    }
  }
}

}  // namespace
}  // namespace resex
