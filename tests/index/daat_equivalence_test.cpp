// DAAT ≡ TAAT: the block-max DAAT kernel must return *bit-identical*
// results to the exhaustive term-at-a-time reference — same documents,
// same scores, no tolerance. Both paths sum per-term contributions in
// sorted-unique-term order, so even floating-point summation agrees.

#include <gtest/gtest.h>

#include "index/partition.hpp"
#include "index/query_exec.hpp"
#include "index/wand.hpp"
#include "util/rng.hpp"
#include "workload/zipf.hpp"

namespace resex {
namespace {

void expectBitIdentical(const std::vector<ScoredDoc>& daat,
                        const std::vector<ScoredDoc>& taat) {
  ASSERT_EQ(daat.size(), taat.size());
  for (std::size_t i = 0; i < daat.size(); ++i) {
    EXPECT_EQ(daat[i].doc, taat[i].doc) << "rank " << i;
    EXPECT_EQ(daat[i].score, taat[i].score) << "rank " << i;
  }
}

TEST(DaatEquivalence, IdenticalResultsAcrossSeededCorpora) {
  for (const std::uint64_t seed : {101ULL, 102ULL, 103ULL}) {
    SyntheticDocConfig config{
        .seed = seed, .docCount = 2500, .termCount = 500, .termExponent = 1.0};
    const auto docs = generateDocuments(config);
    const InvertedIndex index(config.termCount, docs);
    Rng rng(seed + 7);
    const ZipfSampler termPick(config.termCount, 0.9);
    for (int q = 0; q < 120; ++q) {
      std::vector<TermId> query;
      const std::size_t len = 1 + rng.below(4);
      for (std::size_t i = 0; i < len; ++i)
        query.push_back(static_cast<TermId>(termPick.sample(rng) - 1));
      for (const std::size_t k : {1u, 10u, 100u})
        expectBitIdentical(topKDisjunctive(index, query, k, Bm25Params{}),
                           topKDisjunctiveTaat(index, query, k, Bm25Params{}));
    }
  }
}

TEST(DaatEquivalence, IdenticalUnderGlobalStatsAcrossShards) {
  SyntheticDocConfig config{
      .seed = 203, .docCount = 3000, .termCount = 400, .termExponent = 1.0};
  const auto docs = generateDocuments(config);
  const PartitionedIndex part(config.termCount, docs, 3);
  Rng rng(9);
  const ZipfSampler termPick(config.termCount, 1.0);
  for (int q = 0; q < 60; ++q) {
    std::vector<TermId> query;
    for (std::size_t i = 0; i < 1 + rng.below(3); ++i)
      query.push_back(static_cast<TermId>(termPick.sample(rng) - 1));
    for (std::size_t s = 0; s < part.shardCount(); ++s)
      expectBitIdentical(topKDisjunctive(part.shard(s), query, 10, Bm25Params{},
                                         nullptr, &part.globalStats()),
                         topKDisjunctiveTaat(part.shard(s), query, 10, Bm25Params{},
                                             nullptr, &part.globalStats()));
  }
}

TEST(DaatEquivalence, StaleGlobalStatsFallBackToShardLocalDf) {
  // Regression: a global-stats snapshot whose documentFrequency vector is
  // truncated (stale broadcast, new vocabulary) or zero-filled used to
  // throw out of `documentFrequency.at(t)`. The kernel now degrades to
  // the shard-local df for exactly those terms.
  SyntheticDocConfig config{.seed = 31, .docCount = 1500, .termCount = 300};
  const auto docs = generateDocuments(config);
  const InvertedIndex index(config.termCount, docs);
  const std::vector<TermId> query{1, 150, 299};

  // Whole-index "global" stats with an empty df vector: every term falls
  // back to its local df, which here *is* the global df — results must be
  // identical to scoring without global stats at all.
  GlobalStats stale;
  stale.documentCount = index.documentCount();
  stale.avgDocLength = index.averageDocLength();
  const auto local = topKDisjunctive(index, query, 10, Bm25Params{});
  expectBitIdentical(
      topKDisjunctive(index, query, 10, Bm25Params{}, nullptr, &stale), local);

  // Zero-filled entries (term known but count lost) fall back the same way.
  stale.documentFrequency.assign(config.termCount, 0);
  expectBitIdentical(
      topKDisjunctive(index, query, 10, Bm25Params{}, nullptr, &stale), local);

  // Partially-truncated vector: terms below the cut use the snapshot,
  // terms above fall back; nothing throws. Every path agrees with TAAT.
  const PartitionedIndex part(config.termCount, docs, 2);
  GlobalStats truncated = part.globalStats();
  truncated.documentFrequency.resize(150);
  for (std::size_t s = 0; s < part.shardCount(); ++s)
    expectBitIdentical(topKDisjunctive(part.shard(s), query, 10, Bm25Params{},
                                       nullptr, &truncated),
                       topKDisjunctiveTaat(part.shard(s), query, 10, Bm25Params{},
                                           nullptr, &truncated));

  // MaxScore and WAND share the fallback through buildCursors.
  EXPECT_NO_THROW(topKMaxScore(part.shard(0), query, 10, Bm25Params{}, nullptr,
                               &truncated));
  EXPECT_NO_THROW(
      topKWand(part.shard(0), query, 10, Bm25Params{}, nullptr, &truncated));
  EXPECT_NO_THROW(chooseStrategy(part.shard(0), query, &truncated));
}

TEST(DaatEquivalence, SkipAndPruneCountersFireOnSelectiveQueries) {
  SyntheticDocConfig config{
      .seed = 47, .docCount = 20000, .termCount = 2000, .termExponent = 1.05};
  const auto docs = generateDocuments(config);
  const InvertedIndex index(config.termCount, docs);
  // A head term paired with a moderately rare one: the rare list gates the
  // pivot, so the head list's blocks are mostly passed over undecoded.
  TermId rare = 0;
  for (TermId t = config.termCount; t-- > 0;) {
    const std::size_t df = index.documentFrequency(t);
    if (df >= 10 && df <= 60) {
      rare = t;
      break;
    }
  }
  ASSERT_GT(index.documentFrequency(0), 100 * index.documentFrequency(rare));
  ExecStats daat;
  const auto pruned = topKDisjunctive(index, {0, rare}, 5, Bm25Params{}, &daat);
  ExecStats taat;
  const auto full = topKDisjunctiveTaat(index, {0, rare}, 5, Bm25Params{}, &taat);
  expectBitIdentical(pruned, full);
  EXPECT_GT(daat.blocksSkipped, 0u);
  EXPECT_GT(daat.heapThresholdPrunes, 0u);
  EXPECT_LT(daat.postingsScanned, taat.postingsScanned);
  EXPECT_GT(daat.blocksDecoded, 0u);
}

TEST(DaatEquivalence, IntoVariantReusesOneScratchAcrossQueries) {
  SyntheticDocConfig config{.seed = 53, .docCount = 1200, .termCount = 250};
  const auto docs = generateDocuments(config);
  const InvertedIndex index(config.termCount, docs);
  QueryScratch scratch;
  Rng rng(3);
  const ZipfSampler termPick(config.termCount, 0.9);
  for (int q = 0; q < 80; ++q) {
    std::vector<TermId> query;
    for (std::size_t i = 0; i < 1 + rng.below(3); ++i)
      query.push_back(static_cast<TermId>(termPick.sample(rng) - 1));
    const auto view = topKDisjunctiveInto(index, query, 10, Bm25Params{}, scratch);
    const std::vector<ScoredDoc> copied(view.begin(), view.end());
    expectBitIdentical(copied, topKDisjunctiveTaat(index, query, 10, Bm25Params{}));
  }
}

}  // namespace
}  // namespace resex
