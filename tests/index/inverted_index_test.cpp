#include "index/inverted_index.hpp"

#include <gtest/gtest.h>

#include "index/partition.hpp"

namespace resex {
namespace {

std::vector<Document> tinyCorpus() {
  // term vocabulary: 0..4
  return {
      {0, {0, 1, 1, 2}},     // len 4
      {1, {1, 3}},           // len 2
      {2, {0, 0, 0, 4, 2}},  // len 5
  };
}

TEST(Index, BasicStatistics) {
  const InvertedIndex index(5, tinyCorpus());
  EXPECT_EQ(index.documentCount(), 3u);
  EXPECT_EQ(index.termCount(), 5u);
  EXPECT_EQ(index.documentFrequency(0), 2u);  // docs 0, 2
  EXPECT_EQ(index.documentFrequency(1), 2u);  // docs 0, 1
  EXPECT_EQ(index.documentFrequency(3), 1u);
  EXPECT_EQ(index.documentFrequency(4), 1u);
  EXPECT_NEAR(index.averageDocLength(), (4 + 2 + 5) / 3.0, 1e-12);
  EXPECT_EQ(index.totalPostings(), 2u + 2u + 2u + 1u + 1u);
}

TEST(Index, PostingListsDecodeWithFrequencies) {
  const InvertedIndex index(5, tinyCorpus());
  std::vector<DocId> docs;
  std::vector<std::uint32_t> freqs;
  index.postings(0).decode(docs, freqs);
  ASSERT_EQ(docs.size(), 2u);
  EXPECT_EQ(index.docId(docs[0]), 0u);
  EXPECT_EQ(index.docId(docs[1]), 2u);
  EXPECT_EQ(freqs[0], 1u);
  EXPECT_EQ(freqs[1], 3u);  // term 0 appears 3x in doc 2
}

TEST(Index, DocumentsMayArriveUnsorted) {
  std::vector<Document> docs = tinyCorpus();
  std::swap(docs[0], docs[2]);
  const InvertedIndex index(5, docs);
  EXPECT_EQ(index.documentFrequency(0), 2u);
  EXPECT_EQ(index.docId(0), 0u);  // dense order is ascending original id
  EXPECT_EQ(index.docId(2), 2u);
}

TEST(Index, RejectsDuplicateDocIds) {
  std::vector<Document> docs = tinyCorpus();
  docs[1].id = 0;
  EXPECT_THROW(InvertedIndex(5, docs), std::invalid_argument);
}

TEST(Index, RejectsOutOfRangeTerms) {
  std::vector<Document> docs = tinyCorpus();
  docs[0].terms.push_back(99);
  EXPECT_THROW(InvertedIndex(5, docs), std::invalid_argument);
}

TEST(Index, EmptyCorpusIsEmptyIndex) {
  const InvertedIndex index(3, {});
  EXPECT_EQ(index.documentCount(), 0u);
  EXPECT_EQ(index.documentFrequency(0), 0u);
  EXPECT_EQ(index.averageDocLength(), 0.0);
}

TEST(Index, BytesAccountedAndCompressed) {
  const SyntheticDocConfig config{.seed = 3, .docCount = 500, .termCount = 200};
  const auto docs = generateDocuments(config);
  const InvertedIndex index(config.termCount, docs);
  EXPECT_GT(index.indexBytes(), 0u);
  // VByte with small deltas: well under 8 bytes per posting (docid+freq).
  EXPECT_LT(index.indexBytes(), index.totalPostings() * 8);
}

TEST(Index, DocumentFrequenciesFollowZipfShape) {
  SyntheticDocConfig config;
  config.seed = 9;
  config.docCount = 3000;
  config.termCount = 500;
  config.termExponent = 1.0;
  const auto docs = generateDocuments(config);
  const InvertedIndex index(config.termCount, docs);
  // Rank-0 term must dominate mid-vocabulary terms.
  EXPECT_GT(index.documentFrequency(0), index.documentFrequency(50));
  EXPECT_GT(index.documentFrequency(0), 4 * index.documentFrequency(250));
}

TEST(DocGen, ShapesAndDeterminism) {
  SyntheticDocConfig config;
  config.seed = 5;
  config.docCount = 200;
  config.meanDocLength = 40.0;
  const auto a = generateDocuments(config);
  const auto b = generateDocuments(config);
  ASSERT_EQ(a.size(), 200u);
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, i);
    EXPECT_EQ(a[i].terms, b[i].terms);
    EXPECT_GE(a[i].terms.size(), 1u);
    total += static_cast<double>(a[i].terms.size());
  }
  EXPECT_NEAR(total / 200.0, 40.0, 8.0);
}

TEST(DocGen, RejectsEmptyConfigs) {
  SyntheticDocConfig config;
  config.docCount = 0;
  EXPECT_THROW(generateDocuments(config), std::invalid_argument);
}

}  // namespace
}  // namespace resex
