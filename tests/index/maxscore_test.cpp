#include "index/maxscore.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "index/partition.hpp"
#include "util/rng.hpp"
#include "workload/zipf.hpp"

namespace resex {
namespace {

struct Fixture {
  SyntheticDocConfig config;
  std::vector<Document> docs;
  InvertedIndex index;

  explicit Fixture(std::uint64_t seed = 29)
      : config{.seed = seed, .docCount = 3000, .termCount = 600, .termExponent = 1.0},
        docs(generateDocuments(config)),
        index(config.termCount, docs) {}
};

void expectSameTopK(const std::vector<ScoredDoc>& pruned,
                    const std::vector<ScoredDoc>& exhaustive) {
  // Exactness criterion: the score at every rank must agree. Doc ids must
  // agree too except where scores tie to within float summation noise —
  // the engines sum per-term contributions in different orders, so
  // equal-scored boundary docs may swap or substitute.
  ASSERT_EQ(pruned.size(), exhaustive.size());
  for (std::size_t i = 0; i < pruned.size(); ++i) {
    EXPECT_NEAR(pruned[i].score, exhaustive[i].score, 1e-9) << "rank " << i;
    if (pruned[i].doc != exhaustive[i].doc)
      EXPECT_LT(std::abs(pruned[i].score - exhaustive[i].score), 1e-9)
          << "rank " << i << ": different doc without a score tie";
  }
}

TEST(MaxScore, ExactlyMatchesExhaustiveTopK) {
  Fixture f;
  Rng rng(1);
  const ZipfSampler termPick(f.config.termCount, 0.9);
  for (int q = 0; q < 200; ++q) {
    std::vector<TermId> query;
    const std::size_t len = 1 + rng.below(4);
    for (std::size_t i = 0; i < len; ++i)
      query.push_back(static_cast<TermId>(termPick.sample(rng) - 1));
    const auto pruned = topKMaxScore(f.index, query, 10, Bm25Params{});
    const auto exhaustive = topKDisjunctive(f.index, query, 10, Bm25Params{});
    expectSameTopK(pruned, exhaustive);
  }
}

TEST(MaxScore, MatchesAcrossKValues) {
  Fixture f;
  const std::vector<TermId> query{0, 3, 77};
  for (const std::size_t k : {1u, 5u, 50u, 100000u}) {
    const auto pruned = topKMaxScore(f.index, query, k, Bm25Params{});
    const auto exhaustive = topKDisjunctive(f.index, query, k, Bm25Params{});
    expectSameTopK(pruned, exhaustive);
  }
}

TEST(MaxScore, PrunesWorkOnSelectiveQueries) {
  Fixture f;
  // Head terms (huge lists) + small k: most candidates are skippable.
  const std::vector<TermId> query{0, 1, 2};
  ExecStats exhaustive;
  topKDisjunctiveTaat(f.index, query, 10, Bm25Params{}, &exhaustive);
  MaxScoreStats pruned;
  topKMaxScore(f.index, query, 10, Bm25Params{}, &pruned);
  EXPECT_LT(pruned.postingsEvaluated, exhaustive.postingsScanned);
  EXPECT_GT(pruned.candidatesPruned, 0u);
}

TEST(MaxScore, HandlesDegenerateInputs) {
  Fixture f;
  EXPECT_TRUE(topKMaxScore(f.index, {}, 10, Bm25Params{}).empty());
  EXPECT_TRUE(topKMaxScore(f.index, {0}, 0, Bm25Params{}).empty());
  // A term with an empty posting list (if one exists) contributes nothing.
  for (TermId t = f.config.termCount; t-- > 0;) {
    if (f.index.documentFrequency(t) == 0) {
      const auto withEmpty = topKMaxScore(f.index, {0, t}, 5, Bm25Params{});
      const auto without = topKMaxScore(f.index, {0}, 5, Bm25Params{});
      expectSameTopK(withEmpty, without);
      break;
    }
  }
}

TEST(MaxScore, DuplicateTermsDoNotDoubleCount) {
  Fixture f;
  const auto once = topKMaxScore(f.index, {4}, 5, Bm25Params{});
  const auto twice = topKMaxScore(f.index, {4, 4}, 5, Bm25Params{});
  expectSameTopK(twice, once);
}

TEST(MaxScore, WorksWithGlobalStatsInPartitionedSearch) {
  Fixture f;
  const PartitionedIndex part(f.config.termCount, f.docs, 4);
  const std::vector<TermId> query{1, 9, 40};
  // Per-shard MaxScore with global stats, merged, vs whole-index result.
  std::vector<std::vector<ScoredDoc>> perShard;
  for (std::size_t i = 0; i < part.shardCount(); ++i)
    perShard.push_back(topKMaxScore(part.shard(i), query, 10, Bm25Params{},
                                    nullptr, &part.globalStats()));
  const auto merged = mergeTopK(perShard, 10);
  const auto reference = topKDisjunctive(f.index, query, 10, Bm25Params{});
  expectSameTopK(merged, reference);
}

TEST(MaxScore, ManySeedsAgreeWithExhaustive) {
  for (const std::uint64_t seed : {31ULL, 32ULL, 33ULL}) {
    Fixture f(seed);
    Rng rng(seed);
    const ZipfSampler termPick(f.config.termCount, 1.1);
    for (int q = 0; q < 40; ++q) {
      std::vector<TermId> query;
      for (std::size_t i = 0; i < 2; ++i)
        query.push_back(static_cast<TermId>(termPick.sample(rng) - 1));
      expectSameTopK(topKMaxScore(f.index, query, 7, Bm25Params{}),
                     topKDisjunctive(f.index, query, 7, Bm25Params{}));
    }
  }
}

}  // namespace
}  // namespace resex
