#include "index/partition.hpp"

#include <gtest/gtest.h>

#include "search/builder.hpp"

namespace resex {
namespace {

struct Fixture {
  SyntheticDocConfig config;
  std::vector<Document> docs;

  Fixture() : config{.seed = 23, .docCount = 1200, .termCount = 400} {
    docs = generateDocuments(config);
  }
};

TEST(Partition, DocumentsAreDistributed) {
  Fixture f;
  const PartitionedIndex part(f.config.termCount, f.docs, 6);
  std::size_t total = 0;
  for (std::size_t i = 0; i < part.shardCount(); ++i) {
    EXPECT_GT(part.shard(i).documentCount(), 0u);
    total += part.shard(i).documentCount();
    EXPECT_NEAR(part.docFraction(i), 1.0 / 6.0, 0.05);
  }
  EXPECT_EQ(total, f.docs.size());
}

TEST(Partition, WeightedSplitFollowsWeights) {
  Fixture f;
  const std::vector<double> weights{3.0, 1.0, 1.0, 1.0};
  const PartitionedIndex part(f.config.termCount, f.docs, 4, weights);
  EXPECT_NEAR(part.docFraction(0), 0.5, 0.05);
  for (std::size_t i = 1; i < 4; ++i)
    EXPECT_NEAR(part.docFraction(i), 1.0 / 6.0, 0.05);
}

TEST(Partition, GlobalStatsMatchWholeIndex) {
  Fixture f;
  const PartitionedIndex part(f.config.termCount, f.docs, 5);
  const InvertedIndex whole(f.config.termCount, f.docs);
  EXPECT_EQ(part.globalStats().documentCount, whole.documentCount());
  EXPECT_NEAR(part.globalStats().avgDocLength, whole.averageDocLength(), 1e-9);
  for (TermId t = 0; t < f.config.termCount; ++t)
    EXPECT_EQ(part.globalStats().documentFrequency[t], whole.documentFrequency(t))
        << "term " << t;
}

TEST(Partition, ScatterGatherEqualsWholeIndexSearch) {
  // The core correctness claim of document partitioning with global
  // scoring statistics: the merged per-shard top-k equals the top-k of an
  // unpartitioned index, for any shard count.
  Fixture f;
  const InvertedIndex whole(f.config.termCount, f.docs);
  for (const std::size_t shards : {1u, 2u, 7u}) {
    const PartitionedIndex part(f.config.termCount, f.docs, shards);
    for (const std::vector<TermId> query :
         {std::vector<TermId>{0}, {1, 7}, {2, 30, 95}}) {
      const auto partitioned = part.searchTopK(query, 10);
      const auto reference = topKDisjunctive(whole, query, 10, Bm25Params{});
      ASSERT_EQ(partitioned.size(), reference.size())
          << shards << " shards, first term " << query[0];
      for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(partitioned[i].doc, reference[i].doc) << "rank " << i;
        EXPECT_NEAR(partitioned[i].score, reference[i].score, 1e-9);
      }
    }
  }
}

TEST(Partition, PerShardWorkScalesWithDocFraction) {
  // The empirical grounding of the analytic cost model in src/search:
  // postings scanned per shard for a query is proportional to the shard's
  // document fraction (in expectation). The model describes *exhaustive*
  // evaluation, so the measurement runs the TAAT reference per shard (the
  // DAAT path prunes a query-dependent fraction; the simulator folds that
  // in separately via SimulationConfig.pruningFactor).
  Fixture f;
  const std::vector<double> weights{4.0, 1.0};
  const PartitionedIndex part(f.config.termCount, f.docs, 2, weights);
  std::vector<ExecStats> stats(2);
  // A batch of head-term queries accumulates enough postings to average.
  for (TermId t = 0; t < 30; ++t) {
    const std::vector<TermId> query{t, static_cast<TermId>(t + 1)};
    for (std::size_t s = 0; s < 2; ++s)
      topKDisjunctiveTaat(part.shard(s), query, 10, Bm25Params{}, &stats[s],
                          &part.globalStats());
  }
  const double ratio = static_cast<double>(stats[0].postingsScanned) /
                       static_cast<double>(stats[1].postingsScanned);
  const double fractionRatio = part.docFraction(0) / part.docFraction(1);
  EXPECT_NEAR(ratio, fractionRatio, fractionRatio * 0.15);
}

TEST(Partition, MeasuredWorkTracksAnalyticCostModel) {
  // The analytic model says expected per-query work on a shard is
  // affine in the shard's corpus fraction with slope ~ E[df of a query
  // term] * terms-per-query. Check the *shape*: doubling the fraction
  // about doubles the measured postings scanned (exhaustive reference,
  // as above).
  Fixture f;
  const std::vector<double> weights{2.0, 1.0, 1.0};
  const PartitionedIndex part(f.config.termCount, f.docs, 3, weights);
  std::vector<ExecStats> stats(3);
  for (TermId t = 0; t < 40; ++t)
    for (std::size_t s = 0; s < 3; ++s)
      topKDisjunctiveTaat(part.shard(s), {t}, 10, Bm25Params{}, &stats[s],
                          &part.globalStats());
  EXPECT_NEAR(static_cast<double>(stats[0].postingsScanned),
              static_cast<double>(stats[1].postingsScanned + stats[2].postingsScanned),
              0.15 * static_cast<double>(stats[0].postingsScanned));
}

TEST(Partition, RejectsBadArguments) {
  Fixture f;
  EXPECT_THROW(PartitionedIndex(f.config.termCount, f.docs, 0), std::invalid_argument);
  EXPECT_THROW(PartitionedIndex(f.config.termCount, f.docs, 2, {1.0}),
               std::invalid_argument);
  EXPECT_THROW(PartitionedIndex(f.config.termCount, f.docs, 2, {1.0, 0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace resex
