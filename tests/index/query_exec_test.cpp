#include "index/query_exec.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "index/partition.hpp"

namespace resex {
namespace {

/// Naive reference: score every document by brute force.
std::vector<ScoredDoc> bruteForce(const std::vector<Document>& docs,
                                  std::uint32_t termCount,
                                  const std::vector<TermId>& queryTerms,
                                  std::size_t k, bool conjunctive,
                                  const Bm25Params& params) {
  // Corpus stats.
  std::vector<std::size_t> df(termCount, 0);
  double totalLength = 0.0;
  for (const Document& d : docs) {
    std::set<TermId> seen(d.terms.begin(), d.terms.end());
    for (const TermId t : seen) ++df[t];
    totalLength += static_cast<double>(d.terms.size());
  }
  const double avgLength = docs.empty() ? 0.0 : totalLength / docs.size();

  std::set<TermId> unique(queryTerms.begin(), queryTerms.end());
  std::vector<ScoredDoc> scored;
  for (const Document& d : docs) {
    std::map<TermId, int> tf;
    for (const TermId t : d.terms) ++tf[t];
    double score = 0.0;
    bool all = true;
    for (const TermId t : unique) {
      const auto it = tf.find(t);
      if (it == tf.end()) {
        all = false;
        continue;
      }
      const double idf = bm25Idf(docs.size(), df[t]);
      const double norm =
          params.k1 *
          (1.0 - params.b + params.b * d.terms.size() / std::max(1.0, avgLength));
      score += idf * (it->second * (params.k1 + 1.0)) / (it->second + norm);
    }
    if (conjunctive && !all) continue;
    if (!conjunctive && score == 0.0) continue;
    scored.push_back(ScoredDoc{d.id, score});
  }
  std::sort(scored.begin(), scored.end(), [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

struct Fixture {
  SyntheticDocConfig config;
  std::vector<Document> docs;
  InvertedIndex index;

  Fixture()
      : config{.seed = 17, .docCount = 800, .termCount = 300, .termExponent = 0.9},
        docs(generateDocuments(config)),
        index(config.termCount, docs) {}
};

void expectSameResults(const std::vector<ScoredDoc>& actual,
                       const std::vector<ScoredDoc>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].doc, expected[i].doc) << "rank " << i;
    EXPECT_NEAR(actual[i].score, expected[i].score, 1e-9) << "rank " << i;
  }
}

TEST(QueryExec, DisjunctiveMatchesBruteForce) {
  Fixture f;
  for (const std::vector<TermId> query :
       {std::vector<TermId>{0}, {5, 40}, {1, 2, 3}, {100, 200, 250}}) {
    const auto fast = topKDisjunctive(f.index, query, 10, Bm25Params{});
    const auto slow = bruteForce(f.docs, f.config.termCount, query, 10, false, {});
    expectSameResults(fast, slow);
  }
}

TEST(QueryExec, ConjunctiveMatchesBruteForce) {
  Fixture f;
  for (const std::vector<TermId> query :
       {std::vector<TermId>{0}, {0, 1}, {2, 5, 9}, {150, 3}}) {
    const auto fast = topKConjunctive(f.index, query, 10, Bm25Params{});
    const auto slow = bruteForce(f.docs, f.config.termCount, query, 10, true, {});
    expectSameResults(fast, slow);
  }
}

TEST(QueryExec, ConjunctiveIsSubsetOfDisjunctive) {
  Fixture f;
  const std::vector<TermId> query{1, 4};
  const auto andDocs = topKConjunctive(f.index, query, 1000, Bm25Params{});
  const auto orDocs = topKDisjunctive(f.index, query, 100000, Bm25Params{});
  std::set<DocId> orSet;
  for (const auto& d : orDocs) orSet.insert(d.doc);
  for (const auto& d : andDocs) EXPECT_TRUE(orSet.contains(d.doc));
  EXPECT_LE(andDocs.size(), orDocs.size());
}

TEST(QueryExec, DuplicateQueryTermsDoNotDoubleCount) {
  Fixture f;
  const auto once = topKDisjunctive(f.index, {3}, 5, Bm25Params{});
  const auto twice = topKDisjunctive(f.index, {3, 3}, 5, Bm25Params{});
  expectSameResults(twice, once);
}

TEST(QueryExec, EmptyQueryAndEmptyTermBehave) {
  Fixture f;
  EXPECT_TRUE(topKConjunctive(f.index, {}, 10, Bm25Params{}).empty());
  // A term with no postings: find one, if any; vocabulary tail is sparse.
  TermId empty = 0;
  bool found = false;
  for (TermId t = f.config.termCount; t-- > 0;) {
    if (f.index.documentFrequency(t) == 0) {
      empty = t;
      found = true;
      break;
    }
  }
  if (found) {
    EXPECT_TRUE(topKConjunctive(f.index, {0, empty}, 10, Bm25Params{}).empty());
    EXPECT_TRUE(topKDisjunctive(f.index, {empty}, 10, Bm25Params{}).empty());
  }
}

TEST(QueryExec, StatsCountScannedPostings) {
  Fixture f;
  ExecStats stats;
  topKDisjunctiveTaat(f.index, {0, 1}, 10, Bm25Params{}, &stats);
  EXPECT_EQ(stats.postingsScanned,
            f.index.documentFrequency(0) + f.index.documentFrequency(1));
  EXPECT_GT(stats.candidatesScored, 0u);
  // The DAAT path prunes: it never scans more than the exhaustive count.
  ExecStats daat;
  topKDisjunctive(f.index, {0, 1}, 10, Bm25Params{}, &daat);
  EXPECT_GT(daat.postingsScanned, 0u);
  EXPECT_LE(daat.postingsScanned, stats.postingsScanned);
}

TEST(QueryExec, TaatMatchesBruteForce) {
  Fixture f;
  for (const std::vector<TermId> query :
       {std::vector<TermId>{0}, {5, 40}, {1, 2, 3}, {100, 200, 250}}) {
    const auto fast = topKDisjunctiveTaat(f.index, query, 10, Bm25Params{});
    const auto slow = bruteForce(f.docs, f.config.termCount, query, 10, false, {});
    expectSameResults(fast, slow);
  }
}

TEST(QueryExec, KLimitsResultCount) {
  Fixture f;
  const auto results = topKDisjunctive(f.index, {0}, 3, Bm25Params{});
  EXPECT_LE(results.size(), 3u);
  const auto all = topKDisjunctive(f.index, {0}, 1 << 20, Bm25Params{});
  EXPECT_EQ(all.size(), f.index.documentFrequency(0));
}

TEST(QueryExec, ScoresAreDescending) {
  Fixture f;
  const auto results = topKDisjunctive(f.index, {0, 1, 2}, 50, Bm25Params{});
  for (std::size_t i = 1; i < results.size(); ++i)
    EXPECT_LE(results[i].score, results[i - 1].score + 1e-12);
}

TEST(QueryExec, IdfDecreasesWithDocumentFrequency) {
  EXPECT_GT(bm25Idf(1000, 1), bm25Idf(1000, 100));
  EXPECT_GT(bm25Idf(1000, 100), bm25Idf(1000, 900));
  EXPECT_GE(bm25Idf(1000, 1000), 0.0);
}

TEST(MergeTopK, TakesBestAcrossShards) {
  std::vector<std::vector<ScoredDoc>> shards{
      {{1, 9.0}, {2, 5.0}},
      {{3, 7.0}, {4, 1.0}},
  };
  const auto merged = mergeTopK(shards, 3);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].doc, 1u);
  EXPECT_EQ(merged[1].doc, 3u);
  EXPECT_EQ(merged[2].doc, 2u);
}

}  // namespace
}  // namespace resex
