// Zero-allocation acceptance test for the query kernel: once a
// QueryScratch arena is warm, the *Into execution paths must not touch the
// heap. The global operator new is replaced with a counting wrapper
// (linker picks the strong definition in this TU over libstdc++'s weak
// one), and the count must stand still across thousands of queries.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "index/partition.hpp"
#include "index/query_exec.hpp"
#include "util/rng.hpp"
#include "workload/zipf.hpp"

namespace {
std::atomic<std::size_t> g_newCalls{0};

void* countedAlloc(std::size_t size) {
  g_newCalls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return countedAlloc(size); }
void* operator new[](std::size_t size) { return countedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace resex {
namespace {

struct Fixture {
  SyntheticDocConfig config;
  std::vector<Document> docs;
  InvertedIndex index;
  std::vector<std::vector<TermId>> queries;

  Fixture()
      : config{.seed = 83, .docCount = 4000, .termCount = 800, .termExponent = 1.0},
        docs(generateDocuments(config)),
        index(config.termCount, docs) {
    Rng rng(11);
    const ZipfSampler termPick(config.termCount, 0.9);
    queries.resize(50);
    for (auto& query : queries)
      for (std::size_t i = 0; i < 1 + rng.below(4); ++i)
        query.push_back(static_cast<TermId>(termPick.sample(rng) - 1));
  }
};

TEST(ScratchAlloc, WarmDisjunctivePathAllocatesNothing) {
  Fixture f;
  QueryScratch scratch;
  ExecStats stats;
  double sink = 0.0;
  // Warm-up: grows every arena buffer to steady-state capacity and runs
  // the one-time static registrations (counters, latency histogram).
  for (const auto& query : f.queries) {
    const auto r = topKDisjunctiveInto(f.index, query, 10, Bm25Params{}, scratch,
                                       &stats);
    if (!r.empty()) sink += r[0].score;
  }
  const std::size_t before = g_newCalls.load(std::memory_order_relaxed);
  for (int pass = 0; pass < 20; ++pass)
    for (const auto& query : f.queries) {
      const auto r = topKDisjunctiveInto(f.index, query, 10, Bm25Params{},
                                         scratch, &stats);
      if (!r.empty()) sink += r[0].score;
    }
  const std::size_t after = g_newCalls.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "steady-state disjunctive queries allocated";
  EXPECT_GT(sink, 0.0);
}

TEST(ScratchAlloc, WarmConjunctivePathAllocatesNothing) {
  Fixture f;
  QueryScratch scratch;
  for (const auto& query : f.queries)
    topKConjunctiveInto(f.index, query, 10, Bm25Params{}, scratch);
  const std::size_t before = g_newCalls.load(std::memory_order_relaxed);
  for (int pass = 0; pass < 20; ++pass)
    for (const auto& query : f.queries)
      topKConjunctiveInto(f.index, query, 10, Bm25Params{}, scratch);
  const std::size_t after = g_newCalls.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "steady-state conjunctive queries allocated";
}

TEST(ScratchAlloc, CounterActuallyCounts) {
  // Sanity for the hook itself: an obvious allocation must register.
  const std::size_t before = g_newCalls.load(std::memory_order_relaxed);
  auto* p = new std::vector<int>(256);
  delete p;
  EXPECT_GT(g_newCalls.load(std::memory_order_relaxed), before);
}

}  // namespace
}  // namespace resex
