#include "index/segment.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <vector>

#include "index/inverted_index.hpp"
#include "index/partition.hpp"
#include "index/query_exec.hpp"
#include "util/checksum.hpp"

namespace resex {
namespace {

namespace fs = std::filesystem;

std::string tempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

std::vector<std::uint8_t> readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void writeFile(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

InvertedIndex buildIndex(std::uint64_t seed = 11, std::uint32_t docCount = 600,
                         std::uint32_t termCount = 300) {
  SyntheticDocConfig config;
  config.seed = seed;
  config.docCount = docCount;
  config.termCount = termCount;
  return InvertedIndex(termCount, generateDocuments(config));
}

SegmentFooter footerOf(const std::vector<std::uint8_t>& bytes) {
  SegmentFooter footer;
  std::memcpy(&footer, bytes.data() + bytes.size() - sizeof footer,
              sizeof footer);
  return footer;
}

template <typename T>
T readAt(const std::vector<std::uint8_t>& bytes, std::uint64_t offset) {
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof value);
  return value;
}

template <typename T>
void writeAt(std::vector<std::uint8_t>& bytes, std::uint64_t offset,
             const T& value) {
  std::memcpy(bytes.data() + offset, &value, sizeof value);
}

/// Re-checksums one plane and the footer after a hostile mutation, so only
/// the semantic validation (not the CRCs) can reject the file.
void recrcPlaneAndFooter(std::vector<std::uint8_t>& bytes, std::uint32_t plane) {
  SegmentFooter footer = footerOf(bytes);
  const SegmentPlane& p = footer.planes[plane];
  footer.planes[plane].crc = crc32c(bytes.data() + p.offset, p.bytes);
  footer.crc = 0;
  footer.crc = crc32c(&footer, sizeof footer);
  std::memcpy(bytes.data() + bytes.size() - sizeof footer, &footer,
              sizeof footer);
}

// ---- CRC-32C ----------------------------------------------------------

TEST(Crc32c, MatchesKnownVector) {
  // RFC 3720 test vector: 32 zero bytes.
  const std::uint8_t zeros[32] = {};
  EXPECT_EQ(crc32c(zeros, sizeof zeros), 0x8A9136AAu);
  EXPECT_EQ(crc32cSoftware(zeros, sizeof zeros), 0x8A9136AAu);
}

TEST(Crc32c, HardwareMatchesSoftwareOracle) {
  std::mt19937_64 rng(3);
  for (const std::size_t size : {0u, 1u, 7u, 8u, 9u, 63u, 1000u, 4097u}) {
    std::vector<std::uint8_t> data(size);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    EXPECT_EQ(crc32c(data.data(), size), crc32cSoftware(data.data(), size))
        << "size=" << size;
  }
}

TEST(Crc32c, ChainsAcrossSplits) {
  std::vector<std::uint8_t> data(257);
  std::mt19937_64 rng(4);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  const std::uint32_t whole = crc32c(data.data(), data.size());
  for (const std::size_t split : {0u, 1u, 128u, 256u, 257u}) {
    const std::uint32_t first = crc32c(data.data(), split);
    EXPECT_EQ(crc32c(data.data() + split, data.size() - split, first), whole)
        << "split=" << split;
  }
}

// ---- Round trip -------------------------------------------------------

TEST(Segment, RoundTripPreservesIndexExactly) {
  const InvertedIndex built = buildIndex();
  const std::string path = tempPath("roundtrip.seg");
  const std::uint64_t fileBytes = writeSegment(built, path);
  EXPECT_EQ(fileBytes, fs::file_size(path));

  const auto segment = std::make_shared<const MappedSegment>(path);
  EXPECT_EQ(segment->termCount(), built.termCount());
  EXPECT_EQ(segment->docCount(), built.documentCount());
  EXPECT_EQ(segment->totalPostings(), built.totalPostings());
  EXPECT_EQ(segment->avgDocLength(), built.averageDocLength());
  EXPECT_EQ(segment->bm25Params().k1, built.builtParams().k1);
  EXPECT_EQ(segment->bm25Params().b, built.builtParams().b);

  const InvertedIndex loaded(segment);
  ASSERT_EQ(loaded.termCount(), built.termCount());
  ASSERT_EQ(loaded.documentCount(), built.documentCount());
  for (std::size_t d = 0; d < built.documentCount(); ++d) {
    ASSERT_EQ(loaded.docLength(d), built.docLength(d));
    ASSERT_EQ(loaded.docId(d), built.docId(d));
  }
  std::vector<DocId> docsA, docsB;
  std::vector<std::uint32_t> freqsA, freqsB;
  for (TermId t = 0; t < built.termCount(); ++t) {
    ASSERT_EQ(segment->documentFrequency(t), built.documentFrequency(t));
    built.postings(t).decode(docsA, freqsA);
    loaded.postings(t).decode(docsB, freqsB);
    ASSERT_EQ(docsA, docsB) << "term " << t;
    ASSERT_EQ(freqsA, freqsB) << "term " << t;
    // The per-block score-bound metadata must survive byte-for-byte.
    const auto blocksA = built.postings(t).blocks();
    const auto blocksB = loaded.postings(t).blocks();
    ASSERT_EQ(blocksA.size(), blocksB.size());
    ASSERT_EQ(std::memcmp(blocksA.data(), blocksB.data(),
                          blocksA.size() * sizeof(PostingBlockMeta)),
              0)
        << "term " << t;
  }
}

TEST(Segment, RoundTripServesBitIdenticalQueries) {
  const InvertedIndex built = buildIndex(23, 900, 400);
  const std::string path = tempPath("queries.seg");
  writeSegment(built, path);
  const InvertedIndex loaded(std::make_shared<const MappedSegment>(path));

  std::mt19937_64 rng(99);
  for (int q = 0; q < 200; ++q) {
    std::vector<TermId> terms;
    const std::size_t len = 1 + rng() % 4;
    for (std::size_t i = 0; i < len; ++i)
      terms.push_back(static_cast<TermId>(rng() % built.termCount()));
    const auto a = topKDisjunctive(built, terms, 10, {}, nullptr, nullptr);
    const auto b = topKDisjunctive(loaded, terms, 10, {}, nullptr, nullptr);
    ASSERT_EQ(a.size(), b.size()) << "query " << q;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].doc, b[i].doc) << "query " << q << " rank " << i;
      ASSERT_EQ(a[i].score, b[i].score) << "query " << q << " rank " << i;
    }
  }
}

TEST(Segment, EmptyPostingListsRoundTrip) {
  // Term ids above anything the corpus uses -> guaranteed empty lists.
  SyntheticDocConfig config;
  config.seed = 5;
  config.docCount = 50;
  config.termCount = 40;
  const InvertedIndex built(/*termCount=*/64, generateDocuments(config));
  const std::string path = tempPath("sparse.seg");
  writeSegment(built, path);
  const InvertedIndex loaded(std::make_shared<const MappedSegment>(path));
  for (TermId t = 0; t < built.termCount(); ++t)
    EXPECT_EQ(loaded.documentFrequency(t), built.documentFrequency(t));
}

TEST(Segment, PartitionedWriteAndLoadRoundTrips) {
  SyntheticDocConfig config;
  config.seed = 7;
  config.docCount = 400;
  config.termCount = 200;
  const auto docs = generateDocuments(config);
  const PartitionedIndex built(config.termCount, docs, 4);
  const std::string dir = tempPath("shards");
  const auto paths = built.writeSegmentDir(dir);
  ASSERT_EQ(paths.size(), 4u);

  const PartitionedIndex loaded = PartitionedIndex::fromSegmentDir(dir);
  ASSERT_EQ(loaded.shardCount(), built.shardCount());
  EXPECT_EQ(loaded.globalStats().documentCount,
            built.globalStats().documentCount);
  EXPECT_EQ(loaded.globalStats().avgDocLength, built.globalStats().avgDocLength);
  std::mt19937_64 rng(1);
  for (int q = 0; q < 50; ++q) {
    const std::vector<TermId> terms{static_cast<TermId>(rng() % config.termCount),
                                    static_cast<TermId>(rng() % config.termCount)};
    const auto a = built.searchTopK(terms, 10);
    const auto b = loaded.searchTopK(terms, 10);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].doc, b[i].doc);
      ASSERT_EQ(a[i].score, b[i].score);
    }
  }
}

// ---- Corruption -------------------------------------------------------

TEST(Segment, SingleByteCorruptionInEveryPlaneIsRejected) {
  const InvertedIndex built = buildIndex();
  const std::string path = tempPath("corrupt-src.seg");
  writeSegment(built, path);
  const auto pristine = readFile(path);
  const SegmentFooter footer = footerOf(pristine);

  for (std::uint32_t p = 0; p < kSegmentPlaneCount; ++p) {
    const SegmentPlane& plane = footer.planes[p];
    ASSERT_GT(plane.bytes, 0u) << segmentPlaneName(p);
    // Flip one byte at the start, middle, and end of the plane's content.
    for (const std::uint64_t at :
         {plane.offset, plane.offset + plane.bytes / 2,
          plane.offset + plane.bytes - 1}) {
      auto bytes = pristine;
      bytes[at] ^= 0xFF;
      const std::string mutated = tempPath("corrupt-plane.seg");
      writeFile(mutated, bytes);
      EXPECT_THROW(MappedSegment{mutated}, SegmentFormatError)
          << segmentPlaneName(p) << " plane, byte " << at;
    }
  }
}

TEST(Segment, HeaderAndFooterCorruptionIsRejected) {
  const InvertedIndex built = buildIndex(13, 100, 80);
  const std::string path = tempPath("corrupt-hf-src.seg");
  writeSegment(built, path);
  const auto pristine = readFile(path);

  // Every byte of the header struct and of the footer.
  for (std::size_t at = 0; at < sizeof(SegmentHeader); ++at) {
    auto bytes = pristine;
    bytes[at] ^= 0xFF;
    const std::string mutated = tempPath("corrupt-head.seg");
    writeFile(mutated, bytes);
    EXPECT_THROW(MappedSegment{mutated}, SegmentFormatError) << "header+" << at;
  }
  for (std::size_t at = 0; at < sizeof(SegmentFooter); ++at) {
    auto bytes = pristine;
    bytes[bytes.size() - sizeof(SegmentFooter) + at] ^= 0xFF;
    const std::string mutated = tempPath("corrupt-foot.seg");
    writeFile(mutated, bytes);
    EXPECT_THROW(MappedSegment{mutated}, SegmentFormatError) << "footer+" << at;
  }
}

TEST(Segment, TruncationIsRejected) {
  const InvertedIndex built = buildIndex(17, 200, 100);
  const std::string path = tempPath("trunc-src.seg");
  writeSegment(built, path);
  const auto pristine = readFile(path);
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{100}, std::size_t{kSegmentPageBytes},
        pristine.size() / 2, pristine.size() - 1}) {
    auto bytes = pristine;
    bytes.resize(keep);
    const std::string mutated = tempPath("trunc.seg");
    writeFile(mutated, bytes);
    EXPECT_THROW(MappedSegment{mutated}, SegmentFormatError) << "keep=" << keep;
  }
}

TEST(Segment, TrailingGarbageIsRejected) {
  const InvertedIndex built = buildIndex(19, 100, 60);
  const std::string path = tempPath("garbage-src.seg");
  writeSegment(built, path);
  auto bytes = readFile(path);
  bytes.push_back(0);
  const std::string mutated = tempPath("garbage.seg");
  writeFile(mutated, bytes);
  // The footer no longer sits at the tail: fileBytes disagrees.
  EXPECT_THROW(MappedSegment{mutated}, SegmentFormatError);
}

TEST(Segment, NonSegmentFileIsRejected) {
  const std::string path = tempPath("not-a-segment.seg");
  writeFile(path, std::vector<std::uint8_t>(2 * kSegmentPageBytes, 0x41));
  EXPECT_THROW(MappedSegment{path}, SegmentFormatError);
}

TEST(Segment, InconsistentBlockMetadataIsRejectedEvenWithValidCrc) {
  // Corruption the checksums cannot see: a hostile writer that checksums
  // its own lies. Tamper block metadata, then recompute the plane CRC and
  // the footer CRC so only the semantic validation can catch it.
  const InvertedIndex built = buildIndex(29, 300, 150);
  const std::string path = tempPath("hostile-src.seg");
  writeSegment(built, path);
  const auto pristine = readFile(path);
  SegmentFooter footer = footerOf(pristine);
  ASSERT_GT(footer.totalBlocks, 2u);

  const auto rewriteCrcs = [](std::vector<std::uint8_t>& bytes,
                              SegmentFooter footer) {
    const SegmentPlane& meta = footer.planes[kPlaneMeta];
    footer.planes[kPlaneMeta].crc = crc32c(bytes.data() + meta.offset, meta.bytes);
    footer.crc = 0;
    footer.crc = crc32c(&footer, sizeof footer);
    std::memcpy(bytes.data() + bytes.size() - sizeof footer, &footer,
                sizeof footer);
  };

  // Case 1: first block's payload offset moved off zero.
  {
    auto bytes = pristine;
    PostingBlockMeta block;
    std::memcpy(&block, bytes.data() + footer.planes[kPlaneMeta].offset,
                sizeof block);
    block.dataOffset = 1;
    std::memcpy(bytes.data() + footer.planes[kPlaneMeta].offset, &block,
                sizeof block);
    rewriteCrcs(bytes, footer);
    const std::string mutated = tempPath("hostile-offset.seg");
    writeFile(mutated, bytes);
    EXPECT_THROW(MappedSegment{mutated}, SegmentFormatError);
  }
  // Case 2: a block claims more postings than its payload extent encodes.
  {
    auto bytes = pristine;
    PostingBlockMeta block;
    std::memcpy(&block, bytes.data() + footer.planes[kPlaneMeta].offset,
                sizeof block);
    block.count = static_cast<std::uint16_t>(block.count == 128 ? 127 : 128);
    std::memcpy(bytes.data() + footer.planes[kPlaneMeta].offset, &block,
                sizeof block);
    rewriteCrcs(bytes, footer);
    const std::string mutated = tempPath("hostile-count.seg");
    writeFile(mutated, bytes);
    EXPECT_THROW(MappedSegment{mutated}, SegmentFormatError);
  }
}

TEST(Segment, HostileDocRangePastDocCountIsRejected) {
  // A crafted segment whose CRCs all verify but whose block metadata
  // declares doc ids at or beyond the footer's docCount must be rejected
  // at load: decoded ids index docCount-sized arrays in the executors.
  const InvertedIndex built = buildIndex(41, 500, 100);
  const std::string path = tempPath("hostile-doccount-src.seg");
  writeSegment(built, path);
  const auto pristine = readFile(path);
  const SegmentFooter footer = footerOf(pristine);
  const std::uint64_t dirOff = footer.planes[kPlaneDirectory].offset;
  const std::uint64_t metaOff = footer.planes[kPlaneMeta].offset;

  // A term's *final* block has no successor constraining its doc range;
  // count >= 2 keeps every other block invariant satisfied after the edit.
  bool tested = false;
  for (std::uint32_t t = 0; t < footer.termCount && !tested; ++t) {
    const auto entry = readAt<SegmentTermEntry>(
        pristine, dirOff + t * sizeof(SegmentTermEntry));
    if (entry.blockCount == 0) continue;
    const std::uint64_t at =
        metaOff + (entry.blockBegin + entry.blockCount - 1) *
                      sizeof(PostingBlockMeta);
    auto block = readAt<PostingBlockMeta>(pristine, at);
    if (block.count < 2) continue;
    block.lastDoc = footer.docCount + 5;
    auto bytes = pristine;
    writeAt(bytes, at, block);
    recrcPlaneAndFooter(bytes, kPlaneMeta);
    const std::string mutated = tempPath("hostile-doccount.seg");
    writeFile(mutated, bytes);
    EXPECT_THROW(MappedSegment{mutated}, SegmentFormatError) << "term " << t;
    tested = true;
  }
  ASSERT_TRUE(tested) << "corpus produced no multi-posting final block";
}

TEST(Segment, HostileDeltaSumMismatchIsRejectedAtLoad) {
  // Metadata whose every static invariant holds, but whose payload deltas
  // do not walk exactly from firstDoc to lastDoc: shifting firstDoc down
  // by one leaves viewOf satisfied, and only the load-time decode pass
  // (prefix sums must land on lastDoc) can catch it. Exercised for both
  // encodings: a bit-packed full block and a VByte tail block.
  const InvertedIndex built = buildIndex(43, 2500, 40);
  const std::string path = tempPath("hostile-sum-src.seg");
  writeSegment(built, path);
  const auto pristine = readFile(path);
  const SegmentFooter footer = footerOf(pristine);
  const std::uint64_t dirOff = footer.planes[kPlaneDirectory].offset;
  const std::uint64_t metaOff = footer.planes[kPlaneMeta].offset;

  const auto mutateFirstDoc = [&](std::uint64_t blockAt) {
    auto bytes = pristine;
    auto block = readAt<PostingBlockMeta>(bytes, blockAt);
    block.firstDoc -= 1;
    writeAt(bytes, blockAt, block);
    recrcPlaneAndFooter(bytes, kPlaneMeta);
    const std::string mutated = tempPath("hostile-sum.seg");
    writeFile(mutated, bytes);
    EXPECT_THROW(MappedSegment{mutated}, SegmentFormatError);
  };

  bool testedPacked = false, testedVbyte = false;
  for (std::uint32_t t = 0; t < footer.termCount; ++t) {
    const auto entry = readAt<SegmentTermEntry>(
        pristine, dirOff + t * sizeof(SegmentTermEntry));
    for (std::uint32_t b = 0; b < entry.blockCount; ++b) {
      const std::uint64_t at =
          metaOff + (entry.blockBegin + b) * sizeof(PostingBlockMeta);
      const auto block = readAt<PostingBlockMeta>(pristine, at);
      // firstDoc-1 must stay above the previous block's lastDoc (or >= 0
      // for the term's first block) so no other invariant trips first.
      const bool shiftable =
          b == 0 ? block.firstDoc >= 1
                 : block.firstDoc >=
                       readAt<PostingBlockMeta>(
                           pristine, at - sizeof(PostingBlockMeta))
                               .lastDoc +
                           2;
      if (!shiftable || block.count < 2) continue;
      const bool vbyte = block.docBits == kVbyteTailBits;
      if (vbyte ? testedVbyte : testedPacked) continue;
      mutateFirstDoc(at);
      (vbyte ? testedVbyte : testedPacked) = true;
    }
  }
  ASSERT_TRUE(testedPacked) << "corpus produced no shiftable packed block";
  ASSERT_TRUE(testedVbyte) << "corpus produced no shiftable VByte tail";
}

TEST(Segment, HostileBlockCountOverflowIsRejected) {
  // totalBlocks + 2^61 wraps `totalBlocks * sizeof(PostingBlockMeta)` back
  // to the true plane size (40 * 2^61 == 5 * 2^64): without an explicit
  // count bound, the meta span would extend ~2^66 bytes past the mapping.
  const InvertedIndex built = buildIndex(47, 100, 60);
  const std::string path = tempPath("hostile-blocks-src.seg");
  writeSegment(built, path);
  auto bytes = readFile(path);
  SegmentFooter footer = footerOf(bytes);
  footer.totalBlocks += std::uint64_t{1} << 61;
  footer.crc = 0;
  footer.crc = crc32c(&footer, sizeof footer);
  std::memcpy(bytes.data() + bytes.size() - sizeof footer, &footer,
              sizeof footer);
  const std::string mutated = tempPath("hostile-blocks.seg");
  writeFile(mutated, bytes);
  EXPECT_THROW(MappedSegment{mutated}, SegmentFormatError);
}

TEST(Segment, DocumentFrequencyRejectsOutOfRangeTerm) {
  const InvertedIndex built = buildIndex(53, 50, 20);
  const std::string path = tempPath("df-range.seg");
  writeSegment(built, path);
  const MappedSegment segment(path);
  EXPECT_EQ(segment.documentFrequency(0), built.documentFrequency(0));
  EXPECT_THROW(segment.documentFrequency(segment.termCount()),
               std::out_of_range);
}

// ---- Writer contract --------------------------------------------------

TEST(SegmentWriter, RejectsOutOfOrderTerms) {
  const InvertedIndex built = buildIndex(31, 50, 20);
  SegmentWriter writer(tempPath("order.seg"), built.termCount(),
                       built.docLengths(), built.docIds(),
                       built.averageDocLength(), built.builtParams());
  writer.addList(0, built.postings(0));
  EXPECT_THROW(writer.addList(2, built.postings(2)), std::invalid_argument);
  EXPECT_THROW(writer.addList(0, built.postings(0)), std::invalid_argument);
}

TEST(SegmentWriter, RejectsFinishWithMissingTerms) {
  const InvertedIndex built = buildIndex(37, 50, 20);
  SegmentWriter writer(tempPath("missing.seg"), built.termCount(),
                       built.docLengths(), built.docIds(),
                       built.averageDocLength(), built.builtParams());
  writer.addList(0, built.postings(0));
  EXPECT_THROW(writer.finish(), std::logic_error);
}

}  // namespace
}  // namespace resex
