#include "index/simd_unpack.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

namespace resex {
namespace {

/// Packs `values` at width `bits` starting at `startBit`, little-endian —
/// an independent reimplementation of the codec's appendBits so the unpack
/// tests don't trust the code under test to produce their fixtures.
std::vector<std::uint8_t> pack(const std::vector<std::uint32_t>& values,
                               unsigned bits, std::size_t startBit) {
  const std::size_t totalBits = startBit + values.size() * bits;
  std::vector<std::uint8_t> out((totalBits + 7) / 8 + 8, 0);  // +8: read pad
  std::size_t bitPos = startBit;
  for (const std::uint32_t v : values) {
    for (unsigned bit = 0; bit < bits; ++bit, ++bitPos)
      if ((v >> bit) & 1u) out[bitPos >> 3] |= std::uint8_t(1u << (bitPos & 7));
  }
  return out;
}

std::vector<std::uint32_t> randomValues(std::mt19937_64& rng, unsigned bits,
                                        std::size_t count) {
  const std::uint64_t mask = bits == 0 ? 0 : (std::uint64_t{0xFFFFFFFF} >> (32 - bits));
  std::vector<std::uint32_t> values(count);
  for (auto& v : values) v = static_cast<std::uint32_t>(rng() & mask);
  return values;
}

class SimdUnpackTest : public ::testing::TestWithParam<UnpackBackend> {
 protected:
  void SetUp() override {
    if (!unpackBackendAvailable(GetParam()))
      GTEST_SKIP() << "backend " << unpackBackendName(GetParam())
                   << " unavailable on this host";
    previous_ = activeUnpackBackend();
    ASSERT_TRUE(setUnpackBackend(GetParam()));
  }
  void TearDown() override {
    if (!IsSkipped()) setUnpackBackend(previous_);
  }

 private:
  UnpackBackend previous_ = UnpackBackend::kScalar;
};

TEST_P(SimdUnpackTest, MatchesScalarOracleAcrossAllWidths) {
  std::mt19937_64 rng(42);
  for (unsigned bits = 0; bits <= 32; ++bits) {
    // Counts around the codec's block size plus ragged tails exercise both
    // the vector body and the scalar remainder of every kernel.
    for (const std::size_t count : {1u, 7u, 8u, 9u, 100u, 127u, 128u}) {
      const auto values = randomValues(rng, bits, count);
      const auto packed = pack(values, bits, /*startBit=*/0);
      std::vector<std::uint32_t> viaBackend(count, 0xDEADBEEF);
      std::vector<std::uint32_t> viaScalar(count, 0xDEADBEEF);
      unpackBits(packed.data(), 0, static_cast<std::uint32_t>(count), bits,
                 viaBackend.data());
      unpackBitsScalar(packed.data(), 0, static_cast<std::uint32_t>(count),
                       bits, viaScalar.data());
      ASSERT_EQ(viaBackend, values) << "bits=" << bits << " count=" << count;
      ASSERT_EQ(viaScalar, values) << "bits=" << bits << " count=" << count;
    }
  }
}

TEST_P(SimdUnpackTest, HonoursUnalignedStartBit) {
  // The freq plane starts at (count-1)*docBits, an arbitrary bit offset —
  // every backend must honour a non-byte-aligned start.
  std::mt19937_64 rng(7);
  for (unsigned bits = 1; bits <= 32; ++bits) {
    for (const std::size_t startBit : {1u, 3u, 7u, 13u, 127u}) {
      const auto values = randomValues(rng, bits, 128);
      const auto packed = pack(values, bits, startBit);
      std::vector<std::uint32_t> dst(values.size(), 0);
      unpackBits(packed.data(), startBit,
                 static_cast<std::uint32_t>(values.size()), bits, dst.data());
      ASSERT_EQ(dst, values) << "bits=" << bits << " startBit=" << startBit;
    }
  }
}

TEST_P(SimdUnpackTest, AllOnesAndAllZerosAtEveryWidth) {
  for (unsigned bits = 1; bits <= 32; ++bits) {
    const std::uint32_t top =
        static_cast<std::uint32_t>((std::uint64_t{1} << bits) - 1);
    for (const std::uint32_t fill : {std::uint32_t{0}, top}) {
      const std::vector<std::uint32_t> values(128, fill);
      const auto packed = pack(values, bits, 0);
      std::vector<std::uint32_t> dst(values.size(), 1);
      unpackBits(packed.data(), 0, 128, bits, dst.data());
      ASSERT_EQ(dst, values) << "bits=" << bits << " fill=" << fill;
    }
  }
}

TEST_P(SimdUnpackTest, ZeroCountWritesNothing) {
  const std::uint8_t packed[16] = {};
  std::uint32_t sentinel = 0xABCD1234;
  unpackBits(packed, 0, 0, 17, &sentinel);
  EXPECT_EQ(sentinel, 0xABCD1234u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SimdUnpackTest,
                         ::testing::Values(UnpackBackend::kScalar,
                                           UnpackBackend::kAvx2,
                                           UnpackBackend::kNeon),
                         [](const auto& info) {
                           return unpackBackendName(info.param);
                         });

TEST(SimdUnpackDispatch, ActiveBackendIsAvailable) {
  EXPECT_TRUE(unpackBackendAvailable(activeUnpackBackend()));
  EXPECT_TRUE(unpackBackendAvailable(UnpackBackend::kScalar));
}

TEST(SimdUnpackDispatch, PinningUnavailableBackendIsRefused) {
  const UnpackBackend before = activeUnpackBackend();
#if defined(__x86_64__)
  EXPECT_FALSE(setUnpackBackend(UnpackBackend::kNeon));
#else
  EXPECT_FALSE(setUnpackBackend(UnpackBackend::kAvx2));
#endif
  EXPECT_EQ(activeUnpackBackend(), before);
}

}  // namespace
}  // namespace resex
