#include "index/varbyte.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/rng.hpp"

namespace resex {
namespace {

TEST(Varbyte, SmallValuesAreOneByte) {
  std::vector<std::uint8_t> out;
  varbyteEncode(0, out);
  varbyteEncode(127, out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(Varbyte, RoundTripBoundaries) {
  const std::vector<std::uint64_t> cases{
      0, 1, 127, 128, 16383, 16384, std::uint64_t{1} << 32,
      std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : cases) {
    std::vector<std::uint8_t> bytes;
    varbyteEncode(v, bytes);
    std::size_t offset = 0;
    EXPECT_EQ(varbyteDecode(bytes, offset), v);
    EXPECT_EQ(offset, bytes.size());
  }
}

TEST(Varbyte, SequenceRoundTrip) {
  Rng rng(1);
  std::vector<std::uint64_t> values;
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng() >> static_cast<int>(rng.below(60));
    values.push_back(v);
    varbyteEncode(v, bytes);
  }
  std::size_t offset = 0;
  for (const std::uint64_t v : values) EXPECT_EQ(varbyteDecode(bytes, offset), v);
  EXPECT_EQ(offset, bytes.size());
}

TEST(Varbyte, TruncatedInputThrows) {
  std::vector<std::uint8_t> bytes;
  varbyteEncode(1ULL << 20, bytes);
  bytes.pop_back();
  std::size_t offset = 0;
  EXPECT_THROW(varbyteDecode(bytes, offset), std::out_of_range);
}

TEST(Varbyte, MaxValueRoundTripsThroughTenGroups) {
  std::vector<std::uint8_t> bytes;
  varbyteEncode(std::numeric_limits<std::uint64_t>::max(), bytes);
  EXPECT_EQ(bytes.size(), 10u);  // 64 bits / 7 bits per group, rounded up
  std::size_t offset = 0;
  EXPECT_EQ(varbyteDecode(bytes, offset),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(Varbyte, OverflowingTenthGroupThrows) {
  // Nine continuation groups put the tenth at shift 63, where only one
  // payload bit fits. Any tenth-group payload above 1 must throw instead
  // of silently dropping the high bits (the old code OR'd first and only
  // then noticed the shift was exhausted).
  for (std::uint8_t tenth : {std::uint8_t{0x82}, std::uint8_t{0x7F},
                             std::uint8_t{0xFF}}) {
    std::vector<std::uint8_t> bytes(9, 0x7F);  // continuation, payload 0x7F
    bytes.push_back(tenth);
    std::size_t offset = 0;
    if (tenth == 0xFF) {
      // 0xFF terminates with payload 0x7F > 1: overflow.
      EXPECT_THROW(varbyteDecode(bytes, offset), std::out_of_range);
    } else if (tenth == 0x82) {
      // Terminates with payload 2: bit 64 does not exist.
      EXPECT_THROW(varbyteDecode(bytes, offset), std::out_of_range);
    } else {
      // 0x7F continues past shift 63: the eleventh group can never fit.
      bytes.push_back(0x81);
      EXPECT_THROW(varbyteDecode(bytes, offset), std::out_of_range);
    }
  }
}

TEST(Varbyte, TenthGroupPayloadOneIsLegal) {
  // 0x7F * 9 then payload 1 terminated = all 64 bits set: UINT64_MAX.
  std::vector<std::uint8_t> bytes(9, 0x7F);
  bytes.push_back(0x81);
  std::size_t offset = 0;
  EXPECT_EQ(varbyteDecode(bytes, offset),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(Varbyte, RawBufferOverloadMatchesVectorOverload) {
  Rng rng(3);
  std::vector<std::uint64_t> values;
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t v = rng() >> static_cast<int>(rng.below(60));
    values.push_back(v);
    varbyteEncode(v, bytes);
  }
  std::size_t vecOffset = 0, rawOffset = 0;
  for (const std::uint64_t v : values) {
    EXPECT_EQ(varbyteDecode(bytes, vecOffset), v);
    EXPECT_EQ(varbyteDecode(bytes.data(), bytes.size(), rawOffset), v);
  }
  EXPECT_EQ(vecOffset, rawOffset);

  // The raw overload honors `size` as a hard bound even when more bytes
  // exist past it (decoding a list's tail out of a larger mapped plane).
  std::size_t offset = 0;
  EXPECT_THROW(varbyteDecode(bytes.data(), 0, offset), std::out_of_range);
}

TEST(Monotone, RoundTrip) {
  const std::vector<std::uint32_t> docs{3, 7, 8, 100, 10000, 10001};
  EXPECT_EQ(decodeMonotone(encodeMonotone(docs)), docs);
}

TEST(Monotone, EmptyAndSingleton) {
  EXPECT_TRUE(decodeMonotone(encodeMonotone({})).empty());
  EXPECT_EQ(decodeMonotone(encodeMonotone({0})), (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(decodeMonotone(encodeMonotone({42})), (std::vector<std::uint32_t>{42}));
}

TEST(Monotone, RejectsNonIncreasing) {
  EXPECT_THROW(encodeMonotone({5, 5}), std::invalid_argument);
  EXPECT_THROW(encodeMonotone({5, 3}), std::invalid_argument);
}

TEST(Monotone, DeltaCompressionBeatsRawForDenseLists) {
  std::vector<std::uint32_t> dense;
  for (std::uint32_t i = 1000000; i < 1002000; ++i) dense.push_back(i);
  const auto bytes = encodeMonotone(dense);
  // Deltas of 1 encode in 1 byte each (plus the first value).
  EXPECT_LT(bytes.size(), dense.size() + 8);
}

TEST(Monotone, LargeRandomRoundTrip) {
  Rng rng(7);
  std::vector<std::uint32_t> docs;
  std::uint32_t current = 0;
  for (int i = 0; i < 20000; ++i) {
    current += 1 + static_cast<std::uint32_t>(rng.below(1000));
    docs.push_back(current);
  }
  EXPECT_EQ(decodeMonotone(encodeMonotone(docs)), docs);
}

}  // namespace
}  // namespace resex
