#include "index/varbyte.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/rng.hpp"

namespace resex {
namespace {

TEST(Varbyte, SmallValuesAreOneByte) {
  std::vector<std::uint8_t> out;
  varbyteEncode(0, out);
  varbyteEncode(127, out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(Varbyte, RoundTripBoundaries) {
  const std::vector<std::uint64_t> cases{
      0, 1, 127, 128, 16383, 16384, std::uint64_t{1} << 32,
      std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : cases) {
    std::vector<std::uint8_t> bytes;
    varbyteEncode(v, bytes);
    std::size_t offset = 0;
    EXPECT_EQ(varbyteDecode(bytes, offset), v);
    EXPECT_EQ(offset, bytes.size());
  }
}

TEST(Varbyte, SequenceRoundTrip) {
  Rng rng(1);
  std::vector<std::uint64_t> values;
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng() >> static_cast<int>(rng.below(60));
    values.push_back(v);
    varbyteEncode(v, bytes);
  }
  std::size_t offset = 0;
  for (const std::uint64_t v : values) EXPECT_EQ(varbyteDecode(bytes, offset), v);
  EXPECT_EQ(offset, bytes.size());
}

TEST(Varbyte, TruncatedInputThrows) {
  std::vector<std::uint8_t> bytes;
  varbyteEncode(1ULL << 20, bytes);
  bytes.pop_back();
  std::size_t offset = 0;
  EXPECT_THROW(varbyteDecode(bytes, offset), std::out_of_range);
}

TEST(Monotone, RoundTrip) {
  const std::vector<std::uint32_t> docs{3, 7, 8, 100, 10000, 10001};
  EXPECT_EQ(decodeMonotone(encodeMonotone(docs)), docs);
}

TEST(Monotone, EmptyAndSingleton) {
  EXPECT_TRUE(decodeMonotone(encodeMonotone({})).empty());
  EXPECT_EQ(decodeMonotone(encodeMonotone({0})), (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(decodeMonotone(encodeMonotone({42})), (std::vector<std::uint32_t>{42}));
}

TEST(Monotone, RejectsNonIncreasing) {
  EXPECT_THROW(encodeMonotone({5, 5}), std::invalid_argument);
  EXPECT_THROW(encodeMonotone({5, 3}), std::invalid_argument);
}

TEST(Monotone, DeltaCompressionBeatsRawForDenseLists) {
  std::vector<std::uint32_t> dense;
  for (std::uint32_t i = 1000000; i < 1002000; ++i) dense.push_back(i);
  const auto bytes = encodeMonotone(dense);
  // Deltas of 1 encode in 1 byte each (plus the first value).
  EXPECT_LT(bytes.size(), dense.size() + 8);
}

TEST(Monotone, LargeRandomRoundTrip) {
  Rng rng(7);
  std::vector<std::uint32_t> docs;
  std::uint32_t current = 0;
  for (int i = 0; i < 20000; ++i) {
    current += 1 + static_cast<std::uint32_t>(rng.below(1000));
    docs.push_back(current);
  }
  EXPECT_EQ(decodeMonotone(encodeMonotone(docs)), docs);
}

}  // namespace
}  // namespace resex
