#include "index/wand.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "index/partition.hpp"
#include "util/rng.hpp"
#include "workload/zipf.hpp"

namespace resex {
namespace {

struct Fixture {
  SyntheticDocConfig config;
  std::vector<Document> docs;
  InvertedIndex index;

  explicit Fixture(std::uint64_t seed = 41)
      : config{.seed = seed, .docCount = 3000, .termCount = 600, .termExponent = 1.0},
        docs(generateDocuments(config)),
        index(config.termCount, docs) {}
};

void expectSameTopK(const std::vector<ScoredDoc>& pruned,
                    const std::vector<ScoredDoc>& exhaustive) {
  // Exactness criterion: the score at every rank must agree. Doc ids must
  // agree too except where scores tie to within float summation noise —
  // the engines sum per-term contributions in different orders, so
  // equal-scored boundary docs may swap or substitute.
  ASSERT_EQ(pruned.size(), exhaustive.size());
  for (std::size_t i = 0; i < pruned.size(); ++i) {
    EXPECT_NEAR(pruned[i].score, exhaustive[i].score, 1e-9) << "rank " << i;
    if (pruned[i].doc != exhaustive[i].doc)
      EXPECT_LT(std::abs(pruned[i].score - exhaustive[i].score), 1e-9)
          << "rank " << i << ": different doc without a score tie";
  }
}

TEST(Wand, ExactlyMatchesExhaustiveTopK) {
  Fixture f;
  Rng rng(2);
  const ZipfSampler termPick(f.config.termCount, 0.9);
  for (int q = 0; q < 200; ++q) {
    std::vector<TermId> query;
    const std::size_t len = 1 + rng.below(4);
    for (std::size_t i = 0; i < len; ++i)
      query.push_back(static_cast<TermId>(termPick.sample(rng) - 1));
    expectSameTopK(topKWand(f.index, query, 10, Bm25Params{}),
                   topKDisjunctive(f.index, query, 10, Bm25Params{}));
  }
}

TEST(Wand, MatchesAcrossKValues) {
  Fixture f;
  const std::vector<TermId> query{0, 5, 60};
  for (const std::size_t k : {1u, 5u, 50u, 100000u})
    expectSameTopK(topKWand(f.index, query, k, Bm25Params{}),
                   topKDisjunctive(f.index, query, k, Bm25Params{}));
}

TEST(Wand, SkipsWorkOnSelectiveQueries) {
  Fixture f;
  const std::vector<TermId> query{0, 1};
  ExecStats exhaustive;
  topKDisjunctiveTaat(f.index, query, 10, Bm25Params{}, &exhaustive);
  WandStats stats;
  topKWand(f.index, query, 10, Bm25Params{}, &stats);
  EXPECT_LT(stats.postingsEvaluated, exhaustive.postingsScanned);
  EXPECT_GT(stats.skips, 0u);
}

TEST(Wand, DegenerateInputs) {
  Fixture f;
  EXPECT_TRUE(topKWand(f.index, {}, 10, Bm25Params{}).empty());
  EXPECT_TRUE(topKWand(f.index, {0}, 0, Bm25Params{}).empty());
}

TEST(Wand, WorksWithGlobalStatsInPartitionedSearch) {
  Fixture f;
  const PartitionedIndex part(f.config.termCount, f.docs, 3);
  const std::vector<TermId> query{2, 11};
  std::vector<std::vector<ScoredDoc>> perShard;
  for (std::size_t i = 0; i < part.shardCount(); ++i)
    perShard.push_back(
        topKWand(part.shard(i), query, 10, Bm25Params{}, nullptr, &part.globalStats()));
  expectSameTopK(mergeTopK(perShard, 10),
                 topKDisjunctive(f.index, query, 10, Bm25Params{}));
}

TEST(Hybrid, StrategyHeuristicIsSane) {
  Fixture f;
  // Balanced queries of any length -> MaxScore (see the calibration note
  // in chooseStrategy).
  EXPECT_EQ(chooseStrategy(f.index, {0}), PruningStrategy::MaxScore);
  EXPECT_EQ(chooseStrategy(f.index, {0, 50}), PruningStrategy::MaxScore);
  EXPECT_EQ(chooseStrategy(f.index, {10, 20, 30, 40}), PruningStrategy::MaxScore);
  // Multi-term but one list dwarfs the rest -> WAND.
  TermId tail1 = 0;
  TermId tail2 = 0;
  int found = 0;
  for (TermId t = f.config.termCount; t-- > 0 && found < 2;) {
    const std::size_t df = f.index.documentFrequency(t);
    if (df >= 1 && df <= 3) {
      (found == 0 ? tail1 : tail2) = t;
      ++found;
    }
  }
  if (found == 2 &&
      f.index.documentFrequency(0) >
          8 * (f.index.documentFrequency(tail1) + f.index.documentFrequency(tail2))) {
    EXPECT_EQ(chooseStrategy(f.index, {0, tail1, tail2}), PruningStrategy::Wand);
    EXPECT_EQ(chooseStrategy(f.index, {0, tail1}), PruningStrategy::Wand);
  }
}

TEST(Hybrid, AlwaysMatchesExhaustive) {
  Fixture f;
  Rng rng(5);
  const ZipfSampler termPick(f.config.termCount, 1.1);
  for (int q = 0; q < 100; ++q) {
    std::vector<TermId> query;
    const std::size_t len = 1 + rng.below(4);
    for (std::size_t i = 0; i < len; ++i)
      query.push_back(static_cast<TermId>(termPick.sample(rng) - 1));
    std::size_t evaluated = 0;
    expectSameTopK(topKHybrid(f.index, query, 10, Bm25Params{}, &evaluated),
                   topKDisjunctive(f.index, query, 10, Bm25Params{}));
    EXPECT_GT(evaluated, 0u);
  }
}

}  // namespace
}  // namespace resex
