// Cross-module integration: the full pipelines the examples and benches run.
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/sra.hpp"
#include "model/branch_bound.hpp"
#include "search/builder.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace.hpp"

namespace resex {
namespace {

TEST(EndToEnd, SyntheticRebalanceAllAlgorithms) {
  SyntheticConfig gen;
  gen.seed = 5150;
  gen.machines = 16;
  gen.exchangeMachines = 2;
  gen.shardsPerMachine = 15.0;
  gen.loadFactor = 0.75;
  gen.placementSkew = 0.9;
  const Instance inst = generateSynthetic(gen);

  SraConfig sraConfig;
  sraConfig.lns.maxIterations = 4000;
  Sra sra(sraConfig);
  SwapLocalSearch ls;
  GreedyRebalancer greedy;
  NoopRebalancer noop;

  const RebalanceResult rSra = sra.rebalance(inst);
  const RebalanceResult rLs = ls.rebalance(inst);
  const RebalanceResult rGreedy = greedy.rebalance(inst);
  const RebalanceResult rNoop = noop.rebalance(inst);

  // Everyone improves or matches; SRA wins.
  EXPECT_LE(rLs.after.bottleneckUtil, rNoop.after.bottleneckUtil + 1e-9);
  EXPECT_LE(rGreedy.after.bottleneckUtil, rNoop.after.bottleneckUtil + 1e-9);
  EXPECT_LE(rSra.after.bottleneckUtil, rLs.after.bottleneckUtil + 1e-9);
  EXPECT_LE(rSra.after.bottleneckUtil, rGreedy.after.bottleneckUtil + 1e-9);

  // All results are executable and audited.
  for (const RebalanceResult* r : {&rSra, &rLs, &rGreedy, &rNoop}) {
    Assignment after(inst, r->finalMapping);
    EXPECT_TRUE(after.validate(/*requireCapacity=*/true).empty()) << r->algorithm;
    EXPECT_TRUE(verifySchedule(inst, inst.initialAssignment(), r->targetMapping,
                               r->schedule)
                    .empty())
        << r->algorithm;
  }
}

TEST(EndToEnd, SraNearOptimalOnExactlySolvableInstance) {
  const Instance inst = tinyTestInstance(4242, 4, 12, 1, 0.6);
  const BranchBoundResult exact = BranchBoundSolver().solve(inst);
  ASSERT_TRUE(exact.optimal);

  SraConfig config;
  config.lns.maxIterations = 6000;
  config.lns.seed = 7;
  Sra sra(config);
  const RebalanceResult r = sra.rebalance(inst);
  EXPECT_LE(r.after.bottleneckUtil, exact.bottleneck * 1.05 + 1e-9);
}

TEST(EndToEnd, MultiEpochTraceOperationSurvives) {
  const Instance base = tinyTestInstance(31337, 10, 120, 2, 0.55);
  TraceConfig traceConfig;
  traceConfig.seed = 9;
  traceConfig.epochs = 5;
  traceConfig.peakLoadFactor = 0.75;
  const Trace trace = generateTrace(base, traceConfig);

  std::vector<MachineId> mapping = base.initialAssignment();
  for (std::size_t epoch = 0; epoch < trace.epochCount(); ++epoch) {
    const Instance inst = trace.instanceForEpoch(epoch, mapping);
    SraConfig config;
    config.lns.maxIterations = 1500;
    config.lns.seed = epoch + 1;
    Sra sra(config);
    const RebalanceResult r = sra.rebalance(inst);
    Assignment after(inst, r.finalMapping);
    EXPECT_GE(after.vacantCount(), inst.exchangeCount()) << "epoch " << epoch;
    EXPECT_TRUE(after.validate(/*requireCapacity=*/true).empty()) << "epoch " << epoch;
    mapping = r.finalMapping;
  }
}

TEST(EndToEnd, SearchWorkloadRebalanceImprovesTailLatency) {
  SearchWorkloadConfig config;
  config.seed = 12;
  config.corpus.docCount = 100000;
  config.corpus.termCount = 3000;
  config.shardCount = 80;
  config.machines = 10;
  config.exchangeMachines = 2;
  config.peakQps = 800.0;
  config.cpuLoadFactorAtPeak = 0.8;
  config.placementSkew = 1.2;
  const SearchWorkload workload(config);
  const Instance inst = workload.buildInstance(config.peakQps);

  const auto before =
      workload.simulate(inst.initialAssignment(), config.peakQps, 4000, 99);

  SraConfig sraConfig;
  sraConfig.lns.maxIterations = 4000;
  Sra sra(sraConfig);
  const RebalanceResult r = sra.rebalance(inst);
  const auto after = workload.simulate(r.finalMapping, config.peakQps, 4000, 99);

  EXPECT_LT(r.after.bottleneckUtil, r.before.bottleneckUtil);
  EXPECT_LT(after.p99(), before.p99());
}

TEST(EndToEnd, InstanceRoundTripThenSolve) {
  const Instance original = tinyTestInstance(555, 6, 60, 2, 0.65);
  const Instance copy = Instance::deserialize(original.serialize());
  SraConfig config;
  config.lns.maxIterations = 1500;
  Sra sraA(config);
  Sra sraB(config);
  const RebalanceResult ra = sraA.rebalance(original);
  const RebalanceResult rb = sraB.rebalance(copy);
  EXPECT_EQ(ra.finalMapping, rb.finalMapping);
}

}  // namespace
}  // namespace resex
