// The deepest integration path in the repository: real posting lists →
// measured per-shard query work → a RESEX instance whose CPU demands are
// those measurements → SRA → a verified migration schedule → measured
// work under the new placement.
//
// This closes the loop between the materialized index substrate
// (src/index), the cluster model (src/cluster), and the optimizer
// (src/core): the demands SRA balances are not modelled but *measured*.
#include <gtest/gtest.h>

#include "core/sra.hpp"
#include "index/partition.hpp"
#include "util/rng.hpp"
#include "workload/zipf.hpp"

namespace resex {
namespace {

struct Stack {
  SyntheticDocConfig corpus;
  std::vector<Document> docs;
  PartitionedIndex part;
  static constexpr std::size_t kShards = 24;

  Stack()
      : corpus{.seed = 99, .docCount = 6000, .termCount = 1200, .termExponent = 1.0},
        docs(generateDocuments(corpus)),
        part(corpus.termCount, docs, kShards, skewedWeights()) {}

  /// Heavy-tailed shard sizes so the measured work is imbalanced.
  static std::vector<double> skewedWeights() {
    std::vector<double> weights(kShards);
    Rng rng(7);
    for (double& w : weights) w = rng.lognormal(0.0, 0.8);
    return weights;
  }

  /// Measures per-shard postings scanned over a query sample.
  std::vector<double> measureWork(int queries, std::uint64_t seed) const {
    std::vector<ExecStats> stats(part.shardCount());
    Rng rng(seed);
    const ZipfSampler termPick(corpus.termCount, 0.9);
    for (int q = 0; q < queries; ++q) {
      std::vector<TermId> query;
      const std::size_t len = 1 + rng.below(3);
      for (std::size_t i = 0; i < len; ++i)
        query.push_back(static_cast<TermId>(termPick.sample(rng) - 1));
      part.searchTopK(query, 10, Bm25Params{}, &stats);
    }
    std::vector<double> work(part.shardCount());
    for (std::size_t i = 0; i < part.shardCount(); ++i)
      work[i] = static_cast<double>(stats[i].postingsScanned);
    return work;
  }

  /// Builds a RESEX instance: dim 0 = measured query work, dim 1 = real
  /// compressed index bytes. Machines sized for a target load factor;
  /// shards packed round-robin as the skewed initial placement.
  Instance buildInstance(const std::vector<double>& work, std::size_t machines,
                         std::size_t exchange, double loadFactor) const {
    double totalWork = 0.0;
    double totalBytes = 0.0;
    std::vector<Shard> shards(part.shardCount());
    for (std::size_t s = 0; s < part.shardCount(); ++s) {
      shards[s].id = static_cast<ShardId>(s);
      shards[s].demand = ResourceVector{
          work[s], static_cast<double>(part.shard(s).indexBytes())};
      shards[s].moveBytes = static_cast<double>(part.shard(s).indexBytes());
      totalWork += work[s];
      totalBytes += static_cast<double>(part.shard(s).indexBytes());
    }
    const double cpuCap =
        totalWork / (loadFactor * static_cast<double>(machines));
    const double memCap =
        totalBytes / (0.6 * static_cast<double>(machines));
    std::vector<Machine> machineList(machines + exchange);
    for (std::size_t i = 0; i < machineList.size(); ++i) {
      machineList[i].id = static_cast<MachineId>(i);
      machineList[i].isExchange = i >= machines;
      machineList[i].capacity = ResourceVector{cpuCap, memCap};
    }
    // Skewed start: first machines take several shards each.
    std::vector<MachineId> initial(part.shardCount());
    for (std::size_t s = 0; s < part.shardCount(); ++s)
      initial[s] = static_cast<MachineId>((s * s) % machines);
    return Instance(2, std::move(machineList), std::move(shards),
                    std::move(initial), exchange, ResourceVector{0.3, 1.0});
  }
};

TEST(FullStack, MeasuredWorkIsImbalancedAcrossShards) {
  Stack stack;
  const auto work = stack.measureWork(120, 3);
  double lo = work[0];
  double hi = work[0];
  for (const double w : work) {
    lo = std::min(lo, w);
    hi = std::max(hi, w);
  }
  EXPECT_GT(hi, 2.0 * lo);  // the skewed weights show up in measured work
}

TEST(FullStack, MeasuredWorkIsReproducible) {
  Stack stack;
  EXPECT_EQ(stack.measureWork(60, 5), stack.measureWork(60, 5));
}

TEST(FullStack, SraBalancesMeasuredWorkAndSchedules) {
  Stack stack;
  const auto work = stack.measureWork(120, 3);
  const Instance instance = stack.buildInstance(work, 6, 1, 0.7);

  Assignment before(instance);
  const double startBottleneck = before.bottleneckUtilization();

  SraConfig config;
  config.lns.seed = 11;
  config.lns.maxIterations = 3000;
  Sra sra(config);
  const RebalanceResult r = sra.rebalance(instance);

  EXPECT_LT(r.after.bottleneckUtil, startBottleneck);
  EXPECT_TRUE(r.scheduleComplete());
  EXPECT_TRUE(verifySchedule(instance, instance.initialAssignment(),
                             r.targetMapping, r.schedule)
                  .empty());
  Assignment after(instance, r.finalMapping);
  EXPECT_TRUE(after.validate(/*requireCapacity=*/true).empty());
  EXPECT_GE(after.vacantCount(), instance.exchangeCount());

  // The balanced placement really is better under the *measured* loads:
  // recompute per-machine work from the mapping.
  auto machineWork = [&](const std::vector<MachineId>& mapping) {
    std::vector<double> load(instance.machineCount(), 0.0);
    for (ShardId s = 0; s < instance.shardCount(); ++s) load[mapping[s]] += work[s];
    double worst = 0.0;
    for (const double l : load) worst = std::max(worst, l);
    return worst;
  };
  EXPECT_LT(machineWork(r.finalMapping),
            machineWork(instance.initialAssignment()));
}

TEST(FullStack, SearchResultsUnaffectedByPlacement) {
  // Moving shards between machines must never change search results:
  // placement is transparent to the scatter-gather layer.
  Stack stack;
  const std::vector<TermId> query{0, 17, 230};
  const auto beforeResults = stack.part.searchTopK(query, 10);
  // (Re)build the same partition and query again — placement of shards on
  // machines is not even an input to the search path.
  const PartitionedIndex again(stack.corpus.termCount, stack.docs, Stack::kShards,
                               Stack::skewedWeights());
  const auto afterResults = again.searchTopK(query, 10);
  ASSERT_EQ(beforeResults.size(), afterResults.size());
  for (std::size_t i = 0; i < beforeResults.size(); ++i)
    EXPECT_EQ(beforeResults[i].doc, afterResults[i].doc);
}

}  // namespace
}  // namespace resex
