// Live data-plane migration, end to end: a LiveCluster materializes real
// segment files on disk, a live-mode QueryBroker serves from them, and the
// MigrationExecutor moves the files while queries run.
//
//   * queries issued continuously across a migration stay bit-identical to
//     the PartitionedIndex oracle — before, during, and after cutover;
//   * a randomized seeded fault sweep (copy failures + a mid-flight
//     machine crash) always ends, after recovery, with a filesystem the
//     audit can vouch for: no torn segments, no orphaned temps, no strays,
//     and the executor / plane / broker mappings in lockstep;
//   * dual-residency admission rejects copies that would overflow a
//     machine's byte budget before any bytes move;
//   * recoverMachine collects the debris a crashed machine freezes
//     (orphaned temps, lost copies).
//
// The fault-sweep cases carry the `fault-sweep` ctest label (this file
// builds into test_live_migration; see tests/CMakeLists.txt) so CI runs
// them under ASan/UBSan and TSan explicitly.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "cluster/scheduler.hpp"
#include "control/executor.hpp"
#include "index/partition.hpp"
#include "serve/broker.hpp"
#include "serve/live_migration.hpp"

namespace resex::serve {
namespace {

namespace fs = std::filesystem;

PartitionedIndex smallIndex(std::size_t partitions, std::uint64_t seed = 17) {
  SyntheticDocConfig config;
  config.seed = seed;
  config.docCount = 4000;
  config.termCount = 600;
  return PartitionedIndex(config.termCount, generateDocuments(config), partitions);
}

/// One replica per partition, shard g starting on machine g % machines,
/// with enough headroom that any single move is transient-feasible.
Instance hostingInstance(std::size_t partitions, std::size_t machines) {
  std::vector<Machine> ms(machines);
  for (std::size_t m = 0; m < machines; ++m)
    ms[m] = {static_cast<MachineId>(m), ResourceVector{1.0, 100.0}, false, 0};
  std::vector<Shard> shards(partitions);
  std::vector<MachineId> initial(partitions);
  std::vector<std::uint32_t> groups(partitions);
  for (std::size_t g = 0; g < partitions; ++g) {
    shards[g] = {static_cast<ShardId>(g), ResourceVector{0.01, 1.0}, 1.0};
    initial[g] = static_cast<MachineId>(g % machines);
    groups[g] = static_cast<std::uint32_t>(g);
  }
  return Instance(2, std::move(ms), std::move(shards), std::move(initial),
                  0, ResourceVector{1.0, 1.0}, std::move(groups));
}

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("live_migration_test." + std::to_string(::getpid()) + "." +
            std::to_string(counter()++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static int& counter() {
    static int c = 0;
    return c;
  }
};

std::string auditSummary(const LiveCluster::AuditReport& report) {
  std::string out;
  for (const std::string& problem : report.problems) out += problem + "; ";
  return out;
}

/// Asserts `result` is the complete oracle answer for `terms`.
void expectOracle(const PartitionedIndex& index, const QueryResult& result,
                  const std::vector<TermId>& terms, std::uint32_t topK,
                  const Bm25Params& bm25) {
  ASSERT_TRUE(result.complete);
  const auto reference = index.searchTopK(terms, topK, bm25);
  ASSERT_EQ(result.docs.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(result.docs[i].doc, reference[i].doc);
    EXPECT_NEAR(result.docs[i].score, reference[i].score, 1e-9);
  }
}

TEST(LiveMigration, ContinuousQueriesStayOracleIdenticalAcrossMoves) {
  const std::size_t kPartitions = 3, kMachines = 3;
  const PartitionedIndex index = smallIndex(kPartitions);
  const Instance instance = hostingInstance(kPartitions, kMachines);
  const TempDir dir;

  // Probe the real segment size, then throttle copies to ~150 ms each so
  // queries demonstrably overlap the copy windows.
  std::uintmax_t segmentBytes = 0;
  {
    const TempDir probeDir;
    LiveClusterConfig probeConfig;
    probeConfig.rootDir = probeDir.path.string();
    LiveCluster probe(instance, index, instance.initialAssignment(), probeConfig);
    segmentBytes =
        fs::file_size(probe.segmentPath(0, instance.initialAssignment()[0]));
  }
  LiveClusterConfig throttled;
  throttled.rootDir = dir.path.string();
  throttled.migrationBandwidth = static_cast<double>(segmentBytes) / 0.15;
  LiveCluster cluster(instance, index, instance.initialAssignment(), throttled);

  ServeConfig serveConfig;
  serveConfig.cacheCapacity = 128;
  QueryBroker broker(instance, instance.initialAssignment(), index, serveConfig,
                     cluster.shardIndexes());
  ASSERT_TRUE(broker.liveMode());
  cluster.attachBroker(&broker);

  // Fixed query set with precomputed oracle answers.
  const std::vector<std::vector<TermId>> queries = {
      {0, 7}, {25, 3, 110}, {599}, {42, 42}, {5, 9, 200}, {17}};

  std::atomic<bool> stop{false};
  std::atomic<bool> migrating{false};
  std::atomic<std::uint64_t> checkedDuringMigration{0};
  std::atomic<std::uint64_t> mismatches{0};
  std::thread client([&] {
    std::vector<std::vector<ScoredDoc>> references;
    for (const auto& q : queries)
      references.push_back(
          index.searchTopK(q, serveConfig.topK, serveConfig.bm25));
    for (std::size_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
      const std::size_t qi = i % queries.size();
      const QueryResult result = broker.execute(queries[qi]);
      const auto& reference = references[qi];
      bool ok = result.complete && result.docs.size() == reference.size();
      for (std::size_t d = 0; ok && d < reference.size(); ++d)
        ok = result.docs[d].doc == reference[d].doc &&
             std::abs(result.docs[d].score - reference[d].score) < 1e-9;
      if (!ok) mismatches.fetch_add(1, std::memory_order_relaxed);
      if (migrating.load(std::memory_order_relaxed))
        checkedDuringMigration.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Rotate every shard one machine over: three real file moves.
  std::vector<MachineId> target = instance.initialAssignment();
  for (MachineId& m : target) m = static_cast<MachineId>((m + 1) % kMachines);
  const Schedule schedule = MigrationScheduler().build(
      instance, instance.initialAssignment(), target);
  ASSERT_TRUE(schedule.complete);
  ASSERT_EQ(schedule.moveCount(), kPartitions);

  migrating.store(true);
  const MigrationExecutor executor{ExecutorConfig{}};
  const ExecutionReport report =
      executor.execute(instance, schedule, FaultPlan{}, &cluster);
  migrating.store(false);
  stop.store(true);
  client.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(checkedDuringMigration.load(), 10u)
      << "queries did not overlap the migration window";
  EXPECT_FALSE(report.degraded);
  EXPECT_EQ(report.movesCommitted, kPartitions);
  EXPECT_EQ(cluster.cutovers(), kPartitions);

  // Executor bookkeeping, plane, and broker routing all agree.
  EXPECT_EQ(report.finalMapping, target);
  EXPECT_EQ(cluster.mapping(), target);
  EXPECT_EQ(broker.mapping(), target);

  // The filesystem is exactly the mapping: sources dropped, no debris.
  const auto audit = cluster.audit();
  EXPECT_TRUE(audit.clean()) << auditSummary(audit);
  EXPECT_EQ(audit.segmentFiles, kPartitions);

  // Post-cutover serving is still the oracle.
  for (const auto& q : queries)
    expectOracle(index, broker.execute(q), q, serveConfig.topK,
                 serveConfig.bm25);
  broker.shutdown();
}

void runFaultSweepCase(std::uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  const std::size_t kPartitions = 4, kMachines = 4;
  const PartitionedIndex index = smallIndex(kPartitions, seed);
  const Instance instance = hostingInstance(kPartitions, kMachines);
  const TempDir dir;

  FaultPlan faults;
  faults.seed = seed * 31 + 7;
  faults.copyFailureProbability = 0.4;
  MachineCrashEvent crash;
  crash.machine = static_cast<MachineId>(seed % kMachines);
  crash.phase = 0;
  crash.fraction = 0.5;
  faults.crashes.push_back(crash);
  const FaultInjector injector(faults);

  LiveClusterConfig liveConfig;
  liveConfig.rootDir = dir.path.string();
  LiveCluster cluster(instance, index, instance.initialAssignment(), liveConfig,
                      &injector);
  ServeConfig serveConfig;
  QueryBroker broker(instance, instance.initialAssignment(), index, serveConfig,
                     cluster.shardIndexes());
  cluster.attachBroker(&broker);

  std::vector<MachineId> target = instance.initialAssignment();
  for (MachineId& m : target) m = static_cast<MachineId>((m + 1) % kMachines);
  const Schedule schedule = MigrationScheduler().build(
      instance, instance.initialAssignment(), target);
  ASSERT_TRUE(schedule.complete);

  ExecutorConfig config;
  config.maxRetries = 2;
  config.maxReplans = 2;
  config.sra.lns.seed = seed + 1;
  config.sra.lns.maxIterations = 2000;
  config.sra.polish = false;
  const MigrationExecutor executor(config);
  const ExecutionReport report =
      executor.execute(instance, schedule, faults, &cluster);

  // Whatever the faults did, bookkeeping and physical routing agree.
  ASSERT_EQ(report.finalMapping.size(), instance.shardCount());
  EXPECT_EQ(cluster.mapping(), report.finalMapping);
  EXPECT_EQ(broker.mapping(), report.finalMapping);

  // Recovery: collect every crashed machine's frozen debris.
  for (const MachineId m : report.crashedMachines) cluster.recoverMachine(m);

  // The audit invariants: no torn segments, no orphaned temps, no strays,
  // every mapped shard backed by a validated file.
  const auto audit = cluster.audit();
  EXPECT_TRUE(audit.clean()) << auditSummary(audit);
  EXPECT_EQ(audit.segmentFiles, kPartitions);

  // Serving still matches the oracle after the drill.
  for (const auto& q : {std::vector<TermId>{0, 7}, std::vector<TermId>{25, 3},
                        std::vector<TermId>{599}})
    expectOracle(index, broker.execute(q), q, serveConfig.topK,
                 serveConfig.bm25);
  broker.shutdown();
}

TEST(LiveMigrationFaultSweep, CrashAndCopyFailuresLeaveATrustworthyCluster) {
  for (const std::uint64_t seed : {3ull, 5ull, 11ull, 20ull}) runFaultSweepCase(seed);
}

TEST(LiveMigration, AdmissionRejectsCopiesOverTheDataBudget) {
  const std::size_t kPartitions = 2, kMachines = 2;
  const PartitionedIndex index = smallIndex(kPartitions);
  const Instance instance = hostingInstance(kPartitions, kMachines);

  // Probe the real segment size first (budgets are in actual file bytes).
  const TempDir probeDir;
  LiveClusterConfig probeConfig;
  probeConfig.rootDir = probeDir.path.string();
  LiveCluster probe(instance, index, instance.initialAssignment(), probeConfig);
  double largest = 0.0;
  for (MachineId m = 0; m < kMachines; ++m)
    largest = std::max(largest, probe.residentBytes(m));

  // A budget that fits steady state but not dual residency: every machine
  // holds one segment, and a second copy would roughly double that.
  const TempDir dir;
  LiveClusterConfig tight;
  tight.rootDir = dir.path.string();
  tight.dataBudgetBytes = largest * 1.5;
  LiveCluster cluster(instance, index, instance.initialAssignment(), tight);
  EXPECT_FALSE(cluster.admitCopy(0, 0, 1));

  // The executor aborts the move at admission: nothing moves, no debris.
  const Schedule schedule = MigrationScheduler().build(
      instance, instance.initialAssignment(), {1, 1});
  ASSERT_EQ(schedule.moveCount(), 1u);
  const MigrationExecutor executor{ExecutorConfig{}};
  const ExecutionReport report =
      executor.execute(instance, schedule, FaultPlan{}, &cluster);
  EXPECT_EQ(report.movesCommitted, 0u);
  EXPECT_EQ(report.abortedMoves, 1u);
  EXPECT_EQ(report.finalMapping, instance.initialAssignment());
  EXPECT_EQ(cluster.mapping(), instance.initialAssignment());
  const auto audit = cluster.audit();
  EXPECT_TRUE(audit.clean()) << auditSummary(audit);

  // With the budget lifted the same copy is admitted.
  const TempDir roomyDir;
  LiveClusterConfig roomy;
  roomy.rootDir = roomyDir.path.string();
  LiveCluster unbounded(instance, index, instance.initialAssignment(), roomy);
  EXPECT_TRUE(unbounded.admitCopy(0, 0, 1));
}

TEST(LiveMigration, RecoverMachineCollectsOrphanTempsAndStrayCopies) {
  const std::size_t kPartitions = 2, kMachines = 2;
  const PartitionedIndex index = smallIndex(kPartitions);
  const Instance instance = hostingInstance(kPartitions, kMachines);
  const TempDir dir;
  LiveClusterConfig liveConfig;
  liveConfig.rootDir = dir.path.string();
  LiveCluster cluster(instance, index, instance.initialAssignment(), liveConfig);

  // Destination dies mid-copy: the half-written temp freezes on its disk.
  CopyFault midCopyCrash;
  midCopyCrash.abandonInFlight = true;
  midCopyCrash.destinationCrashed = true;
  midCopyCrash.fraction = 0.5;
  EXPECT_FALSE(cluster.copyShard(0, 0, 1, midCopyCrash));
  cluster.machineCrashed(1);
  auto audit = cluster.audit();
  EXPECT_EQ(audit.orphanTempFiles, 1u);
  EXPECT_FALSE(audit.clean());

  cluster.recoverMachine(1);
  audit = cluster.audit();
  EXPECT_TRUE(audit.clean()) << auditSummary(audit);

  // Copy completes, then the destination dies before cutover: the
  // published-but-never-serving file is a stray the recovery removes.
  EXPECT_TRUE(cluster.copyShard(0, 0, 1, CopyFault{}));
  cluster.machineCrashed(1);
  cluster.discardCopy(0, 1, /*destinationCrashed=*/true);
  audit = cluster.audit();
  EXPECT_EQ(audit.straySegments, 1u);
  EXPECT_FALSE(audit.clean());

  cluster.recoverMachine(1);
  audit = cluster.audit();
  EXPECT_TRUE(audit.clean()) << auditSummary(audit);
  EXPECT_EQ(audit.segmentFiles, kPartitions);

  // Healthy-destination discard cleans up immediately (no recovery pass).
  EXPECT_TRUE(cluster.copyShard(0, 0, 1, CopyFault{}));
  cluster.discardCopy(0, 1, /*destinationCrashed=*/false);
  audit = cluster.audit();
  EXPECT_TRUE(audit.clean()) << auditSummary(audit);
}

}  // namespace
}  // namespace resex::serve
