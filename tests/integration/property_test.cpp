// Property-based suites: invariants checked across parameterized sweeps of
// seeds and instance shapes (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <tuple>

#include "core/sra.hpp"
#include "cluster/scheduler.hpp"
#include "model/bounds.hpp"
#include "workload/synthetic.hpp"

namespace resex {
namespace {

// ---------------------------------------------------------------------------
// Property: for any generated instance, SRA's output satisfies every hard
// constraint of the problem — capacity, compensation, schedulability — and
// never regresses the objective.
// ---------------------------------------------------------------------------

using SraParams = std::tuple<std::uint64_t /*seed*/, std::size_t /*exchange*/,
                             double /*loadFactor*/>;

class SraInvariants : public ::testing::TestWithParam<SraParams> {};

TEST_P(SraInvariants, HardConstraintsAlwaysHold) {
  const auto [seed, exchange, loadFactor] = GetParam();
  SyntheticConfig gen;
  gen.seed = seed;
  gen.machines = 10;
  gen.exchangeMachines = exchange;
  gen.shardsPerMachine = 10.0;
  gen.loadFactor = loadFactor;
  gen.placementSkew = 0.9;
  const Instance inst = generateSynthetic(gen);

  SraConfig config;
  config.lns.seed = seed * 31 + 1;
  config.lns.maxIterations = 1200;
  Sra sra(config);
  const RebalanceResult r = sra.rebalance(inst);

  // Capacity.
  Assignment after(inst, r.finalMapping);
  EXPECT_TRUE(after.validate(/*requireCapacity=*/true).empty());
  // Compensation.
  EXPECT_GE(after.vacantCount(), inst.exchangeCount());
  // Schedulability: the reported schedule replays cleanly.
  EXPECT_TRUE(verifySchedule(inst, inst.initialAssignment(), r.targetMapping,
                             r.schedule)
                  .empty());
  // No regression.
  EXPECT_LE(r.after.bottleneckUtil, r.before.bottleneckUtil + 1e-9);
  // Never below the information-theoretic lower bound.
  EXPECT_GE(r.after.bottleneckUtil, bottleneckLowerBound(inst) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndShapes, SraInvariants,
    ::testing::Combine(::testing::Values(1ULL, 2ULL, 3ULL, 4ULL),
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{3}),
                       ::testing::Values(0.55, 0.75)),
    [](const ::testing::TestParamInfo<SraParams>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_load" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 100));
    });

// ---------------------------------------------------------------------------
// Property: replication never breaks the hard constraints either — across
// seeds and replication factors, SRA output is capacity-feasible,
// anti-affine, compensated, and schedulable.
// ---------------------------------------------------------------------------

using ReplParams = std::tuple<std::uint64_t /*seed*/, std::size_t /*replication*/>;

class ReplicatedSraInvariants : public ::testing::TestWithParam<ReplParams> {};

TEST_P(ReplicatedSraInvariants, HardConstraintsAlwaysHold) {
  const auto [seed, replication] = GetParam();
  SyntheticConfig gen;
  gen.seed = seed;
  gen.machines = 10;
  gen.exchangeMachines = 2;
  gen.shardsPerMachine = 12.0;
  gen.replicationFactor = replication;
  gen.loadFactor = 0.7;
  gen.placementSkew = 0.9;
  gen.skuCount = 1;
  const Instance inst = generateSynthetic(gen);

  SraConfig config;
  config.lns.seed = seed + 5;
  config.lns.maxIterations = 1200;
  Sra sra(config);
  const RebalanceResult r = sra.rebalance(inst);

  Assignment after(inst, r.finalMapping);
  EXPECT_TRUE(after.validate(/*requireCapacity=*/true).empty());
  EXPECT_GE(after.vacantCount(), inst.exchangeCount());
  EXPECT_TRUE(verifySchedule(inst, inst.initialAssignment(), r.targetMapping,
                             r.schedule)
                  .empty());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndFactors, ReplicatedSraInvariants,
    ::testing::Combine(::testing::Values(5ULL, 6ULL, 7ULL),
                       ::testing::Values(std::size_t{2}, std::size_t{3})));

// ---------------------------------------------------------------------------
// Property: any schedule the scheduler builds — complete or not — replays
// without violating a single transient or capacity constraint, across
// random target assignments.
// ---------------------------------------------------------------------------

class SchedulerInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerInvariants, EveryBuiltScheduleVerifies) {
  const std::uint64_t seed = GetParam();
  const Instance inst = tinyTestInstance(seed, 8, 80, 2, 0.7);
  Rng rng(seed * 7 + 5);

  // Random capacity-feasible target: random destination per shard,
  // accepted only when it fits (end state), repeated for churn.
  Assignment target(inst);
  for (int churn = 0; churn < 300; ++churn) {
    const auto s = static_cast<ShardId>(rng.below(inst.shardCount()));
    const auto m = static_cast<MachineId>(rng.below(inst.machineCount()));
    if (target.machineOf(s) != m && target.canPlace(s, m)) target.moveShard(s, m);
  }

  MigrationScheduler scheduler;
  const Schedule schedule =
      scheduler.build(inst, inst.initialAssignment(), target.mapping());
  EXPECT_TRUE(verifySchedule(inst, inst.initialAssignment(), target.mapping(), schedule)
                  .empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerInvariants,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Property: generated instances are always internally consistent and hit
// their configured load factor, across the generator's parameter space.
// ---------------------------------------------------------------------------

using GenParams = std::tuple<std::uint64_t, std::size_t /*dims*/, double /*sigma*/,
                             double /*corr*/>;

class GeneratorInvariants : public ::testing::TestWithParam<GenParams> {};

TEST_P(GeneratorInvariants, FeasibleAndOnTarget) {
  const auto [seed, dims, sigma, corr] = GetParam();
  SyntheticConfig gen;
  gen.seed = seed;
  gen.machines = 20;
  gen.exchangeMachines = 2;
  gen.dims = dims;
  gen.shardSizeSigma = sigma;
  gen.dimCorrelation = corr;
  gen.loadFactor = 0.7;
  const Instance inst = generateSynthetic(gen);
  EXPECT_NEAR(inst.loadFactor(), 0.7, 1e-9);
  Assignment a(inst);
  EXPECT_TRUE(a.validate(/*requireCapacity=*/true).empty());
  // Serialization is lossless.
  EXPECT_EQ(Instance::deserialize(inst.serialize()).serialize(), inst.serialize());
}

INSTANTIATE_TEST_SUITE_P(
    Space, GeneratorInvariants,
    ::testing::Combine(::testing::Values(11ULL, 22ULL),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4}),
                       ::testing::Values(0.3, 1.0), ::testing::Values(0.0, 1.0)));

}  // namespace
}  // namespace resex
