// Operations over the search substrate: the controller driving a
// SearchWorkload through a diurnal cycle (the fig5/search_engine_day
// pipeline, asserted rather than printed).
#include <gtest/gtest.h>

#include "control/controller.hpp"
#include "search/builder.hpp"
#include "workload/diurnal.hpp"

namespace resex {
namespace {

SearchWorkloadConfig opsConfig() {
  SearchWorkloadConfig config;
  config.seed = 71;
  config.corpus.docCount = 60000;
  config.corpus.termCount = 3000;
  config.shardCount = 60;
  config.machines = 8;
  config.exchangeMachines = 2;
  config.peakQps = 700.0;
  config.cpuLoadFactorAtPeak = 0.85;
  config.placementSkew = 1.1;
  return config;
}

TEST(SearchOps, ControllerHoldsTailLatencyThroughTheDay) {
  const SearchWorkloadConfig config = opsConfig();
  const SearchWorkload workload(config);
  DiurnalModel diurnal;

  ControllerConfig controllerConfig;
  controllerConfig.trigger.bottleneckThreshold = 0.9;
  controllerConfig.trigger.cvThreshold = 0.3;
  controllerConfig.trigger.cooldownEpochs = 0;
  controllerConfig.sra.lns.maxIterations = 2500;
  ClusterController controller(controllerConfig);

  std::vector<MachineId> managed =
      workload.buildInstance(config.peakQps).initialAssignment();
  std::vector<MachineId> staticMapping = managed;

  double managedWorstP99 = 0.0;
  double staticWorstP99 = 0.0;
  for (std::size_t epoch = 0; epoch < 6; ++epoch) {
    const double hour = static_cast<double>(epoch) * 4.0;
    const double qps = config.peakQps * diurnal.multiplier(hour) /
                       diurnal.multiplier(diurnal.peakHour);
    const Instance inst = workload.buildInstance(qps, &managed);
    controller.step(inst);
    managed = controller.mapping();

    const auto withController = workload.simulate(managed, qps, 2500, 5 + epoch);
    const auto withoutController =
        workload.simulate(staticMapping, qps, 2500, 5 + epoch);
    managedWorstP99 = std::max(managedWorstP99, withController.p99());
    staticWorstP99 = std::max(staticWorstP99, withoutController.p99());

    // Invariants every epoch: vacancy preserved, mapping well formed.
    Assignment state(inst, managed);
    EXPECT_GE(state.vacantCount(), inst.exchangeCount()) << "epoch " << epoch;
  }
  // The managed cluster's worst tail beats the static skewed placement.
  EXPECT_LT(managedWorstP99, staticWorstP99);
}

TEST(SearchOps, ReplicatedWorkloadSurvivesTheSameLoop) {
  SearchWorkloadConfig config = opsConfig();
  config.replicationFactor = 2;
  config.shardCount = 30;  // 60 physical
  const SearchWorkload workload(config);

  ControllerConfig controllerConfig;
  controllerConfig.trigger.always = true;
  controllerConfig.trigger.cooldownEpochs = 0;
  controllerConfig.sra.lns.maxIterations = 1500;
  ClusterController controller(controllerConfig);

  std::vector<MachineId> mapping =
      workload.buildInstance(config.peakQps).initialAssignment();
  for (std::size_t epoch = 0; epoch < 3; ++epoch) {
    const double qps = config.peakQps * (0.6 + 0.2 * static_cast<double>(epoch));
    const Instance inst = workload.buildInstance(qps, &mapping);
    const EpochReport report = controller.step(inst);
    EXPECT_TRUE(report.executed) << "epoch " << epoch;
    mapping = controller.mapping();
    Assignment state(inst, mapping);
    const auto problems = state.validate(/*requireCapacity=*/false);
    for (const auto& p : problems)
      EXPECT_EQ(p.find("co-located"), std::string::npos) << p;
    // Simulation still runs (replica routing handles the new mapping).
    const auto sim = workload.simulate(mapping, qps, 1500, 11 + epoch);
    EXPECT_EQ(sim.queries, 1500u);
  }
}

}  // namespace
}  // namespace resex
