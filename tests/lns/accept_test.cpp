#include "lns/accept.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace resex {
namespace {

TEST(HillClimb, AcceptsOnlyNonWorsening) {
  HillClimbAcceptance hc;
  Rng rng(1);
  EXPECT_TRUE(hc.accept(0.5, 0.6, 0.4, rng));
  EXPECT_TRUE(hc.accept(0.6, 0.6, 0.4, rng));
  EXPECT_FALSE(hc.accept(0.7, 0.6, 0.4, rng));
}

TEST(Annealing, AlwaysAcceptsImprovement) {
  SimulatedAnnealingAcceptance sa(0.001, 0.99);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(sa.accept(0.5, 0.9, 0.4, rng));
}

TEST(Annealing, HotTemperatureAcceptsWorsening) {
  SimulatedAnnealingAcceptance sa(100.0, 1.0);
  Rng rng(3);
  int accepted = 0;
  for (int i = 0; i < 1000; ++i)
    if (sa.accept(0.61, 0.6, 0.5, rng)) ++accepted;
  EXPECT_GT(accepted, 950);  // exp(-0.01/100) ~ 1
}

TEST(Annealing, ColdTemperatureRejectsWorsening) {
  SimulatedAnnealingAcceptance sa(1e-6, 1.0);
  Rng rng(4);
  int accepted = 0;
  for (int i = 0; i < 1000; ++i)
    if (sa.accept(0.7, 0.6, 0.5, rng)) ++accepted;
  EXPECT_LT(accepted, 5);
}

TEST(Annealing, CoolingReducesTemperature) {
  SimulatedAnnealingAcceptance sa(1.0, 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(sa.temperature(), 1.0);
  sa.onIteration();
  EXPECT_DOUBLE_EQ(sa.temperature(), 0.5);
  sa.onIteration();
  EXPECT_DOUBLE_EQ(sa.temperature(), 0.25);
}

TEST(Annealing, TemperatureFlooredAtMin) {
  SimulatedAnnealingAcceptance sa(1.0, 0.001, 0.1);
  for (int i = 0; i < 50; ++i) sa.onIteration();
  EXPECT_DOUBLE_EQ(sa.temperature(), 0.1);
}

TEST(Annealing, ForHorizonReachesLowTempByEnd) {
  auto sa = SimulatedAnnealingAcceptance::forHorizon(0.1, 1000);
  EXPECT_NEAR(sa->temperature(), 0.1, 1e-9);
  for (int i = 0; i < 1000; ++i) sa->onIteration();
  EXPECT_LT(sa->temperature(), 1e-8);
}

TEST(Annealing, AcceptanceProbabilityFollowsBoltzmann) {
  // T = delta: acceptance probability should be near exp(-1) ~ 0.368.
  SimulatedAnnealingAcceptance sa(0.1, 1.0);
  Rng rng(5);
  int accepted = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (sa.accept(0.7, 0.6, 0.5, rng)) ++accepted;
  EXPECT_NEAR(static_cast<double>(accepted) / n, std::exp(-1.0), 0.02);
}

TEST(RecordToRecord, AcceptsWithinBandOfBest) {
  RecordToRecordAcceptance rtr(0.05, 1.0);
  Rng rng(6);
  EXPECT_TRUE(rtr.accept(0.64, 9.9, 0.6, rng));
  EXPECT_FALSE(rtr.accept(0.66, 0.0, 0.6, rng));
}

TEST(RecordToRecord, BandShrinks) {
  RecordToRecordAcceptance rtr(0.1, 0.5);
  Rng rng(7);
  EXPECT_TRUE(rtr.accept(0.69, 0.0, 0.6, rng));
  rtr.onIteration();  // band 0.05
  EXPECT_FALSE(rtr.accept(0.69, 0.0, 0.6, rng));
}

TEST(Acceptance, NamesAreMeaningful) {
  HillClimbAcceptance hc;
  SimulatedAnnealingAcceptance sa(1.0, 0.9);
  RecordToRecordAcceptance rtr(0.1);
  EXPECT_EQ(hc.name(), "hill-climb");
  EXPECT_EQ(sa.name(), "annealing");
  EXPECT_EQ(rtr.name(), "record-to-record");
}

}  // namespace
}  // namespace resex
