#include "lns/adaptive.hpp"

#include <gtest/gtest.h>

namespace resex {
namespace {

TEST(Adaptive, SelectsWithinRange) {
  AdaptiveSelector sel(3);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_LT(sel.select(rng), 3u);
}

TEST(Adaptive, InitialWeightsEqual) {
  AdaptiveSelector sel(4);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(sel.weightOf(i), 1.0);
}

TEST(Adaptive, TracksUses) {
  AdaptiveSelector sel(2);
  Rng rng(2);
  for (int i = 0; i < 50; ++i) sel.select(rng);
  EXPECT_EQ(sel.usesOf(0) + sel.usesOf(1), 50u);
}

TEST(Adaptive, RewardedOperatorGainsWeight) {
  AdaptiveSelector sel(2, /*uniform=*/false, /*reaction=*/0.5, /*segmentLength=*/10);
  Rng rng(3);
  // Operator 0 keeps producing new bests; operator 1 always fails.
  for (int seg = 0; seg < 20; ++seg) {
    for (int i = 0; i < 10; ++i) {
      const std::size_t op = sel.select(rng);
      sel.reward(op, op == 0 ? OperatorOutcome::NewBest : OperatorOutcome::RepairFailed);
    }
  }
  EXPECT_GT(sel.weightOf(0), sel.weightOf(1) * 2.0);
}

TEST(Adaptive, UniformModeIgnoresRewards) {
  AdaptiveSelector sel(2, /*uniform=*/true, 0.5, 10);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const std::size_t op = sel.select(rng);
    sel.reward(op, op == 0 ? OperatorOutcome::NewBest : OperatorOutcome::RepairFailed);
  }
  EXPECT_DOUBLE_EQ(sel.weightOf(0), 1.0);
  EXPECT_DOUBLE_EQ(sel.weightOf(1), 1.0);
}

TEST(Adaptive, WeightsNeverStarve) {
  AdaptiveSelector sel(2, false, 0.9, 5);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const std::size_t op = sel.select(rng);
    sel.reward(op, OperatorOutcome::RepairFailed);
  }
  EXPECT_GE(sel.weightOf(0), 0.05);
  EXPECT_GE(sel.weightOf(1), 0.05);
}

TEST(Adaptive, BiasedSelectionFollowsWeights) {
  AdaptiveSelector sel(2, false, 1.0, 4);
  Rng rng(6);
  // Push operator 0's weight up hard.
  for (int i = 0; i < 100; ++i) {
    sel.select(rng);
    sel.reward(0, OperatorOutcome::NewBest);
  }
  // Now sample: op 0 should dominate.
  std::size_t zeros = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i)
    if (sel.select(rng) == 0) ++zeros;
  EXPECT_GT(zeros, static_cast<std::size_t>(n) * 6 / 10);
}

TEST(Adaptive, OutOfRangeRewardIsIgnored) {
  AdaptiveSelector sel(2);
  sel.reward(99, OperatorOutcome::NewBest);  // must not crash
  EXPECT_DOUBLE_EQ(sel.weightOf(0), 1.0);
}

TEST(Adaptive, OperatorCount) {
  AdaptiveSelector sel(5);
  EXPECT_EQ(sel.operatorCount(), 5u);
}

}  // namespace
}  // namespace resex
