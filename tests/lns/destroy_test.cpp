#include "lns/destroy.hpp"
#include "lns/lns.hpp"
#include "lns/repair.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/test_instances.hpp"
#include "workload/synthetic.hpp"

namespace resex {
namespace {

using testing::placedInstance;

Instance mediumInstance() { return tinyTestInstance(17, 8, 80, 2, 0.6); }

void expectRemovedConsistent(const Assignment& a, const std::vector<ShardId>& removed) {
  std::set<ShardId> unique(removed.begin(), removed.end());
  EXPECT_EQ(unique.size(), removed.size()) << "duplicate removals";
  for (const ShardId s : removed) EXPECT_FALSE(a.isAssigned(s));
  EXPECT_EQ(a.unassignedCount(), removed.size());
}

TEST(RandomDestroy, RemovesRequestedCount) {
  const Instance inst = mediumInstance();
  Assignment a(inst);
  Rng rng(1);
  RandomDestroy op;
  const auto removed = op.destroy(a, 10, rng);
  EXPECT_EQ(removed.size(), 10u);
  expectRemovedConsistent(a, removed);
  EXPECT_TRUE(a.validate(false).empty());
}

TEST(RandomDestroy, QuotaLargerThanShardCount) {
  const Instance inst = tinyTestInstance(3, 4, 12, 1, 0.5);
  Assignment a(inst);
  Rng rng(2);
  RandomDestroy op;
  const auto removed = op.destroy(a, 100, rng);
  EXPECT_LE(removed.size(), inst.shardCount());
  EXPECT_GE(removed.size(), inst.shardCount() / 2);  // most of them
  expectRemovedConsistent(a, removed);
}

TEST(WorstMachineDestroy, TargetsHotMachines) {
  // Machine 0 is hot (three shards), others hold one small shard each.
  const Instance inst =
      placedInstance(4, 0, {30.0, 30.0, 30.0, 5.0, 5.0, 5.0}, {0, 0, 0, 1, 2, 3});
  Assignment a(inst);
  Rng rng(3);
  WorstMachineDestroy op(0.25);  // top-1 machine of 4
  const auto removed = op.destroy(a, 2, rng);
  ASSERT_EQ(removed.size(), 2u);
  // All removals must come from the hot machine.
  for (const ShardId s : removed) EXPECT_EQ(inst.initialMachineOf(s), 0u);
}

TEST(WorstMachineDestroy, HandlesVacantTopMachinesGracefully) {
  const Instance inst = mediumInstance();
  Assignment a(inst);
  Rng rng(5);
  WorstMachineDestroy op(1.0);  // may sample vacant exchange machines
  const auto removed = op.destroy(a, 8, rng);
  EXPECT_GT(removed.size(), 0u);
  expectRemovedConsistent(a, removed);
}

TEST(ShawDestroy, RemovesQuotaAndSeedIsIncluded) {
  const Instance inst = mediumInstance();
  Assignment a(inst);
  Rng rng(7);
  ShawDestroy op;
  const auto removed = op.destroy(a, 12, rng);
  EXPECT_EQ(removed.size(), 12u);
  expectRemovedConsistent(a, removed);
}

TEST(ShawDestroy, RemovedShardsAreRelated) {
  const Instance inst = mediumInstance();
  Assignment a(inst);
  Rng rng(9);
  ShawDestroy op(/*sameMachineBonus=*/0.5, /*greediness=*/16.0);  // near-greedy
  const auto removed = op.destroy(a, 6, rng);
  ASSERT_GE(removed.size(), 2u);
  // With a near-greedy pick, removed shards should be closer to the seed
  // demand than the average shard is.
  const ResourceVector& seedDemand = inst.shard(removed[0]).demand;
  double removedAvg = 0.0;
  for (std::size_t i = 1; i < removed.size(); ++i)
    removedAvg += demandDistance(seedDemand, inst.shard(removed[i]).demand);
  removedAvg /= static_cast<double>(removed.size() - 1);
  double allAvg = 0.0;
  for (ShardId s = 0; s < inst.shardCount(); ++s)
    allAvg += demandDistance(seedDemand, inst.shard(s).demand);
  allAvg /= static_cast<double>(inst.shardCount());
  EXPECT_LT(removedAvg, allAvg);
}

TEST(VacancyDestroy, DrainsWholeMachines) {
  const Instance inst = mediumInstance();
  Assignment a(inst);
  const std::size_t vacantBefore = a.vacantCount();
  Rng rng(11);
  VacancyDestroy op;
  const auto removed = op.destroy(a, 30, rng);
  EXPECT_GT(removed.size(), 0u);
  expectRemovedConsistent(a, removed);
  EXPECT_GT(a.vacantCount(), vacantBefore);
}

TEST(VacancyDestroy, NoOccupiedMachinesMeansNothingToDo) {
  const Instance inst = mediumInstance();
  Assignment a(inst);
  for (ShardId s = 0; s < inst.shardCount(); ++s) a.remove(s);
  Rng rng(13);
  VacancyDestroy op;
  EXPECT_TRUE(op.destroy(a, 10, rng).empty());
}

TEST(BindingDimensionDestroy, RemovesHeavyShardsOfTheBindingDim) {
  // Machine 0's dim-1 load dominates; the op must pull dim-1-heavy shards
  // off it.
  std::vector<Machine> machines(2);
  machines[0] = {0, ResourceVector{100.0, 100.0}, false, 0};
  machines[1] = {1, ResourceVector{100.0, 100.0}, false, 0};
  std::vector<Shard> shards(4);
  shards[0] = {0, ResourceVector{5.0, 40.0}, 1.0};   // dim-1 heavy
  shards[1] = {1, ResourceVector{5.0, 35.0}, 1.0};   // dim-1 heavy
  shards[2] = {2, ResourceVector{20.0, 2.0}, 1.0};   // dim-0 heavy
  shards[3] = {3, ResourceVector{10.0, 10.0}, 1.0};
  const Instance inst(2, std::move(machines), std::move(shards), {0, 0, 0, 1}, 0,
                      ResourceVector{1.0, 1.0});
  Assignment a(inst);
  Rng rng(3);
  BindingDimensionDestroy op;
  const auto removed = op.destroy(a, 2, rng);
  ASSERT_EQ(removed.size(), 2u);
  // Both removals must be the dim-1-heavy shards (ids 0 and 1, any order).
  for (const ShardId s : removed) EXPECT_LT(s, 2u);
}

TEST(BindingDimensionDestroy, TracksTheMovingBottleneck) {
  const Instance inst = mediumInstance();
  Assignment a(inst);
  Rng rng(5);
  BindingDimensionDestroy op;
  const double before = a.bottleneckUtilization();
  const auto removed = op.destroy(a, 10, rng);
  EXPECT_EQ(removed.size(), 10u);
  expectRemovedConsistent(a, removed);
  // Ripping load off successive bottlenecks must lower the bottleneck.
  EXPECT_LT(a.bottleneckUtilization(), before);
}

TEST(BindingDimensionDestroy, WorksInsideTheLnsLoop) {
  const Instance inst = mediumInstance();
  const Objective obj = Objective::forInstance(inst);
  LnsConfig config;
  config.seed = 3;
  config.maxIterations = 600;
  LnsSolver solver(inst, obj, config);
  solver.addDestroy(std::make_unique<BindingDimensionDestroy>());
  solver.addDestroy(std::make_unique<VacancyDestroy>());
  solver.addRepair(std::make_unique<GreedyRepair>());
  const LnsResult result = solver.solve();
  Assignment best(inst, result.bestMapping);
  EXPECT_TRUE(best.validate(true).empty());
  EXPECT_LT(result.bestScore.bottleneckUtil,
            Assignment(inst).bottleneckUtilization());
}

TEST(AllDestroyOps, ZeroQuotaRemovesNothingOrSeedOnly) {
  const Instance inst = mediumInstance();
  Rng rng(15);
  RandomDestroy random;
  WorstMachineDestroy worst;
  VacancyDestroy vacancy;
  for (DestroyOperator* op :
       std::initializer_list<DestroyOperator*>{&random, &worst, &vacancy}) {
    Assignment a(inst);
    const auto removed = op->destroy(a, 0, rng);
    EXPECT_TRUE(removed.empty()) << op->name();
  }
}

TEST(AllDestroyOps, NamesAreDistinct) {
  RandomDestroy a;
  WorstMachineDestroy b;
  ShawDestroy c;
  VacancyDestroy d;
  std::set<std::string_view> names{a.name(), b.name(), c.name(), d.name()};
  EXPECT_EQ(names.size(), 4u);
}

}  // namespace
}  // namespace resex
