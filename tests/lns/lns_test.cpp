#include "lns/lns.hpp"

#include <gtest/gtest.h>

#include "common/test_instances.hpp"
#include "lns/destroy.hpp"
#include "lns/repair.hpp"
#include "model/bounds.hpp"
#include "workload/synthetic.hpp"

namespace resex {
namespace {

using testing::placedInstance;

LnsConfig fastConfig(std::uint64_t seed = 1, std::size_t iters = 3000) {
  LnsConfig config;
  config.seed = seed;
  config.maxIterations = iters;
  config.timeBudgetSeconds = 20.0;
  return config;
}

TEST(Lns, ImprovesSkewedInstance) {
  const Instance inst = tinyTestInstance(41, 8, 96, 2, 0.6);
  const Objective obj(inst.exchangeCount());
  Assignment start(inst);
  const double startBottleneck = start.bottleneckUtilization();

  LnsSolver solver(inst, obj, fastConfig());
  const LnsResult result = solver.solve();
  EXPECT_LT(result.bestScore.bottleneckUtil, startBottleneck);
  EXPECT_EQ(result.bestScore.vacancyDeficit, 0u);
}

TEST(Lns, BestMappingIsCapacityFeasibleAndConsistent) {
  const Instance inst = tinyTestInstance(43, 8, 96, 2, 0.7);
  const Objective obj(inst.exchangeCount());
  LnsSolver solver(inst, obj, fastConfig(7));
  const LnsResult result = solver.solve();
  Assignment best(inst, result.bestMapping);
  EXPECT_TRUE(best.validate(/*requireCapacity=*/true).empty());
  const Score rescored = obj.evaluate(best);
  EXPECT_NEAR(rescored.bottleneckUtil, result.bestScore.bottleneckUtil, 1e-6);
  EXPECT_EQ(rescored.vacancyDeficit, result.bestScore.vacancyDeficit);
}

TEST(Lns, VacancyConstraintHoldsInBest) {
  const Instance inst = tinyTestInstance(47, 8, 96, 3, 0.65);
  const Objective obj(inst.exchangeCount());
  LnsSolver solver(inst, obj, fastConfig(11));
  const LnsResult result = solver.solve();
  Assignment best(inst, result.bestMapping);
  EXPECT_GE(best.vacantCount(), inst.exchangeCount());
}

TEST(Lns, DeterministicForSeed) {
  const Instance inst = tinyTestInstance(53, 6, 48, 2, 0.6);
  const Objective obj(inst.exchangeCount());
  LnsSolver a(inst, obj, fastConfig(99, 1500));
  LnsSolver b(inst, obj, fastConfig(99, 1500));
  // Time budgets could truncate differently; make them irrelevant.
  const LnsResult ra = a.solve();
  const LnsResult rb = b.solve();
  EXPECT_EQ(ra.bestMapping, rb.bestMapping);
}

TEST(Lns, RespectsIterationBudget) {
  const Instance inst = tinyTestInstance(59, 6, 48, 2, 0.6);
  const Objective obj(inst.exchangeCount());
  LnsConfig config = fastConfig(1, 100);
  LnsSolver solver(inst, obj, config);
  const LnsResult result = solver.solve();
  EXPECT_LE(result.stats.iterations, 100u);
}

TEST(Lns, TargetBottleneckStopsEarly) {
  const Instance inst = tinyTestInstance(61, 8, 96, 2, 0.5);
  const Objective obj(inst.exchangeCount());
  LnsConfig config = fastConfig(3, 100000);
  config.targetBottleneck = 0.99;  // any feasible solution qualifies
  LnsSolver solver(inst, obj, config);
  const LnsResult result = solver.solve();
  EXPECT_LT(result.stats.iterations, 100000u);
}

TEST(Lns, TrajectoryIsRecordedAndMonotone) {
  const Instance inst = tinyTestInstance(67, 8, 96, 2, 0.7);
  const Objective obj(inst.exchangeCount());
  LnsConfig config = fastConfig(5);
  config.recordTrajectory = true;
  LnsSolver solver(inst, obj, config);
  const LnsResult result = solver.solve();
  ASSERT_GE(result.stats.trajectory.size(), 2u);
  // The best is replaced by lexicographic comparison (deficit, bottleneck,
  // spread, bytes); with deficit 0 throughout, the bottleneck track is the
  // monotone one (the scalarization can tick up when a tie-break improves).
  for (std::size_t i = 1; i < result.stats.trajectory.size(); ++i) {
    EXPECT_LE(result.stats.trajectory[i].bestBottleneck,
              result.stats.trajectory[i - 1].bestBottleneck + 1e-6);
    EXPECT_GE(result.stats.trajectory[i].iteration,
              result.stats.trajectory[i - 1].iteration);
  }
}

TEST(Lns, StatsAreCoherent) {
  const Instance inst = tinyTestInstance(71, 6, 48, 2, 0.6);
  const Objective obj(inst.exchangeCount());
  LnsSolver solver(inst, obj, fastConfig(7, 2000));
  const LnsResult result = solver.solve();
  const LnsStats& stats = result.stats;
  EXPECT_GT(stats.iterations, 0u);
  EXPECT_LE(stats.improvedBest, stats.accepted);
  EXPECT_LE(stats.accepted + stats.repairFailures, stats.iterations);
  EXPECT_EQ(stats.destroyUses.size(), 4u);  // default operator set
  EXPECT_EQ(stats.repairUses.size(), 3u);
  std::size_t destroyTotal = 0;
  for (const std::size_t u : stats.destroyUses) destroyTotal += u;
  EXPECT_EQ(destroyTotal, stats.iterations);
}

TEST(Lns, NeverWorseThanStart) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Instance inst = tinyTestInstance(seed * 100 + 3, 6, 60, 2, 0.75);
    const Objective obj(inst.exchangeCount());
    Assignment start(inst);
    const Score startScore = obj.evaluate(start);
    LnsSolver solver(inst, obj, fastConfig(seed, 1000));
    const LnsResult result = solver.solve();
    EXPECT_FALSE(startScore.betterThan(result.bestScore)) << "seed " << seed;
  }
}

TEST(Lns, ApproachesVolumeLowerBoundOnEasyInstance) {
  const Instance inst = tinyTestInstance(73, 8, 160, 2, 0.6);
  const Objective obj(inst.exchangeCount());
  LnsSolver solver(inst, obj, fastConfig(13, 8000));
  const LnsResult result = solver.solve();
  const double lb = bottleneckLowerBound(inst);
  // Many small shards: LNS should get within 15% of the volume bound.
  EXPECT_LT(result.bestScore.bottleneckUtil, lb * 1.15);
}

TEST(Lns, CustomOperatorsAreUsed) {
  const Instance inst = tinyTestInstance(79, 6, 48, 2, 0.6);
  const Objective obj(inst.exchangeCount());
  LnsSolver solver(inst, obj, fastConfig(17, 500));
  solver.addDestroy(std::make_unique<RandomDestroy>());
  solver.addRepair(std::make_unique<GreedyRepair>());
  const LnsResult result = solver.solve();
  EXPECT_EQ(result.stats.destroyUses.size(), 1u);
  EXPECT_EQ(result.stats.repairUses.size(), 1u);
  EXPECT_EQ(result.stats.destroyUses[0], result.stats.iterations);
}

TEST(Lns, HillClimbAcceptanceWorks) {
  const Instance inst = tinyTestInstance(83, 6, 48, 2, 0.65);
  const Objective obj(inst.exchangeCount());
  LnsSolver solver(inst, obj, fastConfig(19, 1500));
  solver.setAcceptance(std::make_unique<HillClimbAcceptance>());
  const LnsResult result = solver.solve();
  Assignment start(inst);
  EXPECT_LE(result.bestScore.bottleneckUtil, start.bottleneckUtilization() + 1e-9);
}

}  // namespace
}  // namespace resex
