#include "lns/portfolio.hpp"

#include <gtest/gtest.h>

#include "workload/synthetic.hpp"

namespace resex {
namespace {

PortfolioConfig fastPortfolio(std::size_t searches) {
  PortfolioConfig config;
  config.searches = searches;
  config.baseSeed = 31;
  config.lns.maxIterations = 800;
  config.lns.timeBudgetSeconds = 20.0;
  return config;
}

TEST(Portfolio, RunsRequestedSearches) {
  const Instance inst = tinyTestInstance(91, 6, 60, 2, 0.65);
  const Objective obj(inst.exchangeCount());
  const PortfolioResult result = solvePortfolio(inst, obj, fastPortfolio(4));
  EXPECT_EQ(result.perSearchBottleneck.size(), 4u);
  EXPECT_LT(result.winner, 4u);
}

TEST(Portfolio, WinnerIsBestOfAllSearches) {
  const Instance inst = tinyTestInstance(93, 6, 60, 2, 0.65);
  const Objective obj(inst.exchangeCount());
  const PortfolioResult result = solvePortfolio(inst, obj, fastPortfolio(5));
  for (const double b : result.perSearchBottleneck)
    EXPECT_LE(result.best.bestScore.bottleneckUtil, b + 1e-9);
}

TEST(Portfolio, BestIsValidSolution) {
  const Instance inst = tinyTestInstance(97, 6, 60, 2, 0.65);
  const Objective obj(inst.exchangeCount());
  const PortfolioResult result = solvePortfolio(inst, obj, fastPortfolio(3));
  Assignment best(inst, result.best.bestMapping);
  EXPECT_TRUE(best.validate(/*requireCapacity=*/true).empty());
  EXPECT_GE(best.vacantCount(), inst.exchangeCount());
}

TEST(Portfolio, DeterministicForSeedSet) {
  const Instance inst = tinyTestInstance(101, 6, 48, 2, 0.6);
  const Objective obj(inst.exchangeCount());
  const PortfolioResult a = solvePortfolio(inst, obj, fastPortfolio(3));
  const PortfolioResult b = solvePortfolio(inst, obj, fastPortfolio(3));
  EXPECT_EQ(a.best.bestMapping, b.best.bestMapping);
  EXPECT_EQ(a.winner, b.winner);
}

TEST(Portfolio, ZeroSearchesMeansHardwareCount) {
  const Instance inst = tinyTestInstance(103, 5, 30, 1, 0.6);
  const Objective obj(inst.exchangeCount());
  PortfolioConfig config = fastPortfolio(0);
  config.lns.maxIterations = 100;
  const PortfolioResult result = solvePortfolio(inst, obj, config);
  EXPECT_GE(result.perSearchBottleneck.size(), 1u);
}

TEST(Portfolio, MultiStartAtLeastAsGoodAsSingle) {
  const Instance inst = tinyTestInstance(107, 8, 96, 2, 0.75);
  const Objective obj(inst.exchangeCount());
  const PortfolioResult multi = solvePortfolio(inst, obj, fastPortfolio(6));
  PortfolioConfig single = fastPortfolio(1);
  const PortfolioResult one = solvePortfolio(inst, obj, single);
  // Seed 1 of the portfolio equals the single run, so multi can only match
  // or beat it.
  EXPECT_LE(multi.best.bestScore.bottleneckUtil,
            one.best.bestScore.bottleneckUtil + 1e-9);
}

}  // namespace
}  // namespace resex
