#include "lns/portfolio.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>

#include "util/thread_pool.hpp"
#include "workload/synthetic.hpp"

namespace resex {
namespace {

PortfolioConfig fastPortfolio(std::size_t searches) {
  PortfolioConfig config;
  config.searches = searches;
  config.baseSeed = 31;
  config.lns.maxIterations = 800;
  config.lns.timeBudgetSeconds = 20.0;
  return config;
}

TEST(Portfolio, RunsRequestedSearches) {
  const Instance inst = tinyTestInstance(91, 6, 60, 2, 0.65);
  const Objective obj(inst.exchangeCount());
  const PortfolioResult result = solvePortfolio(inst, obj, fastPortfolio(4));
  EXPECT_EQ(result.perSearchBottleneck.size(), 4u);
  EXPECT_LT(result.winner, 4u);
}

TEST(Portfolio, WinnerIsBestOfAllSearches) {
  const Instance inst = tinyTestInstance(93, 6, 60, 2, 0.65);
  const Objective obj(inst.exchangeCount());
  const PortfolioResult result = solvePortfolio(inst, obj, fastPortfolio(5));
  for (const double b : result.perSearchBottleneck)
    EXPECT_LE(result.best.bestScore.bottleneckUtil, b + 1e-9);
}

TEST(Portfolio, BestIsValidSolution) {
  const Instance inst = tinyTestInstance(97, 6, 60, 2, 0.65);
  const Objective obj(inst.exchangeCount());
  const PortfolioResult result = solvePortfolio(inst, obj, fastPortfolio(3));
  Assignment best(inst, result.best.bestMapping);
  EXPECT_TRUE(best.validate(/*requireCapacity=*/true).empty());
  EXPECT_GE(best.vacantCount(), inst.exchangeCount());
}

TEST(Portfolio, DeterministicForSeedSet) {
  const Instance inst = tinyTestInstance(101, 6, 48, 2, 0.6);
  const Objective obj(inst.exchangeCount());
  const PortfolioResult a = solvePortfolio(inst, obj, fastPortfolio(3));
  const PortfolioResult b = solvePortfolio(inst, obj, fastPortfolio(3));
  EXPECT_EQ(a.best.bestMapping, b.best.bestMapping);
  EXPECT_EQ(a.winner, b.winner);
}

TEST(Portfolio, ZeroSearchesMeansHardwareCount) {
  const Instance inst = tinyTestInstance(103, 5, 30, 1, 0.6);
  const Objective obj(inst.exchangeCount());
  PortfolioConfig config = fastPortfolio(0);
  config.lns.maxIterations = 100;
  const PortfolioResult result = solvePortfolio(inst, obj, config);
  EXPECT_GE(result.perSearchBottleneck.size(), 1u);
}

TEST(Portfolio, MultiStartAtLeastAsGoodAsSingle) {
  const Instance inst = tinyTestInstance(107, 8, 96, 2, 0.75);
  const Objective obj(inst.exchangeCount());
  const PortfolioResult multi = solvePortfolio(inst, obj, fastPortfolio(6));
  PortfolioConfig single = fastPortfolio(1);
  const PortfolioResult one = solvePortfolio(inst, obj, single);
  // Seed 1 of the portfolio equals the single run, so multi can only match
  // or beat it.
  EXPECT_LE(multi.best.bestScore.bottleneckUtil,
            one.best.bestScore.bottleneckUtil + 1e-9);
}

/// Destroy operator that fans work out via parallelFor on the shared global
/// pool every call — the pattern that deadlocked the old portfolio (searches
/// occupied every pool worker while the caller blocked on their futures, so
/// the nested parallelFor tasks could never be scheduled).
class PoolTouchingDestroy final : public DestroyOperator {
 public:
  std::string_view name() const noexcept override { return "pool-touching"; }
  void destroyInto(Assignment& assignment, std::size_t quota, Rng& rng,
                   Ruin& out) override {
    // 4096 > the default grain size, so this genuinely dispatches to the pool.
    std::atomic<std::size_t> counter{0};
    parallelFor(4096, [&counter](std::size_t) {
      counter.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(counter.load(), 4096u);
    const std::size_t n = assignment.instance().shardCount();
    std::size_t guard = 0;
    while (out.size() < quota && guard++ < quota * 8 + 16) {
      const auto s = static_cast<ShardId>(rng.below(n));
      if (assignment.isAssigned(s)) out.take(assignment, s);
    }
  }
};

TEST(Portfolio, PoolUsingSearchesCompleteUnderWatchdog) {
  const Instance inst = tinyTestInstance(111, 6, 48, 2, 0.6);
  const Objective obj(inst.exchangeCount());
  PortfolioConfig config;
  // More searches than pool workers: under the old pool-backed portfolio
  // this saturated the pool and deadlocked on the first nested parallelFor.
  config.searches = globalPool().threadCount() + 2;
  config.baseSeed = 7;
  config.lns.maxIterations = 50;
  config.lns.timeBudgetSeconds = 20.0;
  config.configure = [](LnsSolver& solver) {
    solver.addDestroy(std::make_unique<PoolTouchingDestroy>());
  };

  std::packaged_task<PortfolioResult()> task(
      [&] { return solvePortfolio(inst, obj, config); });
  std::future<PortfolioResult> done = task.get_future();
  std::thread runner(std::move(task));
  // Watchdog: a deadlock must fail the test, not hang the suite.
  if (done.wait_for(std::chrono::seconds(60)) != std::future_status::ready) {
    runner.detach();
    FAIL() << "portfolio deadlocked: searches blocked on the shared pool";
  }
  runner.join();
  const PortfolioResult result = done.get();
  EXPECT_EQ(result.perSearchBottleneck.size(), config.searches);
}

TEST(Portfolio, ConfigureHookRunsOncePerSearch) {
  const Instance inst = tinyTestInstance(113, 5, 30, 1, 0.6);
  const Objective obj(inst.exchangeCount());
  PortfolioConfig config = fastPortfolio(4);
  config.lns.maxIterations = 50;
  auto calls = std::make_shared<std::atomic<std::size_t>>(0);
  config.configure = [calls](LnsSolver&) { calls->fetch_add(1); };
  const PortfolioResult result = solvePortfolio(inst, obj, config);
  EXPECT_EQ(calls->load(), 4u);
  EXPECT_EQ(result.perSearchBottleneck.size(), 4u);
}

}  // namespace
}  // namespace resex
