#include "lns/repair.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/test_instances.hpp"
#include "workload/synthetic.hpp"

namespace resex {
namespace {

using testing::placedInstance;
using testing::uniformInstance;

TEST(PlacementCost, InfiniteWhenInfeasible) {
  const Instance inst = uniformInstance(2, 0, {60.0, 70.0});
  Assignment a(inst);
  const Objective obj(0);
  a.remove(0);
  EXPECT_TRUE(std::isinf(placementCost(a, 0, 1, obj)));  // 70 + 60 > 100
  EXPECT_LT(placementCost(a, 0, 0, obj), 1.0);
}

TEST(PlacementCost, PenalizesOpeningNeededVacancy) {
  // 2 regular + 1 exchange, k = 1: with exactly one vacant machine left,
  // placing onto it must carry the heavy deficit penalty.
  const Instance inst = placedInstance(2, 1, {10.0, 10.0, 10.0}, {0, 1, 0});
  Assignment a(inst);
  const Objective obj(inst.exchangeCount());
  a.remove(2);  // machine 0 stays occupied; only the exchange machine is vacant
  ASSERT_EQ(a.vacantCount(), obj.vacancyTarget());
  const double ontoOccupied = placementCost(a, 2, 1, obj);
  const double ontoVacant = placementCost(a, 2, 2, obj);
  EXPECT_GT(ontoVacant, ontoOccupied + 3.0);
}

TEST(PlacementCost, MildBiasWhenSpareVacanciesExist) {
  // Two exchange machines, k = 2... with three vacant machines (one
  // drained regular), opening one costs only the mild bias.
  const Instance inst = placedInstance(3, 2, {10.0, 10.0}, {0, 0});
  Assignment a(inst);
  const Objective obj(inst.exchangeCount());
  a.remove(0);
  // Vacant: machines 1, 2, 3, 4 -> 4 > target 2.
  const double ontoVacant = placementCost(a, 0, 3, obj);
  const double ontoOccupied = placementCost(a, 0, 0, obj);
  EXPECT_LT(ontoVacant, 1.0);
  EXPECT_GT(ontoVacant, ontoOccupied);  // still biased away
}

TEST(GreedyRepair, PlacesAllWhenRoomExists) {
  const Instance inst = tinyTestInstance(23, 6, 36, 2, 0.55);
  Assignment a(inst);
  const Objective obj(inst.exchangeCount());
  Rng rng(1);
  std::vector<ShardId> removed;
  for (ShardId s = 0; s < 10; ++s) {
    a.remove(s);
    removed.push_back(s);
  }
  GreedyRepair repair;
  EXPECT_TRUE(repair.repair(a, removed, obj, rng));
  EXPECT_EQ(a.unassignedCount(), 0u);
  EXPECT_TRUE(a.validate(/*requireCapacity=*/true).empty());
}

TEST(GreedyRepair, FailsWhenNothingFits) {
  const Instance inst = placedInstance(1, 0, {60.0, 50.0}, {0, 0}, 100.0);
  // Note: initial state is over capacity (110 on one machine); remove
  // both, then only one can go back... actually both fit one at a time
  // but not together.
  Assignment a(inst);
  const Objective obj(0);
  a.remove(0);
  a.remove(1);
  GreedyRepair repair;
  Rng rng(2);
  const std::vector<ShardId> both{0, 1};
  EXPECT_FALSE(repair.repair(a, both, obj, rng));
}

TEST(GreedyRepair, PrefersLowUtilizationMachines) {
  // Machine 0 loaded to 80, machine 1 to 10: the shard must go to 1.
  const Instance inst = placedInstance(2, 0, {80.0, 10.0, 5.0}, {0, 1, 1});
  Assignment a(inst);
  const Objective obj(0);
  a.remove(2);
  GreedyRepair repair;
  Rng rng(3);
  const std::vector<ShardId> one{2};
  ASSERT_TRUE(repair.repair(a, one, obj, rng));
  EXPECT_EQ(a.machineOf(2), 1u);
}

TEST(GreedyRepair, NoiseVariantStillFeasible) {
  const Instance inst = tinyTestInstance(29, 6, 36, 2, 0.6);
  Assignment a(inst);
  const Objective obj(inst.exchangeCount());
  Rng rng(5);
  std::vector<ShardId> removed;
  for (ShardId s = 0; s < 12; ++s) {
    a.remove(s);
    removed.push_back(s);
  }
  GreedyRepair repair(0.3);
  EXPECT_TRUE(repair.repair(a, removed, obj, rng));
  EXPECT_TRUE(a.validate(/*requireCapacity=*/true).empty());
}

TEST(RegretRepair, PlacesAllAndStaysFeasible) {
  const Instance inst = tinyTestInstance(31, 6, 36, 2, 0.6);
  Assignment a(inst);
  const Objective obj(inst.exchangeCount());
  Rng rng(7);
  std::vector<ShardId> removed;
  for (ShardId s = 5; s < 20; ++s) {
    a.remove(s);
    removed.push_back(s);
  }
  RegretRepair repair(2);
  EXPECT_TRUE(repair.repair(a, removed, obj, rng));
  EXPECT_EQ(a.unassignedCount(), 0u);
  EXPECT_TRUE(a.validate(/*requireCapacity=*/true).empty());
}

TEST(RegretRepair, HandlesForcedPlacementFirst) {
  // Shard 0 (60) fits only machine 2 (empty); shards 1-2 (20) fit
  // anywhere. Regret must place the forced shard before greedily filling
  // machine 2 with the small ones.
  const Instance inst =
      placedInstance(3, 0, {60.0, 20.0, 20.0, 45.0, 45.0}, {0, 0, 0, 1, 0});
  Assignment a(inst);
  const Objective obj(0);
  Rng rng(9);
  // State: m0 holds 60+20+20+45 = 145 (over), m1 holds 45, m2 empty.
  // Remove 0, 1, 2 -> m0 holds 45, m1 45, m2 0.
  a.remove(0);
  a.remove(1);
  a.remove(2);
  const std::vector<ShardId> removed{1, 2, 0};  // deliberately bad order
  RegretRepair repair(2);
  ASSERT_TRUE(repair.repair(a, removed, obj, rng));
  EXPECT_EQ(a.machineOf(0), 2u);
  EXPECT_TRUE(a.validate(/*requireCapacity=*/true).empty());
}

TEST(RegretRepair, Regret3AlsoWorks) {
  const Instance inst = tinyTestInstance(37, 6, 36, 2, 0.55);
  Assignment a(inst);
  const Objective obj(inst.exchangeCount());
  Rng rng(11);
  std::vector<ShardId> removed;
  for (ShardId s = 0; s < 8; ++s) {
    a.remove(s);
    removed.push_back(s);
  }
  RegretRepair repair(3);
  EXPECT_TRUE(repair.repair(a, removed, obj, rng));
  EXPECT_TRUE(a.validate(/*requireCapacity=*/true).empty());
}

TEST(RegretRepair, FailsCleanlyWhenImpossible) {
  const Instance inst = placedInstance(1, 0, {60.0, 50.0}, {0, 0});
  Assignment a(inst);
  const Objective obj(0);
  a.remove(0);
  a.remove(1);
  RegretRepair repair(2);
  Rng rng(13);
  const std::vector<ShardId> both{0, 1};
  EXPECT_FALSE(repair.repair(a, both, obj, rng));
}

TEST(Repair, EmptyShardListSucceedsTrivially) {
  const Instance inst = uniformInstance(2, 0, {10.0});
  Assignment a(inst);
  const Objective obj(0);
  Rng rng(15);
  GreedyRepair greedy;
  RegretRepair regret(2);
  EXPECT_TRUE(greedy.repair(a, {}, obj, rng));
  EXPECT_TRUE(regret.repair(a, {}, obj, rng));
}

}  // namespace
}  // namespace resex
