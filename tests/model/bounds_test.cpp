#include "model/bounds.hpp"

#include <gtest/gtest.h>

#include "cluster/assignment.hpp"
#include "common/test_instances.hpp"
#include "workload/synthetic.hpp"

namespace resex {
namespace {

using testing::uniformInstance;

TEST(Bounds, VolumeBoundWithoutExchangeIsDemandOverCapacity) {
  // 2 machines cap 100 each, shards totalling 120: bound = 0.6.
  const Instance inst = uniformInstance(2, 0, {60.0, 60.0});
  EXPECT_NEAR(volumeLowerBound(inst), 0.6, 1e-12);
}

TEST(Bounds, VolumeBoundAccountsForVacancyRequirement) {
  // 3 machines cap 100, k = 1 vacancy required: usable capacity 200.
  const Instance inst = uniformInstance(2, 1, {60.0, 60.0});
  EXPECT_NEAR(volumeLowerBound(inst), 120.0 / 200.0, 1e-12);
}

TEST(Bounds, VolumeBoundPicksSmallestMachinesToVacate) {
  // Machines of capacity 100, 100 and a big 400 exchange machine, k = 1:
  // the optimistic choice vacates a 100 machine, leaving 500.
  std::vector<Machine> machines(3);
  machines[0] = {0, ResourceVector{100.0}, false, 0};
  machines[1] = {1, ResourceVector{400.0}, false, 1};
  machines[2] = {2, ResourceVector{100.0}, true, 0};
  std::vector<Shard> shards(1);
  shards[0] = {0, ResourceVector{100.0}, 1.0};
  const Instance inst(1, std::move(machines), std::move(shards), {0}, 1,
                      ResourceVector{1.0});
  EXPECT_NEAR(volumeLowerBound(inst), 100.0 / 500.0, 1e-12);
}

TEST(Bounds, LargestShardBoundBinds) {
  // One 80-shard on 100-machines: no solution can be below 0.8.
  const Instance inst = uniformInstance(3, 0, {80.0, 5.0, 5.0});
  EXPECT_NEAR(largestShardLowerBound(inst), 0.8, 1e-12);
}

TEST(Bounds, LargestShardBoundUsesBiggestMachine) {
  std::vector<Machine> machines(2);
  machines[0] = {0, ResourceVector{100.0}, false, 0};
  machines[1] = {1, ResourceVector{200.0}, false, 1};
  std::vector<Shard> shards(1);
  shards[0] = {0, ResourceVector{80.0}, 1.0};
  const Instance inst(1, std::move(machines), std::move(shards), {0}, 0,
                      ResourceVector{1.0});
  EXPECT_NEAR(largestShardLowerBound(inst), 0.4, 1e-12);  // 80/200
}

TEST(Bounds, CombinedBoundIsMaxOfParts) {
  const Instance inst = uniformInstance(3, 0, {80.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(bottleneckLowerBound(inst),
                   std::max(volumeLowerBound(inst), largestShardLowerBound(inst)));
}

TEST(Bounds, BoundNeverExceedsAnyFeasibleSolution) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 13ULL, 29ULL}) {
    const Instance inst = tinyTestInstance(seed, 6, 30, 2, 0.6);
    Assignment a(inst);
    EXPECT_LE(bottleneckLowerBound(inst), a.bottleneckUtilization() + 1e-9)
        << "seed " << seed;
  }
}

TEST(Bounds, MultiDimBoundTakesWorstDimension) {
  // Demands skewed into dim 1: its volume dominates.
  std::vector<Machine> machines(2);
  machines[0] = {0, ResourceVector{100.0, 100.0}, false, 0};
  machines[1] = {1, ResourceVector{100.0, 100.0}, false, 0};
  std::vector<Shard> shards(2);
  shards[0] = {0, ResourceVector{10.0, 90.0}, 1.0};
  shards[1] = {1, ResourceVector{10.0, 90.0}, 1.0};
  const Instance inst(2, std::move(machines), std::move(shards), {0, 1}, 0,
                      ResourceVector{1.0, 1.0});
  EXPECT_NEAR(volumeLowerBound(inst), 0.9, 1e-12);
}

}  // namespace
}  // namespace resex
