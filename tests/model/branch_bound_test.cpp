#include "model/branch_bound.hpp"

#include <gtest/gtest.h>

#include "cluster/assignment.hpp"
#include "common/test_instances.hpp"
#include "model/bounds.hpp"
#include "model/ip_model.hpp"
#include "workload/synthetic.hpp"

namespace resex {
namespace {

using testing::placedInstance;
using testing::uniformInstance;

TEST(BranchBound, TrivialTwoShardsTwoMachines) {
  const Instance inst = placedInstance(2, 0, {40.0, 40.0}, {0, 0});
  const BranchBoundResult r = BranchBoundSolver().solve(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.optimal);
  // One shard per machine: bottleneck 0.4.
  EXPECT_NEAR(r.bottleneck, 0.4, 1e-9);
}

TEST(BranchBound, PerfectSplitFound) {
  // Shards 50,30,20 / 40,35,25 split across two machines as 100 vs 100...
  // total 200 over 2 machines of 100: optimum is 1.0 only if packable;
  // use smaller sizes so the optimum is clean: {30,20,10,25,15,20} -> 120
  // over 2 machines: optimum 0.6 iff a 60/60 split exists (30+20+10 / ...).
  const Instance inst = placedInstance(2, 0, {30.0, 20.0, 10.0, 25.0, 15.0, 20.0},
                                       {0, 0, 0, 1, 1, 1});
  const BranchBoundResult r = BranchBoundSolver().solve(inst);
  ASSERT_TRUE(r.optimal);
  EXPECT_NEAR(r.bottleneck, 0.6, 1e-9);
}

TEST(BranchBound, RespectsVacancyConstraint) {
  // 2 regular + 1 exchange machine, k=1. Two 60-shards cannot share a
  // machine (120 > 100), so with the vacancy requirement the optimum uses
  // exactly two of the three machines: bottleneck 0.6.
  const Instance inst = placedInstance(2, 1, {60.0, 60.0}, {0, 1});
  const BranchBoundResult r = BranchBoundSolver().solve(inst);
  ASSERT_TRUE(r.optimal);
  EXPECT_NEAR(r.bottleneck, 0.6, 1e-9);
  // Verify the mapping leaves >= 1 machine vacant via the IP model.
  const IpModel model(inst);
  EXPECT_TRUE(model.checkMapping(r.mapping).empty());
}

TEST(BranchBound, VacancyForcesWorseBalance) {
  // Without vacancy the three 40-shards would spread 40/40/40 (0.4);
  // with k=1 two must share: 80 (0.8).
  const Instance withVacancy = placedInstance(2, 1, {40.0, 40.0, 40.0}, {0, 0, 1});
  const BranchBoundResult constrained = BranchBoundSolver().solve(withVacancy);
  ASSERT_TRUE(constrained.optimal);
  EXPECT_NEAR(constrained.bottleneck, 0.8, 1e-9);

  const Instance noVacancy = placedInstance(3, 0, {40.0, 40.0, 40.0}, {0, 0, 1});
  const BranchBoundResult free = BranchBoundSolver().solve(noVacancy);
  ASSERT_TRUE(free.optimal);
  EXPECT_NEAR(free.bottleneck, 0.4, 1e-9);
}

TEST(BranchBound, InfeasibleWhenShardExceedsEveryMachine) {
  const Instance inst = placedInstance(2, 0, {150.0}, {0}, 100.0);
  // The initial placement itself is over capacity, but the instance is
  // well-formed; the solver must simply find no feasible assignment.
  const BranchBoundResult r = BranchBoundSolver().solve(inst);
  EXPECT_FALSE(r.feasible);
}

TEST(BranchBound, OptimalAtLeastLowerBound) {
  for (const std::uint64_t seed : {1ULL, 3ULL, 9ULL}) {
    const Instance inst = tinyTestInstance(seed, 4, 10, 1, 0.6);
    const BranchBoundResult r = BranchBoundSolver().solve(inst);
    ASSERT_TRUE(r.optimal) << "seed " << seed;
    EXPECT_GE(r.bottleneck, bottleneckLowerBound(inst) - 1e-9);
  }
}

TEST(BranchBound, OptimalBeatsOrMatchesInitialPlacement) {
  for (const std::uint64_t seed : {2ULL, 5ULL, 8ULL}) {
    const Instance inst = tinyTestInstance(seed, 4, 12, 1, 0.55);
    const BranchBoundResult r = BranchBoundSolver().solve(inst);
    ASSERT_TRUE(r.optimal);
    Assignment initial(inst);
    EXPECT_LE(r.bottleneck, initial.bottleneckUtilization() + 1e-9);
  }
}

TEST(BranchBound, ResultMappingIsCapacityFeasible) {
  const Instance inst = tinyTestInstance(4, 4, 12, 1, 0.6);
  const BranchBoundResult r = BranchBoundSolver().solve(inst);
  ASSERT_TRUE(r.feasible);
  Assignment a(inst, r.mapping);
  EXPECT_TRUE(a.validate(/*requireCapacity=*/true).empty());
  EXPECT_NEAR(a.bottleneckUtilization(), r.bottleneck, 1e-9);
}

TEST(BranchBound, NodeLimitReportsNonOptimal) {
  BranchBoundConfig config;
  config.nodeLimit = 3;
  const Instance inst = tinyTestInstance(6, 5, 14, 1, 0.6);
  const BranchBoundResult r = BranchBoundSolver(config).solve(inst);
  EXPECT_FALSE(r.optimal);
  EXPECT_LE(r.nodesVisited, 4u);
}

TEST(BranchBound, ExhaustiveMatchesBruteForceOnMicroInstance) {
  // 4 shards, 3 machines, k = 0: brute force over 3^4 = 81 assignments.
  const std::vector<double> sizes{35.0, 25.0, 45.0, 20.0};
  const Instance inst = placedInstance(3, 0, sizes, {0, 0, 1, 2});
  double bruteBest = 1e18;
  for (int code = 0; code < 81; ++code) {
    int c = code;
    std::vector<MachineId> mapping(4);
    for (auto& m : mapping) {
      m = static_cast<MachineId>(c % 3);
      c /= 3;
    }
    Assignment a(inst, mapping);
    if (!a.validate(true).empty()) continue;
    bruteBest = std::min(bruteBest, a.bottleneckUtilization());
  }
  const BranchBoundResult r = BranchBoundSolver().solve(inst);
  ASSERT_TRUE(r.optimal);
  EXPECT_NEAR(r.bottleneck, bruteBest, 1e-9);
}

}  // namespace
}  // namespace resex
