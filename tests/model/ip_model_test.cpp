#include "model/ip_model.hpp"

#include <gtest/gtest.h>

#include "common/test_instances.hpp"
#include "workload/synthetic.hpp"

namespace resex {
namespace {

using testing::placedInstance;
using testing::uniformInstance;

TEST(IpModel, VariableIndexingIsDense) {
  const Instance inst = uniformInstance(3, 1, {10.0, 20.0});
  const IpModel model(inst);
  // 2 shards * 4 machines x-vars, 4 y-vars, 1 lambda.
  EXPECT_EQ(model.variableCount(), 2u * 4u + 4u + 1u);
  EXPECT_EQ(model.xVar(0, 0), 0u);
  EXPECT_EQ(model.xVar(1, 3), 7u);
  EXPECT_EQ(model.yVar(0), 8u);
  EXPECT_EQ(model.lambdaVar(), 12u);
  EXPECT_TRUE(model.isBinary(model.xVar(1, 2)));
  EXPECT_TRUE(model.isBinary(model.yVar(3)));
  EXPECT_FALSE(model.isBinary(model.lambdaVar()));
}

TEST(IpModel, ConstraintCountMatchesFormulation) {
  const Instance inst = uniformInstance(3, 1, {10.0, 20.0});
  const IpModel model(inst);
  // n assign + m*d balance + m*d capacity + m link + 1 compensation.
  const std::size_t expected = 2 + 4 * 2 + 4 * 2 + 4 + 1;
  EXPECT_EQ(model.constraints().size(), expected);
}

TEST(IpModel, InitialPlacementSatisfiesModel) {
  const Instance inst = uniformInstance(3, 1, {10.0, 20.0, 30.0});
  const IpModel model(inst);
  EXPECT_TRUE(model.checkMapping(inst.initialAssignment()).empty());
}

TEST(IpModel, OverCapacityMappingViolatesCapacity) {
  const Instance inst = uniformInstance(2, 0, {60.0, 70.0});
  const IpModel model(inst);
  const auto violations = model.checkMapping({0, 0});
  bool foundCapacity = false;
  for (const auto& v : violations)
    if (v.rfind("capacity_", 0) == 0) foundCapacity = true;
  EXPECT_TRUE(foundCapacity);
}

TEST(IpModel, CompensationViolatedWhenAllMachinesUsed) {
  // 3 machines, 1 exchange: using all three leaves 0 vacant < 1.
  const Instance inst = placedInstance(2, 1, {10.0, 10.0, 10.0}, {0, 1, 0});
  const IpModel model(inst);
  const auto violations = model.checkMapping({0, 1, 2});
  bool foundCompensation = false;
  for (const auto& v : violations)
    if (v == "compensation") foundCompensation = true;
  EXPECT_TRUE(foundCompensation);
}

TEST(IpModel, CompensationSatisfiedByDrainingARegularMachine) {
  const Instance inst = placedInstance(2, 1, {10.0, 10.0, 10.0}, {0, 1, 0});
  const IpModel model(inst);
  // Everything onto machines 0 and 2 (the exchange machine) leaves
  // machine 1 vacant: compensation holds.
  EXPECT_TRUE(model.checkMapping({0, 2, 0}).empty());
}

TEST(IpModel, ImpliedLambdaMatchesBottleneck) {
  const Instance inst = uniformInstance(2, 0, {40.0, 30.0});
  const IpModel model(inst);
  EXPECT_DOUBLE_EQ(model.impliedLambda(inst.initialAssignment()), 0.4);
}

TEST(IpModel, LpFormatContainsAllSections) {
  const Instance inst = uniformInstance(2, 1, {10.0});
  const IpModel model(inst);
  const std::string lp = model.toLpFormat();
  EXPECT_NE(lp.find("Minimize"), std::string::npos);
  EXPECT_NE(lp.find("Subject To"), std::string::npos);
  EXPECT_NE(lp.find("Binaries"), std::string::npos);
  EXPECT_NE(lp.find("compensation"), std::string::npos);
  EXPECT_NE(lp.find("x_0_0"), std::string::npos);
  EXPECT_NE(lp.find("y_2"), std::string::npos);
  EXPECT_NE(lp.find("End"), std::string::npos);
}

TEST(IpModel, SyntheticInstanceInitialMappingIsModelFeasible) {
  const Instance inst = tinyTestInstance(31, 5, 20, 1, 0.5);
  const IpModel model(inst);
  EXPECT_TRUE(model.checkMapping(inst.initialAssignment()).empty());
}

}  // namespace
}  // namespace resex
