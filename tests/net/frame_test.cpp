// Frame codec under friendly and hostile input: round trips must be
// bit-exact (scores travel as IEEE-754 bit patterns) and no byte stream —
// truncated, oversized, overclaiming, or random — may ever crash,
// over-read, or allocate from an unvalidated length. Run under
// ASan/UBSan in CI (label `net`), where any over-read is fatal.

#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

namespace resex::net {
namespace {

QueryRequest sampleQuery() {
  QueryRequest query;
  query.tenant = 3;
  query.topK = 25;
  query.deadlineMicros = 1500;
  query.terms = {7, 0, 4096, 19};
  return query;
}

QueryResponse sampleResponse() {
  QueryResponse response;
  response.complete = true;
  response.cacheHit = true;
  response.partitionsAnswered = 3;
  response.partitionsTotal = 4;
  response.docs.push_back(ScoredDoc{41, 0.1 + 0.2});  // not exactly 0.3
  response.docs.push_back(ScoredDoc{7, -1.5e-300});
  response.docs.push_back(ScoredDoc{0, 0.0});
  return response;
}

/// Feeds `bytes` and expects exactly one frame out.
ParsedFrame feedOne(FrameReader& reader, const std::string& bytes) {
  reader.feed(bytes.data(), bytes.size());
  const auto frame = reader.next();
  EXPECT_TRUE(frame.has_value());
  return frame.value_or(ParsedFrame{});
}

/// A raw frame with an arbitrary (possibly lying) length prefix.
std::string rawFrame(std::uint32_t payloadLen, std::uint8_t type,
                     std::uint64_t requestId, const std::string& body) {
  std::string out;
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((payloadLen >> (8 * i)) & 0xff));
  out.push_back(static_cast<char>(type));
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((requestId >> (8 * i)) & 0xff));
  out += body;
  return out;
}

TEST(FrameCodec, QueryRoundTripsExactly) {
  const QueryRequest query = sampleQuery();
  std::string wire;
  encodeQueryFrame(77, query, wire);
  FrameReader reader;
  const ParsedFrame frame = feedOne(reader, wire);
  EXPECT_EQ(frame.type, FrameType::kQuery);
  EXPECT_EQ(frame.requestId, 77u);
  const auto decoded = decodeQueryBody(frame.body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->tenant, query.tenant);
  EXPECT_EQ(decoded->topK, query.topK);
  EXPECT_EQ(decoded->deadlineMicros, query.deadlineMicros);
  EXPECT_EQ(decoded->terms, query.terms);
}

TEST(FrameCodec, ResultRoundTripIsBitExact) {
  const QueryResponse response = sampleResponse();
  std::string wire;
  encodeResultFrame(0xdeadbeefcafeULL, response, wire);
  FrameReader reader;
  const ParsedFrame frame = feedOne(reader, wire);
  EXPECT_EQ(frame.type, FrameType::kResult);
  EXPECT_EQ(frame.requestId, 0xdeadbeefcafeULL);
  const auto decoded = decodeResultBody(frame.body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->complete, response.complete);
  EXPECT_EQ(decoded->cacheHit, response.cacheHit);
  EXPECT_EQ(decoded->rejected, response.rejected);
  EXPECT_EQ(decoded->cancelled, response.cancelled);
  EXPECT_EQ(decoded->partitionsAnswered, response.partitionsAnswered);
  EXPECT_EQ(decoded->partitionsTotal, response.partitionsTotal);
  ASSERT_EQ(decoded->docs.size(), response.docs.size());
  for (std::size_t i = 0; i < response.docs.size(); ++i) {
    EXPECT_EQ(decoded->docs[i].doc, response.docs[i].doc);
    // Bit comparison, not ==: distinguishes -0.0, survives NaN.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(decoded->docs[i].score),
              std::bit_cast<std::uint64_t>(response.docs[i].score));
  }
}

TEST(FrameCodec, ErrorRoundTrips) {
  std::string wire;
  encodeErrorFrame(9, ErrorCode::kBadRequest, "unknown tenant 12", wire);
  FrameReader reader;
  const ParsedFrame frame = feedOne(reader, wire);
  EXPECT_EQ(frame.type, FrameType::kError);
  const auto decoded = decodeErrorBody(frame.body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->code, ErrorCode::kBadRequest);
  EXPECT_EQ(decoded->message, "unknown tenant 12");
}

TEST(FrameReaderTest, ByteAtATimeFeedRecoversEveryFrame) {
  std::string wire;
  encodeQueryFrame(1, sampleQuery(), wire);
  encodeResultFrame(2, sampleResponse(), wire);
  encodeErrorFrame(3, ErrorCode::kShuttingDown, "bye", wire);
  FrameReader reader;
  std::vector<std::uint64_t> ids;
  for (const char byte : wire) {
    reader.feed(&byte, 1);
    while (const auto frame = reader.next()) ids.push_back(frame->requestId);
  }
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_FALSE(reader.poisoned());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameReaderTest, TruncationAtEveryBoundaryNeverYieldsAFrame) {
  std::string wire;
  encodeQueryFrame(42, sampleQuery(), wire);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    FrameReader reader;
    reader.feed(wire.data(), cut);
    EXPECT_FALSE(reader.next().has_value()) << "cut at " << cut;
    EXPECT_FALSE(reader.poisoned()) << "cut at " << cut;
    // The remainder completes the frame — truncation was starvation, not
    // corruption.
    reader.feed(wire.data() + cut, wire.size() - cut);
    EXPECT_TRUE(reader.next().has_value()) << "cut at " << cut;
  }
}

TEST(FrameReaderTest, LengthNearMaxPoisonsWithoutAllocating) {
  for (const std::uint32_t evil :
       {std::numeric_limits<std::uint32_t>::max(),
        std::numeric_limits<std::uint32_t>::max() - 1, (1u << 20) + 10u}) {
    FrameReader reader;  // default cap: 1 MiB payload
    const std::string wire = rawFrame(evil, 0x01, 1, "xxxx");
    reader.feed(wire.data(), wire.size());
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_TRUE(reader.poisoned()) << "length " << evil;
    // Poisoned is terminal: even a valid follow-up frame is refused.
    std::string good;
    encodeQueryFrame(2, sampleQuery(), good);
    reader.feed(good.data(), good.size());
    EXPECT_FALSE(reader.next().has_value());
  }
}

TEST(FrameReaderTest, UndersizedLengthPoisons) {
  // A payload below 9 bytes cannot even hold type + requestId.
  for (const std::uint32_t evil : {0u, 1u, 8u}) {
    FrameReader reader;
    const std::string wire = rawFrame(evil, 0x01, 1, std::string(16, 'x'));
    reader.feed(wire.data(), wire.size());
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_TRUE(reader.poisoned()) << "length " << evil;
  }
}

TEST(FrameDecode, TermCountOverclaimIsRejected) {
  std::string wire;
  encodeQueryFrame(5, sampleQuery(), wire);
  FrameReader reader;
  ParsedFrame frame = feedOne(reader, wire);
  // The term-count field lives 12 bytes into the body; inflate it so it
  // claims more terms than the payload carries.
  std::vector<std::uint8_t> body(frame.body.begin(), frame.body.end());
  body[12] = 0xff;
  body[13] = 0xff;
  EXPECT_FALSE(decodeQueryBody(body).has_value());
}

TEST(FrameDecode, DocCountOverclaimIsRejected) {
  std::string wire;
  encodeResultFrame(5, sampleResponse(), wire);
  FrameReader reader;
  ParsedFrame frame = feedOne(reader, wire);
  std::vector<std::uint8_t> body(frame.body.begin(), frame.body.end());
  body[9] = 0xff;  // docCount lives 9 bytes in (flags + 2x u32)
  body[10] = 0xff;
  EXPECT_FALSE(decodeResultBody(body).has_value());
}

TEST(FrameDecode, TrailingBytesAreRejected) {
  std::string query, result;
  encodeQueryFrame(5, sampleQuery(), query);
  encodeResultFrame(5, sampleResponse(), result);
  for (const std::string& wire : {query, result}) {
    FrameReader reader;
    const ParsedFrame frame = feedOne(reader, wire);
    std::vector<std::uint8_t> body(frame.body.begin(), frame.body.end());
    body.push_back(0x00);
    if (frame.type == FrameType::kQuery)
      EXPECT_FALSE(decodeQueryBody(body).has_value());
    else
      EXPECT_FALSE(decodeResultBody(body).has_value());
  }
}

TEST(FrameDecode, TermLimitIsEnforced) {
  QueryRequest query;
  query.terms.assign(17, 1);
  std::string wire;
  encodeQueryFrame(1, query, wire);
  FrameReader reader;
  const ParsedFrame frame = feedOne(reader, wire);
  FrameLimits tight;
  tight.maxTerms = 16;
  EXPECT_FALSE(decodeQueryBody(frame.body, tight).has_value());
  EXPECT_TRUE(decodeQueryBody(frame.body).has_value());
}

TEST(FrameEncode, QueryTermCountClampsToU16) {
  // >65535 terms cannot be represented in the u16 wire count. The
  // encoder must clamp rather than write a count that disagrees with the
  // payload — the frame stays decodable (count == terms present), just
  // truncated.
  QueryRequest query;
  query.terms.assign(70000, 9);
  std::string wire;
  encodeQueryFrame(42, query, wire);
  FrameLimits big;
  big.maxPayloadBytes = 8u << 20;
  big.maxTerms = 200000;
  FrameReader reader(big);
  const ParsedFrame frame = feedOne(reader, wire);
  const auto decoded = decodeQueryBody(frame.body, big);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->terms.size(), 65535u);
  EXPECT_FALSE(reader.next().has_value());  // nothing trailing
}

TEST(FrameEncode, ResultDocCountClampsToU16) {
  QueryResponse response;
  response.complete = true;
  response.docs.assign(70000, ScoredDoc{3, 1.0});
  std::string wire;
  encodeResultFrame(7, response, wire);
  FrameReader reader;
  const ParsedFrame frame = feedOne(reader, wire);
  const auto decoded = decodeResultBody(frame.body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->docs.size(), 65535u);
}

TEST(FrameDecode, EmptyBodiesAreRejected) {
  EXPECT_FALSE(decodeQueryBody({}).has_value());
  EXPECT_FALSE(decodeResultBody({}).has_value());
  EXPECT_FALSE(decodeErrorBody({}).has_value());
}

TEST(FrameFuzz, RandomGarbageNeverCrashes) {
  // Pure noise: every frame the reader does yield must then survive every
  // decoder without crashing (ASan/UBSan verify the "without over-reading"
  // half). Poisoning is the expected common outcome.
  std::mt19937_64 rng(0xfeedULL);
  for (int round = 0; round < 200; ++round) {
    FrameReader reader;
    std::string chunk(1 + rng() % 512, '\0');
    for (int feeds = 0; feeds < 8 && !reader.poisoned(); ++feeds) {
      for (char& byte : chunk) byte = static_cast<char>(rng());
      reader.feed(chunk.data(), chunk.size());
      while (const auto frame = reader.next()) {
        decodeQueryBody(frame->body);
        decodeResultBody(frame->body);
        decodeErrorBody(frame->body);
      }
    }
  }
}

TEST(FrameFuzz, BitFlippedValidStreamsNeverCrash) {
  // Start from a valid multi-frame stream and flip one byte at a time:
  // closer to the codec's parse surface than pure noise.
  std::string wire;
  encodeQueryFrame(1, sampleQuery(), wire);
  encodeResultFrame(2, sampleResponse(), wire);
  encodeErrorFrame(3, ErrorCode::kBadFrame, "x", wire);
  std::mt19937_64 rng(0x5eedULL);
  for (int round = 0; round < 500; ++round) {
    std::string mutated = wire;
    mutated[rng() % mutated.size()] = static_cast<char>(rng());
    FrameReader reader;
    reader.feed(mutated.data(), mutated.size());
    while (const auto frame = reader.next()) {
      decodeQueryBody(frame->body);
      decodeResultBody(frame->body);
      decodeErrorBody(frame->body);
    }
  }
}

TEST(FrameFuzz, RandomSplitPointsPreserveFrames) {
  // A valid stream must decode identically no matter how the transport
  // fragments it.
  std::string wire;
  for (std::uint64_t id = 1; id <= 20; ++id)
    encodeQueryFrame(id, sampleQuery(), wire);
  std::mt19937_64 rng(0xabcULL);
  for (int round = 0; round < 50; ++round) {
    FrameReader reader;
    std::uint64_t seen = 0;
    std::size_t pos = 0;
    while (pos < wire.size()) {
      const std::size_t n =
          std::min(wire.size() - pos, static_cast<std::size_t>(1 + rng() % 64));
      reader.feed(wire.data() + pos, n);
      pos += n;
      while (const auto frame = reader.next()) {
        EXPECT_EQ(frame->requestId, ++seen);
        EXPECT_TRUE(decodeQueryBody(frame->body).has_value());
      }
    }
    EXPECT_EQ(seen, 20u);
  }
}

}  // namespace
}  // namespace resex::net
