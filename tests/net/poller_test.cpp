// Poller backends (epoll and forced-poll) must agree on observable
// behavior: level-triggered readiness, interest updates, and cross-thread
// wake delivery.

#include "net/poller.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <thread>
#include <vector>

namespace resex::net {
namespace {

struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    ::close(fds[0]);
    ::close(fds[1]);
  }
};

bool sawFd(const std::vector<PollEvent>& events, int fd, std::uint32_t mask) {
  for (const PollEvent& event : events)
    if (event.fd == fd && (event.events & mask)) return true;
  return false;
}

class PollerBackends : public ::testing::TestWithParam<bool> {};

TEST_P(PollerBackends, ReportsReadableWhenDataArrives) {
  Poller poller(/*forcePollBackend=*/GetParam());
  if (GetParam()) {
    EXPECT_FALSE(poller.usingEpoll());
  }
  Pipe pipe;
  poller.add(pipe.fds[0], kReadable);
  std::vector<PollEvent> events;
  poller.wait(events, /*timeoutMs=*/0);
  EXPECT_FALSE(sawFd(events, pipe.fds[0], kReadable));
  ASSERT_EQ(::write(pipe.fds[1], "x", 1), 1);
  poller.wait(events, /*timeoutMs=*/1000);
  EXPECT_TRUE(sawFd(events, pipe.fds[0], kReadable));
  // Level-triggered: unconsumed data stays ready.
  poller.wait(events, /*timeoutMs=*/1000);
  EXPECT_TRUE(sawFd(events, pipe.fds[0], kReadable));
}

TEST_P(PollerBackends, ModAndRemoveChangeInterest) {
  Poller poller(GetParam());
  Pipe pipe;
  ASSERT_EQ(::write(pipe.fds[1], "x", 1), 1);
  poller.add(pipe.fds[0], kReadable);
  // The write end of a pipe with buffer space is immediately writable.
  poller.add(pipe.fds[1], kWritable);
  std::vector<PollEvent> events;
  poller.wait(events, 1000);
  EXPECT_TRUE(sawFd(events, pipe.fds[0], kReadable));
  EXPECT_TRUE(sawFd(events, pipe.fds[1], kWritable));

  poller.mod(pipe.fds[0], 0);  // still registered, no interest
  poller.remove(pipe.fds[1]);
  poller.wait(events, 0);
  EXPECT_FALSE(sawFd(events, pipe.fds[0], kReadable));
  EXPECT_FALSE(sawFd(events, pipe.fds[1], kWritable));

  poller.mod(pipe.fds[0], kReadable);
  poller.wait(events, 1000);
  EXPECT_TRUE(sawFd(events, pipe.fds[0], kReadable));
}

TEST_P(PollerBackends, WakeInterruptsBlockingWait) {
  Poller poller(GetParam());
  std::thread waker([&poller] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    poller.wake();
  });
  std::vector<PollEvent> events;
  poller.wait(events, /*timeoutMs=*/-1);  // would hang without the wake
  waker.join();
  EXPECT_TRUE(sawFd(events, poller.wakeFd(), kReadable));
}

TEST_P(PollerBackends, WakesCoalesceAndDrain) {
  Poller poller(GetParam());
  for (int i = 0; i < 10; ++i) poller.wake();
  std::vector<PollEvent> events;
  poller.wait(events, 100);
  EXPECT_TRUE(sawFd(events, poller.wakeFd(), kReadable));
  // wait() drains the pipe: with no new wake the next wait times out.
  poller.wait(events, 0);
  EXPECT_FALSE(sawFd(events, poller.wakeFd(), kReadable));
}

INSTANTIATE_TEST_SUITE_P(Backends, PollerBackends, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "ForcedPoll" : "Native";
                         });

}  // namespace
}  // namespace resex::net
