// net::Server end to end over real loopback sockets: pipelining,
// out-of-order completion, read-side backpressure, typed protocol-error
// handling, and survival of every kind of hostile or dying client. The
// handler here is a stub (no broker) so the transport is tested alone;
// SearchService wiring is covered by the serve suite and net_bench.

#include "net/server.hpp"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "net/client.hpp"

namespace resex::net {
namespace {

using namespace std::chrono_literals;

/// Echo-style handler: doc id = first term, score = term * 1.5.
bool echoHandler(QueryRequest&& request,
                 const std::shared_ptr<ResponseTicket>& ticket) {
  QueryResponse response;
  response.complete = true;
  response.partitionsAnswered = response.partitionsTotal = 1;
  if (!request.terms.empty())
    response.docs.push_back(
        ScoredDoc{request.terms[0], 1.5 * request.terms[0]});
  ticket->respond(std::move(response));
  return true;
}

QueryRequest queryOf(TermId term) {
  QueryRequest request;
  request.terms = {term};
  return request;
}

/// Blocking raw-socket client for hostile byte streams.
struct RawConn {
  int fd = -1;
  explicit RawConn(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  }
  ~RawConn() { close(); }
  void close() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  void sendAll(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
  }
  /// Reads until the peer closes; returns everything received.
  std::string recvUntilClosed() {
    std::string all;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n <= 0) break;
      all.append(buf, static_cast<std::size_t>(n));
    }
    return all;
  }
};

ServerConfig baseConfig() {
  ServerConfig config;
  config.port = 0;
  return config;
}

class ServerBackends : public ::testing::TestWithParam<bool> {
 protected:
  ServerConfig config() {
    ServerConfig c = baseConfig();
    c.forcePollBackend = GetParam();
    return c;
  }
};

TEST_P(ServerBackends, AnswersPipelinedRequestsByRequestId) {
  Server server(config(), echoHandler);
  server.start();
  Client client("127.0.0.1", server.port());
  client.connect();
  constexpr std::uint64_t kCount = 200;
  for (TermId t = 1; t <= kCount; ++t) client.send(queryOf(t));
  std::vector<Reply> replies;
  std::uint64_t seen = 0;
  while (seen < kCount) {
    ASSERT_TRUE(client.wait(replies, 5000));
    for (const Reply& reply : replies) {
      ASSERT_EQ(reply.type, FrameType::kResult);
      ASSERT_EQ(reply.response.docs.size(), 1u);
      // requestId i carried term i (send order), so the echo proves the
      // response was matched to the right request.
      EXPECT_EQ(reply.response.docs[0].doc, reply.requestId);
      ++seen;
    }
    replies.clear();
  }
  server.stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.framesReceived, kCount);
  EXPECT_EQ(stats.responsesSent, kCount);
  EXPECT_EQ(stats.protocolErrors, 0u);
}

TEST_P(ServerBackends, DeliversResponsesCompletedOutOfOrder) {
  // Tickets are parked and completed in reverse order from a foreign
  // thread: responses must still reach the right requests.
  std::mutex mutex;
  std::vector<std::pair<std::uint32_t, std::shared_ptr<ResponseTicket>>> parked;
  std::condition_variable cv;
  Server server(config(), [&](QueryRequest&& request,
                              const std::shared_ptr<ResponseTicket>& ticket) {
    std::lock_guard lock(mutex);
    parked.emplace_back(request.terms.at(0), ticket);
    cv.notify_all();
    return true;
  });
  server.start();
  Client client("127.0.0.1", server.port());
  client.connect();
  for (TermId t = 1; t <= 8; ++t) client.send(queryOf(t));
  client.flush();
  std::thread completer([&] {
    std::unique_lock lock(mutex);
    cv.wait_for(lock, 5s, [&] { return parked.size() == 8; });
    ASSERT_EQ(parked.size(), 8u);
    for (auto it = parked.rbegin(); it != parked.rend(); ++it) {
      QueryResponse response;
      response.complete = true;
      response.docs.push_back(ScoredDoc{it->first, 2.0 * it->first});
      it->second->respond(std::move(response));
    }
  });
  std::vector<Reply> replies;
  while (replies.size() < 8) ASSERT_TRUE(client.wait(replies, 5000));
  completer.join();
  for (const Reply& reply : replies)
    EXPECT_EQ(reply.response.docs.at(0).doc, reply.requestId);
  server.stop();
}

TEST_P(ServerBackends, OversizedLengthGetsErrorFrameThenClose) {
  Server server(config(), echoHandler);
  server.start();
  RawConn conn(server.port());
  std::string evil = "\xff\xff\xff\xff";  // 4 GiB payload claim
  evil += std::string(32, 'A');
  conn.sendAll(evil);
  const std::string answer = conn.recvUntilClosed();  // close proves recv ends
  FrameReader reader;
  reader.feed(answer.data(), answer.size());
  const auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kError);
  const auto error = decodeErrorBody(frame->body);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, ErrorCode::kBadFrame);
  server.stop();
  EXPECT_GE(server.stats().protocolErrors, 1u);
}

TEST_P(ServerBackends, UnknownFrameTypeGetsErrorFrameThenClose) {
  Server server(config(), echoHandler);
  server.start();
  RawConn conn(server.port());
  // Well-formed frame, type 0x7f which the server does not serve.
  std::string body = "\x7f";
  body += std::string(8, '\0');  // requestId 0
  std::string evil;
  const std::uint32_t len = static_cast<std::uint32_t>(body.size());
  for (int i = 0; i < 4; ++i)
    evil.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  evil += body;
  conn.sendAll(evil);
  const std::string answer = conn.recvUntilClosed();
  FrameReader reader;
  reader.feed(answer.data(), answer.size());
  const auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kError);
  EXPECT_EQ(decodeErrorBody(frame->body)->code, ErrorCode::kUnknownType);
  server.stop();
}

TEST_P(ServerBackends, UndecodableQueryBodyGetsErrorFrame) {
  Server server(config(), echoHandler);
  server.start();
  RawConn conn(server.port());
  // Type kQuery but a body that is one byte of junk.
  std::string payload = "\x01";
  payload += std::string(8, '\0');
  payload += "Z";
  std::string evil;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i)
    evil.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  evil += payload;
  conn.sendAll(evil);
  const std::string answer = conn.recvUntilClosed();
  FrameReader reader;
  reader.feed(answer.data(), answer.size());
  const auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(decodeErrorBody(frame->body)->code, ErrorCode::kBadFrame);
  server.stop();
}

TEST_P(ServerBackends, MidFrameDisconnectIsSurvived) {
  Server server(config(), echoHandler);
  server.start();
  {
    std::string wire;
    encodeQueryFrame(1, queryOf(9), wire);
    RawConn conn(server.port());
    conn.sendAll(wire.substr(0, wire.size() / 2));
    std::this_thread::sleep_for(20ms);
  }  // dtor closes mid-frame
  // The server must still be perfectly healthy for the next client.
  Client client("127.0.0.1", server.port());
  client.connect();
  const QueryResponse response = client.call(queryOf(5), 5000);
  ASSERT_EQ(response.docs.size(), 1u);
  EXPECT_EQ(response.docs[0].doc, 5u);
  server.stop();
  EXPECT_EQ(server.stats().connectionsClosed, server.stats().connectionsAccepted);
}

TEST_P(ServerBackends, InterleavedPartialWritesAcrossManyConnections) {
  Server server(config(), echoHandler);
  server.start();
  // Two raw connections dribble their frames alternately, a byte or two
  // at a time; both must decode and answer correctly.
  RawConn a(server.port()), b(server.port());
  std::string wireA, wireB;
  encodeQueryFrame(1, queryOf(100), wireA);
  encodeQueryFrame(1, queryOf(200), wireB);
  std::size_t posA = 0, posB = 0;
  while (posA < wireA.size() || posB < wireB.size()) {
    if (posA < wireA.size()) {
      a.sendAll(wireA.substr(posA, 2));
      posA += 2;
    }
    if (posB < wireB.size()) {
      b.sendAll(wireB.substr(posB, 1));
      posB += 1;
    }
  }
  auto readOne = [](RawConn& conn) -> std::uint32_t {
    FrameReader reader;
    char buf[256];
    for (;;) {
      const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
      if (n <= 0) return 0;
      reader.feed(buf, static_cast<std::size_t>(n));
      if (const auto frame = reader.next())
        return decodeResultBody(frame->body)->docs.at(0).doc;
    }
  };
  EXPECT_EQ(readOne(a), 100u);
  EXPECT_EQ(readOne(b), 200u);
  server.stop();
}

TEST_P(ServerBackends, HandlerPressurePausesReadingUntilResponsesDrain) {
  // maxInFlight 4: the handler parks every ticket, so reading must pause
  // after 4 decoded frames and resume as responses drain.
  ServerConfig c = config();
  c.maxInFlightPerConnection = 4;
  std::mutex mutex;
  std::vector<std::shared_ptr<ResponseTicket>> parked;
  Server server(c, [&](QueryRequest&&,
                       const std::shared_ptr<ResponseTicket>& ticket) {
    std::lock_guard lock(mutex);
    parked.push_back(ticket);
    return true;
  });
  server.start();
  Client client("127.0.0.1", server.port());
  client.connect();
  constexpr std::uint64_t kCount = 32;
  for (TermId t = 1; t <= kCount; ++t) client.send(queryOf(t));
  while (client.pendingSendBytes() > 0) client.flush();
  // Drain parked tickets from another thread until all are answered.
  std::thread completer([&] {
    std::uint64_t done = 0;
    while (done < kCount) {
      std::vector<std::shared_ptr<ResponseTicket>> batch;
      {
        std::lock_guard lock(mutex);
        batch.swap(parked);
      }
      if (batch.empty()) {
        std::this_thread::sleep_for(1ms);
        continue;
      }
      for (const auto& ticket : batch) {
        QueryResponse response;
        response.complete = true;
        ticket->respond(std::move(response));
        ++done;
      }
    }
  });
  std::vector<Reply> replies;
  while (replies.size() < kCount) ASSERT_TRUE(client.wait(replies, 5000));
  completer.join();
  server.stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.responsesSent, kCount);
  EXPECT_GE(stats.readPauses, 1u);
}

TEST_P(ServerBackends, ResumesReadingAfterOutboxDrainsViaWritableEvents) {
  // Regression: a connection that pauses on outboxBytes while its last
  // completion has already delivered (inFlight == 0) drains its outbox
  // purely through kWritable events — no future mailbox drain touches
  // it. The writable flush path itself must clear the pause, or the
  // server never reads that socket again and the client hangs forever.
  ServerConfig c = config();
  c.maxOutboxBytes = 64 * 1024;
  Server server(c, [](QueryRequest&& request,
                      const std::shared_ptr<ResponseTicket>& ticket) {
    QueryResponse response;
    response.complete = true;
    response.docs.assign(60000, ScoredDoc{request.terms.at(0), 1.0});
    ticket->respond(std::move(response));
    return true;
  });
  server.start();
  Client client("127.0.0.1", server.port());
  client.connect();
  // Wave 1: each response is ~720 KiB and the client reads nothing, so
  // the outbox fills far past the pause threshold once the kernel
  // buffers are full.
  constexpr std::uint64_t kWave1 = 24;
  for (TermId t = 1; t <= kWave1; ++t) client.send(queryOf(t));
  while (client.pendingSendBytes() > 0) client.flush();
  std::this_thread::sleep_for(200ms);
  // Wave 2 is read against the full outbox: processing it trips the
  // outbox pause, and its completion drains inFlight back to zero.
  client.send(queryOf(100));
  while (client.pendingSendBytes() > 0) client.flush();
  std::this_thread::sleep_for(100ms);
  // Wave 3 sits unread in the server's socket buffer until reading
  // resumes — which only the writable-flush path can do now.
  client.send(queryOf(200));
  while (client.pendingSendBytes() > 0) client.flush();
  std::vector<Reply> replies;
  while (replies.size() < kWave1 + 2) ASSERT_TRUE(client.wait(replies, 10000));
  for (const Reply& reply : replies) EXPECT_EQ(reply.type, FrameType::kResult);
  server.stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.responsesSent, kWave1 + 2);
  // The scenario really exercised the pause (otherwise the test proved
  // nothing about resume).
  EXPECT_GE(stats.readPauses, 1u);
}

TEST(ClientPolicy, SendRejectsQueriesOverMaxTerms) {
  // The encoder clamps the u16 term count to keep frames well-formed, so
  // the policy check must happen before encoding: a silently truncated
  // query would return wrong results instead of an error.
  Client client("127.0.0.1", 1);  // send() only buffers; no connection
  QueryRequest request;
  request.terms.assign(FrameLimits{}.maxTerms + 1, TermId{5});
  EXPECT_THROW(client.send(request), std::invalid_argument);
}

TEST_P(ServerBackends, TicketsCompletedAfterStopAreDroppedSafely) {
  std::vector<std::shared_ptr<ResponseTicket>> parked;
  std::mutex mutex;
  Server server(config(), [&](QueryRequest&&,
                              const std::shared_ptr<ResponseTicket>& ticket) {
    std::lock_guard lock(mutex);
    parked.push_back(ticket);
    return true;
  });
  server.start();
  Client client("127.0.0.1", server.port());
  client.connect();
  client.send(queryOf(1));
  client.flush();
  for (int i = 0; i < 500; ++i) {
    {
      std::lock_guard lock(mutex);
      if (!parked.empty()) break;
    }
    std::this_thread::sleep_for(1ms);
  }
  server.stop();
  // The loop and its mailbox are gone; completing now must be a no-op,
  // not a crash or a leak.
  for (const auto& ticket : parked) {
    QueryResponse response;
    ticket->respond(std::move(response));
  }
}

TEST_P(ServerBackends, HandlerFailSendsTypedErrorWithoutClosing) {
  Server server(config(), [](QueryRequest&& request,
                             const std::shared_ptr<ResponseTicket>& ticket) {
    if (request.terms.at(0) == 13)
      ticket->fail(ErrorCode::kBadRequest, "unlucky");
    else
      return echoHandler(std::move(request), ticket);
    return true;
  });
  server.start();
  Client client("127.0.0.1", server.port());
  client.connect();
  EXPECT_THROW(client.call(queryOf(13), 5000), std::runtime_error);
  // Same connection still serves good requests: fail() is per-request,
  // not a protocol violation.
  EXPECT_EQ(client.call(queryOf(21), 5000).docs.at(0).doc, 21u);
  server.stop();
}

INSTANTIATE_TEST_SUITE_P(Backends, ServerBackends, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "ForcedPoll" : "Native";
                         });

TEST(ServerShards, MultipleShardsServeConcurrentConnections) {
  ServerConfig config = baseConfig();
  config.shards = 2;
  Server server(config, echoHandler);
  server.start();
  EXPECT_EQ(server.shardCount(), 2u);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      try {
        Client client("127.0.0.1", server.port());
        client.connect();
        for (TermId q = 1; q <= 50; ++q) {
          const TermId term = static_cast<TermId>(t * 1000 + q);
          if (client.call(queryOf(term), 5000).docs.at(0).doc != term)
            failures.fetch_add(1);
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  server.stop();
  EXPECT_EQ(server.stats().connectionsAccepted, 6u);
}

TEST(ServerLifecycle, StartStopIsIdempotentAndRestartable) {
  Server server(baseConfig(), echoHandler);
  server.start();
  server.start();  // no-op
  const std::uint16_t port = server.port();
  EXPECT_GT(port, 0);
  server.stop();
  server.stop();  // no-op
}

}  // namespace
}  // namespace resex::net
