#include "obs/context.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/mini_json.hpp"
#include "obs/trace.hpp"

namespace resex::obs {
namespace {

using resex::testing::MiniJson;

class ContextTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRegistry::global().clear();
    TraceRegistry::global().setEnabled(true);
    TraceRegistry::global().setKeepSlowestOf(64);
  }
  void TearDown() override {
    TraceRegistry::global().setEnabled(false);
    TraceRegistry::global().clear();
    TraceRegistry::global().setKeepSlowestOf(64);
    TraceRegistry::global().setTraceCapacity(256);
    TraceRegistry::global().setArenaCapacity(4096);
  }
};

TEST_F(ContextTest, DefaultContextIsInactive) {
  const TraceContext ctx;
  EXPECT_FALSE(ctx.active());
  EXPECT_EQ(ctx.traceId, 0u);
}

TEST_F(ContextTest, ChildKeepsTraceAndRepointsParent) {
  const TraceContext ctx{42, 7};
  const TraceContext child = ctx.child(99);
  EXPECT_EQ(child.traceId, 42u);
  EXPECT_EQ(child.parentSpanId, 99u);
}

TEST_F(ContextTest, DisabledRegistryHandsOutInertContexts) {
  TraceRegistry::global().setEnabled(false);
  const TraceContext ctx = TraceRegistry::global().startTrace();
  EXPECT_FALSE(ctx.active());
  {
    ScopedSpan span(ctx, "test.inert");
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(TraceRegistry::global().threadArena().spans().empty());
}

TEST_F(ContextTest, StartTraceAllocatesDistinctIds) {
  const TraceContext a = TraceRegistry::global().startTrace();
  const TraceContext b = TraceRegistry::global().startTrace();
  EXPECT_TRUE(a.active());
  EXPECT_TRUE(b.active());
  EXPECT_NE(a.traceId, b.traceId);
  EXPECT_EQ(TraceRegistry::global().tracesStarted(), 2u);
}

TEST_F(ContextTest, ScopedSpanRecordsIntoThreadArenaWithArgs) {
  const TraceContext ctx = TraceRegistry::global().startTrace();
  std::uint32_t spanId = 0;
  {
    ScopedSpan span(ctx, "test.work");
    ASSERT_TRUE(span.active());
    spanId = span.spanId();
    span.arg("items", 12.0);
    span.arg("hit", 1.0);
  }
  std::vector<RichSpan> collected;
  TraceRegistry::global().threadArena().collectTrace(ctx.traceId, collected);
  ASSERT_EQ(collected.size(), 1u);
  EXPECT_STREQ(collected[0].name, "test.work");
  EXPECT_EQ(collected[0].spanId, spanId);
  EXPECT_EQ(collected[0].traceId, ctx.traceId);
  ASSERT_EQ(collected[0].argCount, 2u);
  EXPECT_STREQ(collected[0].args[0].key, "items");
  EXPECT_DOUBLE_EQ(collected[0].args[0].value, 12.0);
}

TEST_F(ContextTest, SpanArgsBeyondCapacityAreDropped) {
  RichSpan span;
  for (std::size_t i = 0; i < kMaxSpanArgs + 4; ++i) span.addArg("k", 1.0);
  EXPECT_EQ(span.argCount, kMaxSpanArgs);
}

TEST_F(ContextTest, TailSamplerWarmupKeepsOneExemplarPerColdGroup) {
  TailSampler sampler(4);
  // No threshold yet: only the first retire of the warmup group is kept.
  EXPECT_TRUE(sampler.shouldKeep(100, false));
  EXPECT_FALSE(sampler.shouldKeep(200, false));
  EXPECT_FALSE(sampler.shouldKeep(300, false));
  EXPECT_FALSE(sampler.shouldKeep(50, false));
  // Threshold is now 300 (slowest of the first group).
  EXPECT_FALSE(sampler.shouldKeep(300, false));
  EXPECT_TRUE(sampler.shouldKeep(301, false));
}

TEST_F(ContextTest, TailSamplerAlwaysKeepsForcedRetires) {
  TailSampler sampler(4);
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(sampler.shouldKeep(1, true));
}

TEST_F(ContextTest, TailSamplerCapsKeepsAtOnePerGroupUnderDrift) {
  TailSampler sampler(4);
  // Warmup group: exemplar + three drops establishes threshold 40.
  EXPECT_TRUE(sampler.shouldKeep(10, false));
  sampler.shouldKeep(20, false);
  sampler.shouldKeep(30, false);
  sampler.shouldKeep(40, false);
  // Monotone drift: every retire beats the previous group's max, but only
  // the first keep of each group of 4 survives (keep rate stays 1/N).
  int kept = 0;
  for (std::uint64_t dur = 100; dur < 100 + 40; ++dur)
    if (sampler.shouldKeep(dur, false)) ++kept;
  EXPECT_EQ(kept, 10);  // 40 retires / group size 4
}

TEST_F(ContextTest, RetireKeepsForcedTraceWithReasonAndSpans) {
  const TraceContext ctx = TraceRegistry::global().startTrace();
  {
    ScopedSpan span(ctx, "test.partition");
    span.arg("partition", 3.0);
  }
  ASSERT_TRUE(TraceRegistry::global().retire(ctx, 1234, /*forceKeep=*/true,
                                             "deadline"));
  const std::vector<TraceRecord> traces = TraceRegistry::global().recentTraces();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].traceId, ctx.traceId);
  EXPECT_STREQ(traces[0].keepReason, "deadline");
  EXPECT_EQ(traces[0].rootDurUs, 1234u);
  ASSERT_EQ(traces[0].spans.size(), 1u);
  EXPECT_STREQ(traces[0].spans[0].name, "test.partition");
  EXPECT_EQ(TraceRegistry::global().tracesKept(), 1u);
}

TEST_F(ContextTest, DroppedTracesAreNeverPromoted) {
  // keepSlowestOf=2: after the 2-retire warmup group sets threshold=20,
  // an equal-speed query is dropped.
  TraceRegistry::global().setKeepSlowestOf(2);
  const TraceContext warm1 = TraceRegistry::global().startTrace();
  TraceRegistry::global().retire(warm1, 10, false);
  const TraceContext warm2 = TraceRegistry::global().startTrace();
  TraceRegistry::global().retire(warm2, 20, false);
  TraceRegistry::global().clear();

  const TraceContext a = TraceRegistry::global().startTrace();
  { ScopedSpan span(a, "test.dropped"); }
  TraceRegistry::global().setKeepSlowestOf(2);  // resets sampler: cold again
  const TraceContext b = TraceRegistry::global().startTrace();
  TraceRegistry::global().retire(b, 50, false);  // warmup exemplar, kept
  EXPECT_FALSE(TraceRegistry::global().retire(a, 10, false));
  for (const TraceRecord& t : TraceRegistry::global().recentTraces())
    EXPECT_NE(t.traceId, a.traceId);
  EXPECT_GE(TraceRegistry::global().tracesDropped(), 1u);
}

TEST_F(ContextTest, RetainedRingEvictsOldestBeyondCapacity) {
  TraceRegistry::global().setTraceCapacity(3);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 5; ++i) {
    const TraceContext ctx = TraceRegistry::global().startTrace();
    ids.push_back(ctx.traceId);
    TraceRegistry::global().retire(ctx, 100 + static_cast<std::uint64_t>(i),
                                   /*forceKeep=*/true, "forced");
  }
  const std::vector<TraceRecord> traces = TraceRegistry::global().recentTraces();
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces.front().traceId, ids[2]);
  EXPECT_EQ(traces.back().traceId, ids[4]);
}

TEST_F(ContextTest, ArenaRingWrapsDroppingOldestSpans) {
  SpanArena arena(1, 4);
  for (std::uint32_t i = 0; i < 10; ++i) {
    RichSpan span;
    span.name = "test.wrap";
    span.traceId = 7;
    span.spanId = i + 1;
    arena.record(span);
  }
  const std::vector<RichSpan> live = arena.spans();
  ASSERT_EQ(live.size(), 4u);
  // Oldest first once wrapped: span ids 7..10 survive.
  EXPECT_EQ(live.front().spanId, 7u);
  EXPECT_EQ(live.back().spanId, 10u);
  std::vector<RichSpan> collected;
  arena.collectTrace(7, collected);
  EXPECT_EQ(collected.size(), 4u);
  collected.clear();
  arena.collectTrace(999, collected);
  EXPECT_TRUE(collected.empty());
}

TEST_F(ContextTest, TimelineEventsBypassSampling) {
  TraceRegistry::global().emitTimeline("controller.epoch", 1000, 250,
                                       {{"epoch", 3.0}});
  const std::vector<RichSpan> events = TraceRegistry::global().timelineEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "controller.epoch");
  EXPECT_EQ(events[0].startUs, 1000u);
  EXPECT_EQ(events[0].durUs, 250u);
  ASSERT_EQ(events[0].argCount, 1u);
  EXPECT_DOUBLE_EQ(events[0].args[0].value, 3.0);
}

TEST_F(ContextTest, TracesJsonRoundTripsThroughParser) {
  const TraceContext ctx = TraceRegistry::global().startTrace();
  {
    ScopedSpan span(ctx, "test.json");
    span.arg("partition", 2.0);
  }
  TraceRegistry::global().retire(ctx, 500, true, "deadline");
  TraceRegistry::global().emitTimeline("executor.phase", 10, 20);
  const auto flat = MiniJson::flatten(TraceRegistry::global().tracesJson());
  EXPECT_EQ(flat.at("traces/0/keep_reason"), "deadline");
  EXPECT_EQ(flat.at("traces/0/root_dur_us"), "500");
  EXPECT_EQ(flat.at("traces/0/spans/0/name"), "test.json");
  EXPECT_EQ(flat.at("traces/0/spans/0/args/partition"), "2");
  EXPECT_EQ(flat.at("timeline/0/name"), "executor.phase");
}

TEST_F(ContextTest, ChromeEventsAppendAsValidJsonArrayBody) {
  const TraceContext ctx = TraceRegistry::global().startTrace();
  { ScopedSpan span(ctx, "test.chrome"); }
  TraceRegistry::global().retire(ctx, 100, true, "forced");
  TraceRegistry::global().emitTimeline("controller.epoch", 5, 6);
  std::string events;
  TraceRegistry::global().appendChromeEvents(events);
  ASSERT_FALSE(events.empty());
  const auto flat = MiniJson::flatten("[" + events + "]");
  // One query span and one timeline event, each a complete "X" event.
  EXPECT_EQ(flat.at("/#size"), "2");
  EXPECT_EQ(flat.at("/0/ph"), "X");
  EXPECT_EQ(flat.at("/1/ph"), "X");
}

TEST_F(ContextTest, ClearDropsTracesTimelineAndArenas) {
  const TraceContext ctx = TraceRegistry::global().startTrace();
  { ScopedSpan span(ctx, "test.clear"); }
  TraceRegistry::global().retire(ctx, 100, true, "forced");
  TraceRegistry::global().emitTimeline("t", 1, 1);
  TraceRegistry::global().clear();
  EXPECT_TRUE(TraceRegistry::global().recentTraces().empty());
  EXPECT_TRUE(TraceRegistry::global().timelineEvents().empty());
  EXPECT_TRUE(TraceRegistry::global().threadArena().spans().empty());
}

}  // namespace
}  // namespace resex::obs
