#include "obs/http.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "common/mini_json.hpp"
#include "obs/metrics.hpp"

namespace resex::obs {
namespace {

using resex::testing::MiniJson;

/// Blocking test client: sends `request` to 127.0.0.1:`port` and reads the
/// full response until the server closes (every response is
/// Connection: close).
std::string roundTrip(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string get(std::uint16_t port, const std::string& path,
                const std::string& method = "GET") {
  return roundTrip(port, method + " " + path +
                             " HTTP/1.1\r\nHost: localhost\r\n"
                             "Connection: close\r\n\r\n");
}

std::string bodyOf(const std::string& response) {
  const auto split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST(HttpServer, ServesRegisteredRoute) {
  HttpServer server(0);
  server.handle("/hello", [](const HttpRequest&) {
    return HttpResponse::text("hi there\n");
  });
  server.start();
  const std::string response = get(server.port(), "/hello");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_EQ(bodyOf(response), "hi there\n");
  EXPECT_GE(server.requestsServed(), 1u);
}

TEST(HttpServer, UnknownPathIs404) {
  HttpServer server(0);
  server.start();
  EXPECT_NE(get(server.port(), "/nope").find("HTTP/1.1 404"), std::string::npos);
}

TEST(HttpServer, NonGetMethodIs405) {
  HttpServer server(0);
  server.handle("/hello", [](const HttpRequest&) {
    return HttpResponse::text("hi\n");
  });
  server.start();
  EXPECT_NE(get(server.port(), "/hello", "POST").find("HTTP/1.1 405"),
            std::string::npos);
}

TEST(HttpServer, HeadGetsHeadersWithoutBody) {
  HttpServer server(0);
  server.handle("/hello", [](const HttpRequest&) {
    return HttpResponse::text("hi there\n");
  });
  server.start();
  const std::string response = get(server.port(), "/hello", "HEAD");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 9"), std::string::npos);
  EXPECT_EQ(bodyOf(response), "");
}

TEST(HttpServer, MalformedRequestLineIs400) {
  HttpServer server(0);
  server.start();
  const std::string response = roundTrip(server.port(), "garbage\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos);
}

TEST(HttpServer, OversizedRequestHeadIs431) {
  HttpServer server(0);
  server.start();
  const std::string huge(HttpServer::kMaxRequestBytes + 64, 'a');
  const std::string response =
      roundTrip(server.port(), "GET /" + huge + " HTTP/1.1\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 431"), std::string::npos);
}

TEST(HttpServer, HandlerExceptionIs500) {
  HttpServer server(0);
  server.handle("/boom", [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("broken");
  });
  server.start();
  EXPECT_NE(get(server.port(), "/boom").find("HTTP/1.1 500"), std::string::npos);
}

TEST(HttpServer, QueryStringIsSplitFromPath) {
  HttpServer server(0);
  server.handle("/echo", [](const HttpRequest& request) {
    return HttpResponse::text(request.query);
  });
  server.start();
  EXPECT_EQ(bodyOf(get(server.port(), "/echo?limit=5")), "limit=5");
}

// Regression: the response write path used to raise SIGPIPE (killing the
// whole process) when a client vanished mid-transfer. A disconnect only
// trips it when the reset lands between poll() reporting POLLOUT and the
// following send(), so hammer the window: many rounds of "start reading a
// multi-megabyte body, then abort the connection with an RST".
TEST(HttpServer, SurvivesClientDisconnectMidResponse) {
  HttpServer server(0);
  const std::string big(1u << 20, 'x');
  server.handle("/big", [&big](const HttpRequest&) {
    return HttpResponse::text(big);
  });
  server.handle("/after", [](const HttpRequest&) {
    return HttpResponse::text("still here\n");
  });
  server.start();

  for (int round = 0; round < 64; ++round) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd);
      FAIL() << "connect failed on round " << round;
    }
    const std::string request =
        "GET /big HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
    ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    // Read a few chunks so the server is mid-body, keeping its write loop
    // hot (each drained chunk re-arms POLLOUT)...
    char buf[4096];
    for (int chunk = 0; chunk < 2 + round % 4; ++chunk)
      if (::recv(fd, buf, sizeof buf, 0) <= 0) break;
    // ...then abort: SO_LINGER(0) turns close() into an immediate RST, so
    // the server's next write targets a dead connection.
    const linger abortNow{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &abortNow, sizeof abortNow);
    ::close(fd);
  }

  // Unfixed, the process is already dead of SIGPIPE by now (the test binary
  // would have crashed). Fixed, the server must still answer.
  EXPECT_TRUE(server.running());
  const std::string response = get(server.port(), "/after");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_EQ(bodyOf(response), "still here\n");
}

TEST(HttpServer, StopIsIdempotentAndJoins) {
  HttpServer server(0);
  server.start();
  EXPECT_TRUE(server.running());
  server.stop();
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(ServeIntrospection, NegativePortDisables) {
  EXPECT_EQ(serveIntrospection(-1), nullptr);
}

TEST(ServeIntrospection, StandardEndpointsAnswer) {
  MetricsRegistry::global().counter("http_test.requests").add(3);
  IntrospectionSources sources;
  sources.brokerJson = [] { return std::string("{\"queries\":7}"); };
  const auto server = serveIntrospection(0, std::move(sources));
  ASSERT_NE(server, nullptr);
  EXPECT_TRUE(server->running());

  EXPECT_EQ(bodyOf(get(server->port(), "/healthz")), "ok\n");

  const std::string metrics = bodyOf(get(server->port(), "/metrics"));
  EXPECT_NE(metrics.find("http_test_requests_total 3"), std::string::npos);

  const auto metricsJson = MiniJson::flatten(bodyOf(get(server->port(), "/metrics.json")));
  EXPECT_EQ(metricsJson.at("counters/http_test.requests"), "3");

  // JSON endpoints must at least parse.
  MiniJson::flatten(bodyOf(get(server->port(), "/traces")));
  MiniJson::flatten(bodyOf(get(server->port(), "/debug/slo")));
  const auto broker = MiniJson::flatten(bodyOf(get(server->port(), "/debug/broker")));
  EXPECT_EQ(broker.at("queries"), "7");

  // No shardsJson source registered -> 404, not a crash.
  EXPECT_NE(get(server->port(), "/debug/shards").find("HTTP/1.1 404"),
            std::string::npos);
}

}  // namespace
}  // namespace resex::obs
