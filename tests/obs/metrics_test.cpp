#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/mini_json.hpp"
#include "util/thread_pool.hpp"

namespace resex::obs {
namespace {

using resex::testing::MiniJson;

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.get(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.get(), 42u);
  c.reset();
  EXPECT_EQ(c.get(), 0u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(1.5);
  EXPECT_DOUBLE_EQ(g.get(), 1.5);
  g.add(0.25);
  EXPECT_DOUBLE_EQ(g.get(), 1.75);
}

TEST(Histogram, BucketsCountCumulatively) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);   // <= 1
  h.observe(1.0);   // <= 1 (bounds are inclusive)
  h.observe(5.0);   // <= 10
  h.observe(50.0);  // <= 100
  h.observe(500.0); // overflow
  EXPECT_EQ(h.totalCount(), 5u);
  EXPECT_EQ(h.bucketCount(), 4u);
  EXPECT_EQ(h.countAt(0), 2u);
  EXPECT_EQ(h.countAt(1), 1u);
  EXPECT_EQ(h.countAt(2), 1u);
  EXPECT_EQ(h.countAt(3), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 556.5);
  EXPECT_DOUBLE_EQ(h.meanValue(), 556.5 / 5.0);
}

TEST(Histogram, QuantileReturnsBucketBound) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 50; ++i) h.observe(1.5);  // bucket <= 2
  for (int i = 0; i < 50; ++i) h.observe(3.0);  // bucket <= 4
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
  // Empty histogram quantiles are defined as 0.
  Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram::exponentialBounds(0.0, 2.0, 4), std::invalid_argument);
  const auto bounds = Histogram::exponentialBounds(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

TEST(Series, AppendsAndMerges) {
  Series a;
  a.append(1.0, 2.0);
  a.append(3.0, 4.0, 5.0, 6.0);
  EXPECT_EQ(a.size(), 2u);
  Series b;
  b.append(7.0);
  b.appendAll(a);
  const auto points = b.points();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0][0], 7.0);
  EXPECT_DOUBLE_EQ(points[2][3], 6.0);
}

TEST(ScopedLatencyUs, RecordsOnScopeExit) {
  Histogram h(Histogram::latencyUsBounds());
  {
    ScopedLatencyUs latency(h);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(h.totalCount(), 1u);
  EXPECT_GE(h.sum(), 1000.0);  // at least 1ms in microseconds
}

TEST(MetricsRegistry, ReturnsStableReferencesAcrossReset) {
  auto& registry = MetricsRegistry::global();
  Counter& c = registry.counter("test.stable");
  c.add(5);
  registry.reset();
  EXPECT_EQ(c.get(), 0u);
  c.add(1);
  EXPECT_EQ(&registry.counter("test.stable"), &c);
  EXPECT_EQ(registry.counter("test.stable").get(), 1u);
}

TEST(MetricsRegistry, ConcurrentIncrementsFromThreadPoolAreExact) {
  auto& registry = MetricsRegistry::global();
  registry.reset();
  Counter& counter = registry.counter("test.concurrent");
  Histogram& hist = registry.histogram("test.concurrent_hist");
  constexpr std::size_t kIncrements = 100000;
  parallelFor(kIncrements, [&](std::size_t i) {
    counter.add();
    hist.observe(static_cast<double>(i % 100));
  });
  EXPECT_EQ(counter.get(), kIncrements);
  EXPECT_EQ(hist.totalCount(), kIncrements);
  // Snapshot must agree with the instruments once writers are quiescent.
  const MetricsSnapshot snap = registry.snapshot();
  bool found = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "test.concurrent") {
      EXPECT_EQ(value, kIncrements);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  for (const auto& h : snap.histograms) {
    if (h.name != "test.concurrent_hist") continue;
    std::uint64_t total = 0;
    for (const std::uint64_t c : h.counts) total += c;
    EXPECT_EQ(total, h.total);
    EXPECT_EQ(h.total, kIncrements);
  }
}

TEST(MetricsRegistry, JsonRoundTrip) {
  auto& registry = MetricsRegistry::global();
  registry.reset();
  registry.counter("test.json.counter").add(42);
  registry.gauge("test.json.gauge").set(2.5);
  Histogram& hist = registry.histogram("test.json.hist", {10.0, 20.0});
  hist.observe(5.0);
  hist.observe(15.0);
  hist.observe(99.0);
  registry.series("test.json.series").append(1.0, 2.0, 3.0, 4.0);

  const auto flat = MiniJson::flatten(registry.snapshot().toJson());
  EXPECT_EQ(flat.at("counters/test.json.counter"), "42");
  EXPECT_EQ(std::stod(flat.at("gauges/test.json.gauge")), 2.5);
  EXPECT_EQ(flat.at("histograms/test.json.hist/count"), "3");
  // Three buckets: le=10, le=20, le=inf, one sample each.
  EXPECT_EQ(flat.at("histograms/test.json.hist/buckets/#size"), "3");
  EXPECT_EQ(flat.at("histograms/test.json.hist/buckets/0/count"), "1");
  EXPECT_EQ(flat.at("histograms/test.json.hist/buckets/2/le"), "inf");
  EXPECT_EQ(flat.at("histograms/test.json.hist/buckets/2/count"), "1");
  EXPECT_EQ(std::stod(flat.at("series/test.json.series/0/3")), 4.0);
  registry.reset();
}

TEST(MetricsRegistry, PrometheusTextExport) {
  auto& registry = MetricsRegistry::global();
  registry.reset();
  registry.counter("test.prom.counter").add(3);
  registry.histogram("test.prom.hist", {1.0}).observe(0.5);
  const std::string text = registry.snapshot().toPrometheusText();
  EXPECT_NE(text.find("# TYPE test_prom_counter_total counter"), std::string::npos);
  EXPECT_NE(text.find("test_prom_counter_total 3"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_count 1"), std::string::npos);
  registry.reset();
}

TEST(MetricsRegistry, PrometheusCounterSuffixIsNotDoubled) {
  auto& registry = MetricsRegistry::global();
  registry.reset();
  registry.counter("test.prom.requests_total").add(7);
  const std::string text = registry.snapshot().toPrometheusText();
  EXPECT_NE(text.find("test_prom_requests_total 7"), std::string::npos);
  EXPECT_EQ(text.find("test_prom_requests_total_total"), std::string::npos);
  registry.reset();
}

}  // namespace
}  // namespace resex::obs
