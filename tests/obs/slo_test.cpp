#include "obs/slo.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/mini_json.hpp"

namespace resex::obs {
namespace {

using resex::testing::MiniJson;

SloConfig tightConfig() {
  SloConfig config;
  config.windowSeconds = 60.0;
  config.bucketSeconds = 5.0;
  config.objective = 0.9;  // 10% error budget: burn rate = errorRate * 10
  return config;
}

TEST(SloWindow, EmptyWindowSnapshotsToZeros) {
  const SloWindow window(tightConfig());
  const SloSnapshot snap = window.snapshotAt(100.0);
  EXPECT_EQ(snap.total, 0u);
  EXPECT_EQ(snap.errors, 0u);
  EXPECT_DOUBLE_EQ(snap.p99, 0.0);
  EXPECT_DOUBLE_EQ(snap.errorRate, 0.0);
  EXPECT_DOUBLE_EQ(snap.burnRate, 0.0);
}

TEST(SloWindow, CountsErrorsAndComputesBurnRate) {
  SloWindow window(tightConfig());
  for (int i = 0; i < 95; ++i) window.record(0.010, false, 100.0);
  for (int i = 0; i < 5; ++i) window.record(0.050, true, 100.0);
  const SloSnapshot snap = window.snapshotAt(101.0);
  EXPECT_EQ(snap.total, 100u);
  EXPECT_EQ(snap.errors, 5u);
  EXPECT_DOUBLE_EQ(snap.errorRate, 0.05);
  // Error budget rate is 1 - 0.9 = 0.1, so burn = 0.05 / 0.1.
  EXPECT_NEAR(snap.burnRate, 0.5, 1e-12);
}

TEST(SloWindow, QuantilesCoverRecordedLatencies) {
  SloWindow window(tightConfig());
  for (int i = 0; i < 90; ++i) window.record(0.001, false, 10.0);
  for (int i = 0; i < 10; ++i) window.record(0.5, false, 10.0);
  const SloSnapshot snap = window.snapshotAt(10.0);
  // Log-bucketed histogram: p50 lands in the 1 ms region, p99 well above.
  EXPECT_LT(snap.p50, 0.005);
  EXPECT_GT(snap.p99, 0.1);
  EXPECT_GT(snap.meanLatency, 0.001);
}

TEST(SloWindow, SamplesSlideOutOfTheWindow) {
  SloWindow window(tightConfig());
  window.record(0.010, true, 10.0);
  EXPECT_EQ(window.snapshotAt(11.0).total, 1u);
  // 100 seconds later the 60 s window no longer covers t=10.
  const SloSnapshot later = window.snapshotAt(110.0);
  EXPECT_EQ(later.total, 0u);
  EXPECT_DOUBLE_EQ(later.burnRate, 0.0);
}

TEST(SloWindow, OldBucketIsReusedAfterRotation) {
  SloWindow window(tightConfig());
  window.record(0.010, false, 0.0);
  // Recording far in the future lands in a ring slot that previously held
  // the t=0 bucket; the stale contents must not leak into the new window.
  window.record(0.020, false, 1000.0);
  const SloSnapshot snap = window.snapshotAt(1000.0);
  EXPECT_EQ(snap.total, 1u);
  EXPECT_GT(snap.p50, 0.010);
}

TEST(SloWindow, RecentBucketsMergeAcrossTheWindow) {
  SloWindow window(tightConfig());
  window.record(0.010, false, 10.0);  // bucket 2
  window.record(0.010, true, 40.0);   // bucket 8
  window.record(0.010, false, 60.0);  // bucket 12
  const SloSnapshot snap = window.snapshotAt(62.0);
  EXPECT_EQ(snap.total, 3u);
  EXPECT_EQ(snap.errors, 1u);
}

TEST(SloWindow, LatencyBreachesCountAgainstTarget) {
  SloConfig config = tightConfig();
  config.p99TargetSeconds = 0.1;
  SloWindow window(config);
  window.record(0.050, false, 5.0);
  window.record(0.200, false, 5.0);
  window.record(0.300, false, 5.0);
  const SloSnapshot snap = window.snapshotAt(6.0);
  EXPECT_EQ(snap.latencyBreaches, 2u);
}

TEST(SloWindow, QuantileAtComputesArbitraryQuantiles) {
  SloWindow window(tightConfig());
  // 100 well-separated samples: 60 at ~1 ms, 30 at ~20 ms, 10 at ~500 ms.
  for (int i = 0; i < 60; ++i) window.record(0.001, false, 10.0);
  for (int i = 0; i < 30; ++i) window.record(0.020, false, 10.0);
  for (int i = 0; i < 10; ++i) window.record(0.500, false, 10.0);
  // q = 0.6 sits at the 1 ms / 20 ms boundary — the old canned mapping
  // returned p90 (~20 ms) for it; the real p60 is still in the 1 ms region.
  EXPECT_LT(window.quantileAt(0.60, 10.0), 0.005);
  // q = 0.8 is inside the 20 ms band, far below the p99 the old mapping
  // never distinguished it from.
  EXPECT_GT(window.quantileAt(0.80, 10.0), 0.010);
  EXPECT_LT(window.quantileAt(0.80, 10.0), 0.100);
  // q = 0.95 maps into the 500 ms tail, and must agree with the snapshot's
  // canned points at their own q values.
  EXPECT_GT(window.quantileAt(0.95, 10.0), 0.2);
  const SloSnapshot snap = window.snapshotAt(10.0);
  EXPECT_DOUBLE_EQ(window.quantileAt(0.50, 10.0), snap.p50);
  EXPECT_DOUBLE_EQ(window.quantileAt(0.90, 10.0), snap.p90);
  EXPECT_DOUBLE_EQ(window.quantileAt(0.99, 10.0), snap.p99);
}

TEST(SloRegistry, WindowIsFindOrCreateWithStableReference) {
  SloRegistry::global().reset();
  SloWindow& a = SloRegistry::global().window("test.class", tightConfig());
  SloWindow& b = SloRegistry::global().window("test.class", tightConfig());
  EXPECT_EQ(&a, &b);
  SloRegistry::global().reset();
}

TEST(SloRegistry, ReRegisteringWithDifferentConfigThrows) {
  SloRegistry::global().reset();
  SloRegistry::global().window("test.class", tightConfig());
  // A second class registering the same name with a different objective
  // must not silently inherit the first config.
  SloConfig other = tightConfig();
  other.objective = 0.99;
  EXPECT_THROW(SloRegistry::global().window("test.class", other),
               std::invalid_argument);
  SloConfig widened = tightConfig();
  widened.windowSeconds = 120.0;
  EXPECT_THROW(SloRegistry::global().window("test.class", widened),
               std::invalid_argument);
  SloRegistry::global().reset();
}

TEST(SloRegistry, FindIsConfigAgnosticLookup) {
  SloRegistry::global().reset();
  EXPECT_EQ(SloRegistry::global().find("test.class"), nullptr);
  SloWindow& created = SloRegistry::global().window("test.class", tightConfig());
  EXPECT_EQ(SloRegistry::global().find("test.class"), &created);
  SloRegistry::global().reset();
}

TEST(SloRegistry, ToJsonListsEveryClass) {
  SloRegistry::global().reset();
  SloRegistry::global().window("interactive", tightConfig()).record(0.01, false);
  SloRegistry::global().window("batch", tightConfig()).record(0.02, true);
  const auto flat = MiniJson::flatten(SloRegistry::global().toJson());
  EXPECT_EQ(flat.at("classes/0/name"), "interactive");
  EXPECT_EQ(flat.at("classes/0/total"), "1");
  EXPECT_EQ(flat.at("classes/1/name"), "batch");
  EXPECT_EQ(flat.at("classes/1/errors"), "1");
  SloRegistry::global().reset();
}

}  // namespace
}  // namespace resex::obs
