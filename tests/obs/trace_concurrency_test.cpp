// Concurrency hammering for both tracing planes, written for the TSan CI
// job: writers record while readers collect/export, so any missing
// synchronization in the ring buffers or the registry shows up as a
// reported race rather than a flaky assertion.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/context.hpp"
#include "obs/trace.hpp"

namespace resex::obs {
namespace {

TEST(TraceConcurrency, BufferRecordRacesCollectCleanly) {
  TraceBuffer buffer(1, 64);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t t = 0;
    while (!stop.load(std::memory_order_relaxed))
      buffer.record("test.span", t++, 1);
  });
  for (int i = 0; i < 200; ++i) {
    const std::vector<SpanEvent> events = buffer.events();
    EXPECT_LE(events.size(), 64u);
    for (const SpanEvent& e : events) EXPECT_STREQ(e.name, "test.span");
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  buffer.clear();
  EXPECT_TRUE(buffer.events().empty());
}

TEST(TraceConcurrency, TracerThreadsRecordWhileExporting) {
  Tracer::global().clear();
  Tracer::global().setBufferCapacity(256);
  Tracer::global().setEnabled(true);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w)
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        RESEX_TRACE_SPAN("test.concurrent");
      }
    });
  for (int i = 0; i < 50; ++i) {
    Tracer::global().collect();
    Tracer::global().exportChromeTrace();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();
  Tracer::global().setEnabled(false);
  Tracer::global().clear();
  Tracer::global().setBufferCapacity(1 << 16);
}

TEST(TraceConcurrency, ArenaWraparoundUnderConcurrentCollect) {
  SpanArena arena(1, 32);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint32_t id = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      RichSpan span;
      span.name = "test.wrap";
      span.traceId = 1 + (id % 8);
      span.spanId = id++;
      arena.record(span);
    }
  });
  for (int i = 0; i < 300; ++i) {
    std::vector<RichSpan> out;
    arena.collectTrace(1 + (i % 8), out);
    EXPECT_LE(out.size(), 32u);
    EXPECT_LE(arena.spans().size(), 32u);
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST(TraceConcurrency, RegistryRetireRacesReaders) {
  TraceRegistry& registry = TraceRegistry::global();
  registry.clear();
  registry.setEnabled(true);
  registry.setKeepSlowestOf(8);
  registry.setTraceCapacity(64);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> retired{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w)
    workers.emplace_back([&, w] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const TraceContext ctx = registry.startTrace();
        {
          ScopedSpan span(ctx, "test.query");
          span.arg("worker", static_cast<double>(w));
        }
        registry.retire(ctx, 10 + (i % 100), (i % 7) == 0, "deadline");
        retired.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
    });
  std::thread timeline([&] {
    std::uint64_t t = 0;
    while (!stop.load(std::memory_order_relaxed))
      registry.emitTimeline("test.epoch", t++, 1);
  });
  for (int i = 0; i < 100; ++i) {
    registry.recentTraces();
    registry.tracesJson();
    std::string events;
    registry.appendChromeEvents(events);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : workers) t.join();
  timeline.join();

  EXPECT_EQ(registry.tracesKept() + registry.tracesDropped(), retired.load());
  EXPECT_LE(registry.recentTraces().size(), 64u);
  registry.setEnabled(false);
  registry.clear();
  registry.setKeepSlowestOf(64);
  registry.setTraceCapacity(256);
}

}  // namespace
}  // namespace resex::obs
