#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>

#include "common/mini_json.hpp"

namespace resex::obs {
namespace {

using resex::testing::MiniJson;

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().clear();
    Tracer::global().setEnabled(false);
  }
  void TearDown() override {
    Tracer::global().setEnabled(false);
    Tracer::global().clear();
    Tracer::global().setBufferCapacity(1 << 16);
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  {
    RESEX_TRACE_SPAN("test.disabled");
  }
  EXPECT_TRUE(Tracer::global().collect().empty());
}

TEST_F(TraceTest, EnabledCapturesNameAndDuration) {
  Tracer::global().setEnabled(true);
  {
    RESEX_TRACE_SPAN("test.outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    { RESEX_TRACE_SPAN("test.inner"); }
  }
  Tracer::global().setEnabled(false);
  const auto events = Tracer::global().collect();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time: outer opened first.
  EXPECT_STREQ(events[0].name, "test.outer");
  EXPECT_STREQ(events[1].name, "test.inner");
  EXPECT_GE(events[0].durUs, 1000u);
  EXPECT_LE(events[1].startUs + events[1].durUs,
            events[0].startUs + events[0].durUs + 1);
}

TEST_F(TraceTest, ThreadsGetDistinctTids) {
  Tracer::global().setEnabled(true);
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([] { RESEX_TRACE_SPAN("test.worker"); });
  }
  for (auto& t : threads) t.join();
  Tracer::global().setEnabled(false);
  const auto events = Tracer::global().collect();
  ASSERT_EQ(events.size(), 4u);
  std::set<std::uint32_t> tids;
  for (const auto& e : events) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), 4u);  // buffers survive thread exit
}

TEST_F(TraceTest, RingKeepsMostRecentSpans) {
  Tracer::global().setBufferCapacity(8);
  Tracer::global().setEnabled(true);
  // A fresh thread so the small capacity applies to a new buffer.
  std::thread([] {
    for (int i = 0; i < 20; ++i) {
      RESEX_TRACE_SPAN("test.wrap");
    }
  }).join();
  Tracer::global().setEnabled(false);
  const auto events = Tracer::global().collect();
  EXPECT_EQ(events.size(), 8u);
  // Oldest-first ordering must survive the wrap: starts are monotone.
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_GE(events[i].startUs, events[i - 1].startUs);
}

TEST_F(TraceTest, ChromeExportIsValidTraceEventArray) {
  Tracer::global().setEnabled(true);
  { RESEX_TRACE_SPAN("test.export"); }
  Tracer::global().setEnabled(false);
  const auto flat = MiniJson::flatten(Tracer::global().exportChromeTrace());
  EXPECT_EQ(flat.at("/#size"), "1");
  EXPECT_EQ(flat.at("/0/name"), "test.export");
  EXPECT_EQ(flat.at("/0/cat"), "resex");
  EXPECT_EQ(flat.at("/0/ph"), "X");
  EXPECT_EQ(flat.at("/0/pid"), "1");
  EXPECT_NO_THROW(std::stod(flat.at("/0/ts")));
  EXPECT_NO_THROW(std::stod(flat.at("/0/dur")));
}

TEST_F(TraceTest, EmptyExportIsValidEmptyArray) {
  const auto flat = MiniJson::flatten(Tracer::global().exportChromeTrace());
  EXPECT_EQ(flat.at("/#size"), "0");
}

TEST_F(TraceTest, InternNameIsStableForEqualText) {
  // Same text -> same pointer, even when built from distinct buffers.
  const std::string a = "test.intern.stable";
  const std::string b = "test.intern." + std::string("stable");
  const char* first = Tracer::internName(a);
  const char* second = Tracer::internName(b);
  EXPECT_EQ(first, second);
  EXPECT_STREQ(first, "test.intern.stable");
}

TEST_F(TraceTest, InternNameDistinguishesDistinctText) {
  const char* a = Tracer::internName("test.intern.a");
  const char* b = Tracer::internName("test.intern.b");
  EXPECT_NE(a, b);
  EXPECT_STREQ(a, "test.intern.a");
  EXPECT_STREQ(b, "test.intern.b");
}

TEST_F(TraceTest, InternNameCountGrowsOnlyOnNewNames) {
  const std::size_t before = Tracer::internedNameCount();
  Tracer::internName("test.intern.counted");
  EXPECT_EQ(Tracer::internedNameCount(), before + 1);
  Tracer::internName("test.intern.counted");  // already interned: no growth
  EXPECT_EQ(Tracer::internedNameCount(), before + 1);
}

TEST_F(TraceTest, InternedNameServesAsDynamicSpanName) {
  Tracer::global().setEnabled(true);
  const std::string dynamic = "test.partition." + std::to_string(3);
  {
    // The interned pointer outlives `dynamic`, so the span may keep it.
    TraceSpan span(Tracer::internName(dynamic));
  }
  Tracer::global().setEnabled(false);
  const auto events = Tracer::global().collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test.partition.3");
}

}  // namespace
}  // namespace resex::obs
