#include "search/builder.hpp"

#include <gtest/gtest.h>

#include "cluster/assignment.hpp"

namespace resex {
namespace {

SearchWorkloadConfig smallConfig() {
  SearchWorkloadConfig config;
  config.seed = 3;
  config.corpus.docCount = 50000;
  config.corpus.termCount = 2000;
  config.shardCount = 60;
  config.machines = 8;
  config.exchangeMachines = 2;
  config.peakQps = 500.0;
  config.cpuLoadFactorAtPeak = 0.8;
  return config;
}

TEST(SearchWorkload, DocFractionsSumToOne) {
  const SearchWorkload workload(smallConfig());
  double total = 0.0;
  for (const double f : workload.docFractions()) total += f;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SearchWorkload, CpuLoadFactorHitsTargetAtPeak) {
  const SearchWorkloadConfig config = smallConfig();
  const SearchWorkload workload(config);
  const Instance inst = workload.buildInstance(config.peakQps);
  // Dimension 0 is CPU: total demand / total regular capacity == target.
  const ResourceVector demand = inst.totalDemand();
  const ResourceVector cap = inst.totalRegularCapacity();
  EXPECT_NEAR(demand[0] / cap[0], config.cpuLoadFactorAtPeak, 1e-9);
}

TEST(SearchWorkload, CpuDemandScalesLinearlyWithQps) {
  const SearchWorkload workload(smallConfig());
  const ResourceVector low = workload.shardDemand(0, 100.0);
  const ResourceVector high = workload.shardDemand(0, 300.0);
  EXPECT_NEAR(high[0] / low[0], 3.0, 1e-9);
  // Memory (index size) does not depend on QPS.
  EXPECT_DOUBLE_EQ(high[1], low[1]);
}

TEST(SearchWorkload, BringUpPlacementIsFeasible) {
  const SearchWorkloadConfig config = smallConfig();
  const SearchWorkload workload(config);
  const Instance inst = workload.buildInstance(config.peakQps);
  Assignment a(inst);
  EXPECT_TRUE(a.validate(/*requireCapacity=*/true).empty());
}

TEST(SearchWorkload, ExchangeMachinesVacantAtBringUp) {
  const SearchWorkload workload(smallConfig());
  const Instance inst = workload.buildInstance(200.0);
  Assignment a(inst);
  EXPECT_GE(a.vacantCount(), 2u);
}

TEST(SearchWorkload, CarriedMappingIsRelabeledNotRejected) {
  const SearchWorkloadConfig config = smallConfig();
  const SearchWorkload workload(config);
  const Instance first = workload.buildInstance(config.peakQps);
  // Put a shard on an exchange machine (as SRA may legitimately do) and
  // drain the machine it came from.
  std::vector<MachineId> mapping = first.initialAssignment();
  const MachineId victim = mapping[0];
  const auto exch = static_cast<MachineId>(first.regularCount());
  for (MachineId& m : mapping)
    if (m == victim) m = exch;
  const Instance second = workload.buildInstance(config.peakQps, &mapping);
  Assignment a(second);  // constructor validates: no initial on exchange
  EXPECT_EQ(second.machineCount(), first.machineCount());
  EXPECT_TRUE(a.validate(/*requireCapacity=*/false).empty());
}

TEST(SearchWorkload, CarriedMappingWithTooFewVacantThrows) {
  const SearchWorkloadConfig config = smallConfig();
  const SearchWorkload workload(config);
  const Instance first = workload.buildInstance(config.peakQps);
  std::vector<MachineId> mapping = first.initialAssignment();
  // Occupy all machines (shards 0..9 onto machines 0..9).
  for (MachineId m = 0; m < first.machineCount(); ++m) mapping[m] = m;
  EXPECT_THROW(workload.buildInstance(config.peakQps, &mapping), std::runtime_error);
}

TEST(SearchWorkload, MoveBytesEqualIndexBytes) {
  const SearchWorkload workload(smallConfig());
  const Instance inst = workload.buildInstance(100.0);
  for (ShardId s = 0; s < inst.shardCount(); ++s)
    EXPECT_DOUBLE_EQ(inst.shard(s).moveBytes, workload.indexBytes(s));
}

TEST(SearchWorkload, SimulateEndToEnd) {
  const SearchWorkloadConfig config = smallConfig();
  const SearchWorkload workload(config);
  const Instance inst = workload.buildInstance(config.peakQps);
  const SimulationResult r =
      workload.simulate(inst.initialAssignment(), config.peakQps, 2000, 7);
  EXPECT_EQ(r.queries, 2000u);
  EXPECT_GT(r.p99(), 0.0);
}

TEST(SearchWorkload, LowerQpsGivesLowerLatency) {
  const SearchWorkloadConfig config = smallConfig();
  const SearchWorkload workload(config);
  const Instance inst = workload.buildInstance(config.peakQps);
  const auto busy =
      workload.simulate(inst.initialAssignment(), config.peakQps, 3000, 7);
  const auto calm =
      workload.simulate(inst.initialAssignment(), config.peakQps * 0.3, 3000, 7);
  EXPECT_LT(calm.p99(), busy.p99());
}

TEST(SearchWorkload, RejectsDegenerateConfig) {
  SearchWorkloadConfig config = smallConfig();
  config.shardCount = 0;
  EXPECT_THROW(SearchWorkload{config}, std::invalid_argument);
  config = smallConfig();
  config.machines = 0;
  EXPECT_THROW(SearchWorkload{config}, std::invalid_argument);
}

}  // namespace
}  // namespace resex
