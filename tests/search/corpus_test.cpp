#include "search/corpus.hpp"

#include <gtest/gtest.h>

namespace resex {
namespace {

CorpusConfig smallConfig() {
  CorpusConfig config;
  config.docCount = 10000;
  config.termCount = 1000;
  config.avgTermsPerDoc = 50.0;
  return config;
}

TEST(Corpus, FrequenciesAreMonotoneDecreasing) {
  const Corpus corpus(smallConfig());
  for (TermId t = 1; t < corpus.termCount(); ++t)
    EXPECT_LE(corpus.documentFrequency(t), corpus.documentFrequency(t - 1));
}

TEST(Corpus, FrequenciesCappedAtDocCount) {
  CorpusConfig config = smallConfig();
  config.avgTermsPerDoc = 500.0;  // forces head terms into the cap
  const Corpus corpus(config);
  for (TermId t = 0; t < corpus.termCount(); ++t)
    EXPECT_LE(corpus.documentFrequency(t),
              static_cast<double>(config.docCount));
  EXPECT_DOUBLE_EQ(corpus.documentFrequency(0),
                   static_cast<double>(config.docCount));
}

TEST(Corpus, TotalPostingsNearTarget) {
  const CorpusConfig config = smallConfig();
  const Corpus corpus(config);
  const double target = static_cast<double>(config.docCount) * config.avgTermsPerDoc;
  // The docCount cap can only reduce the total.
  EXPECT_LE(corpus.totalPostings(), target + 1e-6);
  EXPECT_GT(corpus.totalPostings(), target * 0.5);
}

TEST(Corpus, ZipfShapeHolds) {
  CorpusConfig config = smallConfig();
  config.dfExponent = 1.0;
  config.avgTermsPerDoc = 5.0;  // keep everything below the cap
  const Corpus corpus(config);
  // df(t) / df(2t) ~ 2 under exponent 1.
  EXPECT_NEAR(corpus.documentFrequency(9) / corpus.documentFrequency(19), 2.0, 0.05);
}

TEST(Corpus, RejectsDegenerateConfigs) {
  CorpusConfig config = smallConfig();
  config.termCount = 0;
  EXPECT_THROW(Corpus{config}, std::invalid_argument);
  config = smallConfig();
  config.docCount = 0;
  EXPECT_THROW(Corpus{config}, std::invalid_argument);
}

TEST(Corpus, AccessorsReflectConfig) {
  const Corpus corpus(smallConfig());
  EXPECT_EQ(corpus.docCount(), 10000u);
  EXPECT_EQ(corpus.termCount(), 1000u);
}

}  // namespace
}  // namespace resex
