#include "search/engine.hpp"

#include <gtest/gtest.h>

#include "common/test_instances.hpp"

namespace resex {
namespace {

using testing::uniformInstance;

struct Fixture {
  Corpus corpus;
  QueryGenerator queries;

  Fixture()
      : corpus([] {
          CorpusConfig c;
          c.docCount = 10000;
          c.termCount = 300;
          c.avgTermsPerDoc = 30.0;
          return c;
        }()),
        queries(corpus, QueryModelConfig{}) {}
};

TEST(Engine, ProducesLatenciesForEveryQuery) {
  Fixture f;
  const Instance inst = uniformInstance(4, 0, {10.0, 10.0, 10.0, 10.0});
  SimulationConfig sim;
  sim.queryCount = 500;
  sim.arrivalRate = 50.0;
  const std::vector<double> fractions{0.25, 0.25, 0.25, 0.25};
  const SimulationResult r =
      simulateQueries(inst, inst.initialAssignment(), fractions, f.queries, sim);
  EXPECT_EQ(r.queries, 500u);
  EXPECT_EQ(r.latency.totalCount(), 500u);
  EXPECT_GT(r.p50(), 0.0);
  EXPECT_GE(r.p99(), r.p50());
}

TEST(Engine, HigherLoadMeansHigherLatency) {
  Fixture f;
  const Instance inst = uniformInstance(4, 0, {10.0, 10.0, 10.0, 10.0});
  const std::vector<double> fractions{0.25, 0.25, 0.25, 0.25};
  SimulationConfig light;
  light.queryCount = 3000;
  light.arrivalRate = 20.0;
  SimulationConfig heavy = light;
  heavy.arrivalRate = 400.0;
  const auto lightRes =
      simulateQueries(inst, inst.initialAssignment(), fractions, f.queries, light);
  const auto heavyRes =
      simulateQueries(inst, inst.initialAssignment(), fractions, f.queries, heavy);
  EXPECT_GT(heavyRes.p99(), lightRes.p99());
}

TEST(Engine, SkewedPlacementHurtsTailLatency) {
  Fixture f;
  const Instance inst = uniformInstance(4, 0, {10.0, 10.0, 10.0, 10.0});
  SimulationConfig sim;
  sim.queryCount = 4000;
  sim.arrivalRate = 120.0;
  // Balanced: one shard per machine. Skewed: all four on machine 0.
  const std::vector<double> fractions{0.25, 0.25, 0.25, 0.25};
  const std::vector<MachineId> balanced{0, 1, 2, 3};
  const std::vector<MachineId> skewed{0, 0, 0, 0};
  const auto balRes = simulateQueries(inst, balanced, fractions, f.queries, sim);
  const auto skewRes = simulateQueries(inst, skewed, fractions, f.queries, sim);
  EXPECT_GT(skewRes.p99(), balRes.p99());
  EXPECT_GT(skewRes.meanLatency(), balRes.meanLatency());
}

TEST(Engine, BusyFractionReflectsLoadPlacement) {
  Fixture f;
  const Instance inst = uniformInstance(2, 0, {10.0, 10.0});
  SimulationConfig sim;
  sim.queryCount = 2000;
  sim.arrivalRate = 60.0;
  const std::vector<double> fractions{0.9, 0.1};
  const std::vector<MachineId> mapping{0, 1};
  const auto r = simulateQueries(inst, mapping, fractions, f.queries, sim);
  ASSERT_EQ(r.machineBusyFraction.size(), 2u);
  EXPECT_GT(r.machineBusyFraction[0], r.machineBusyFraction[1]);
}

TEST(Engine, FasterMachinesFinishSooner) {
  Fixture f;
  // Machine 1 has double the CPU capacity of machine 0.
  std::vector<Machine> machines(2);
  machines[0].id = 0;
  machines[0].capacity = ResourceVector{100.0, 100.0};
  machines[1].id = 1;
  machines[1].capacity = ResourceVector{200.0, 100.0};
  std::vector<Shard> shards(2);
  shards[0].id = 0;
  shards[0].demand = ResourceVector{1.0, 1.0};
  shards[1].id = 1;
  shards[1].demand = ResourceVector{1.0, 1.0};
  const Instance inst(2, std::move(machines), std::move(shards), {0, 1}, 0,
                      ResourceVector{1.0, 1.0});
  SimulationConfig sim;
  sim.queryCount = 3000;
  sim.arrivalRate = 100.0;
  const std::vector<double> fractions{0.5, 0.5};
  const auto r =
      simulateQueries(inst, inst.initialAssignment(), fractions, f.queries, sim);
  EXPECT_GT(r.machineBusyFraction[0], r.machineBusyFraction[1]);
}

TEST(Engine, DeterministicForSeed) {
  Fixture f;
  const Instance inst = uniformInstance(3, 0, {10.0, 10.0, 10.0});
  SimulationConfig sim;
  sim.queryCount = 1000;
  const std::vector<double> fractions{0.4, 0.3, 0.3};
  const auto a = simulateQueries(inst, inst.initialAssignment(), fractions, f.queries, sim);
  const auto b = simulateQueries(inst, inst.initialAssignment(), fractions, f.queries, sim);
  EXPECT_DOUBLE_EQ(a.p99(), b.p99());
  EXPECT_DOUBLE_EQ(a.meanLatency(), b.meanLatency());
}

TEST(Engine, RejectsSizeMismatch) {
  Fixture f;
  const Instance inst = uniformInstance(2, 0, {10.0, 10.0});
  SimulationConfig sim;
  EXPECT_THROW(
      simulateQueries(inst, {0}, {0.5, 0.5}, f.queries, sim),
      std::invalid_argument);
  EXPECT_THROW(
      simulateQueries(inst, inst.initialAssignment(), {0.5}, f.queries, sim),
      std::invalid_argument);
}

TEST(Engine, RejectsUnassignedShard) {
  Fixture f;
  const Instance inst = uniformInstance(2, 0, {10.0, 10.0});
  SimulationConfig sim;
  EXPECT_THROW(simulateQueries(inst, {kNoMachine, 0}, {0.5, 0.5}, f.queries, sim),
               std::invalid_argument);
}

}  // namespace
}  // namespace resex
