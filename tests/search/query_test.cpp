#include "search/query.hpp"

#include <gtest/gtest.h>

namespace resex {
namespace {

Corpus smallCorpus() {
  CorpusConfig config;
  config.docCount = 10000;
  config.termCount = 500;
  config.avgTermsPerDoc = 40.0;
  return Corpus(config);
}

TEST(QueryGenerator, TermCountsWithinRange) {
  const Corpus corpus = smallCorpus();
  QueryModelConfig config;
  config.minTerms = 2;
  config.maxTerms = 5;
  const QueryGenerator gen(corpus, config);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const Query q = gen.next(rng);
    EXPECT_GE(q.terms.size(), 2u);
    EXPECT_LE(q.terms.size(), 5u);
    for (const TermId t : q.terms) EXPECT_LT(t, corpus.termCount());
  }
}

TEST(QueryGenerator, RejectsBadTermRange) {
  const Corpus corpus = smallCorpus();
  QueryModelConfig config;
  config.minTerms = 0;
  EXPECT_THROW(QueryGenerator(corpus, config), std::invalid_argument);
  config.minTerms = 5;
  config.maxTerms = 2;
  EXPECT_THROW(QueryGenerator(corpus, config), std::invalid_argument);
}

TEST(QueryGenerator, PopularTermsDominate) {
  const Corpus corpus = smallCorpus();
  const QueryGenerator gen(corpus, QueryModelConfig{});
  Rng rng(3);
  std::vector<int> counts(corpus.termCount(), 0);
  for (int i = 0; i < 20000; ++i)
    for (const TermId t : gen.next(rng).terms) ++counts[t];
  EXPECT_GT(counts[0], counts[100]);
  EXPECT_GT(counts[0], counts[499]);
}

TEST(QueryGenerator, WorkScalesWithDocFraction) {
  const Corpus corpus = smallCorpus();
  const QueryGenerator gen(corpus, QueryModelConfig{});
  Rng rng(5);
  const Query q = gen.next(rng);
  const double small = gen.workOnShard(q, 0.01);
  const double large = gen.workOnShard(q, 0.10);
  EXPECT_GT(large, small);
  // Subtracting the fixed overhead, work is linear in the fraction.
  const double fixed = gen.config().workPerShardFixed;
  EXPECT_NEAR((large - fixed) / (small - fixed), 10.0, 1e-6);
}

TEST(QueryGenerator, WorkIsAtLeastFixedOverhead) {
  const Corpus corpus = smallCorpus();
  const QueryGenerator gen(corpus, QueryModelConfig{});
  Rng rng(7);
  const Query q = gen.next(rng);
  EXPECT_GE(gen.workOnShard(q, 0.0), gen.config().workPerShardFixed);
}

TEST(QueryGenerator, ExpectedWorkMatchesEmpiricalMean) {
  const Corpus corpus = smallCorpus();
  const QueryGenerator gen(corpus, QueryModelConfig{});
  Rng rng(9);
  const double fraction = 0.05;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += gen.workOnShard(gen.next(rng), fraction);
  const double empirical = sum / n;
  const double expected = gen.expectedWorkOnShard(fraction);
  EXPECT_NEAR(empirical, expected, expected * 0.05);
}

TEST(QueryGenerator, MoreTermsMeansMoreWorkOnAverage) {
  const Corpus corpus = smallCorpus();
  QueryModelConfig one;
  one.minTerms = 1;
  one.maxTerms = 1;
  QueryModelConfig four;
  four.minTerms = 4;
  four.maxTerms = 4;
  const QueryGenerator genOne(corpus, one);
  const QueryGenerator genFour(corpus, four);
  EXPECT_GT(genFour.expectedWorkOnShard(0.1), genOne.expectedWorkOnShard(0.1));
}

}  // namespace
}  // namespace resex
