// Replicated search serving: replica-aware instances and the
// power-of-two-choices router.
#include <gtest/gtest.h>

#include "cluster/assignment.hpp"
#include "search/builder.hpp"

namespace resex {
namespace {

SearchWorkloadConfig replicatedConfig() {
  SearchWorkloadConfig config;
  config.seed = 21;
  config.corpus.docCount = 50000;
  config.corpus.termCount = 2000;
  config.shardCount = 40;  // logical partitions
  config.replicationFactor = 2;
  config.machines = 8;
  config.exchangeMachines = 2;
  config.peakQps = 600.0;
  config.cpuLoadFactorAtPeak = 0.75;
  return config;
}

TEST(ReplicatedSearch, BuildsValidReplicatedInstance) {
  const SearchWorkload workload(replicatedConfig());
  EXPECT_EQ(workload.physicalShardCount(), 80u);
  const Instance inst = workload.buildInstance(600.0);
  EXPECT_TRUE(inst.hasReplication());
  EXPECT_EQ(inst.shardCount(), 80u);
  Assignment a(inst);
  EXPECT_TRUE(a.validate(/*requireCapacity=*/true).empty());
}

TEST(ReplicatedSearch, CpuSplitsAcrossReplicasMemoryDoesNot) {
  SearchWorkloadConfig one = replicatedConfig();
  one.replicationFactor = 1;
  SearchWorkloadConfig two = replicatedConfig();
  const SearchWorkload w1(one);
  const SearchWorkload w2(two);
  // Same partition fractions (same seed), so partition 0's replica demand
  // must be half the unreplicated CPU demand with equal memory.
  const ResourceVector d1 = w1.shardDemand(0, 600.0);
  const ResourceVector d2 = w2.shardDemand(0, 600.0);
  EXPECT_NEAR(d2[0], d1[0] / 2.0, d1[0] * 1e-9);
  EXPECT_DOUBLE_EQ(d2[1], d1[1]);
}

TEST(ReplicatedSearch, PeakCpuLoadFactorStillOnTarget) {
  const SearchWorkloadConfig config = replicatedConfig();
  const SearchWorkload workload(config);
  const Instance inst = workload.buildInstance(config.peakQps);
  const ResourceVector demand = inst.totalDemand();
  const ResourceVector cap = inst.totalRegularCapacity();
  EXPECT_NEAR(demand[0] / cap[0], config.cpuLoadFactorAtPeak, 1e-9);
}

TEST(ReplicatedSearch, SimulationRunsAndRespondsToLoad) {
  const SearchWorkloadConfig config = replicatedConfig();
  const SearchWorkload workload(config);
  const Instance inst = workload.buildInstance(config.peakQps);
  const auto busy =
      workload.simulate(inst.initialAssignment(), config.peakQps, 3000, 5);
  const auto calm =
      workload.simulate(inst.initialAssignment(), config.peakQps * 0.25, 3000, 5);
  EXPECT_EQ(busy.queries, 3000u);
  EXPECT_GT(busy.p99(), 0.0);
  EXPECT_LT(calm.p99(), busy.p99());
}

TEST(ReplicatedSearch, RouterSpreadsLoadAcrossReplicas) {
  // Two machines, one group with two replicas: power-of-two-choices must
  // keep the two machines' busy fractions close.
  std::vector<Machine> machines(2);
  machines[0] = {0, ResourceVector{100.0, 100.0}, false, 0};
  machines[1] = {1, ResourceVector{100.0, 100.0}, false, 0};
  std::vector<Shard> shards(2);
  shards[0] = {0, ResourceVector{10.0, 10.0}, 1.0};
  shards[1] = {1, ResourceVector{10.0, 10.0}, 1.0};
  const Instance inst(2, std::move(machines), std::move(shards), {0, 1}, 0,
                      ResourceVector{1.0, 1.0}, {0, 0});

  CorpusConfig corpusConfig;
  corpusConfig.docCount = 20000;
  corpusConfig.termCount = 500;
  const Corpus corpus(corpusConfig);
  const QueryGenerator queries(corpus, QueryModelConfig{});

  SimulationConfig sim;
  sim.queryCount = 5000;
  sim.arrivalRate = 100.0;
  const std::vector<double> fractions{1.0, 1.0};
  const auto r = simulateQueries(inst, inst.initialAssignment(), fractions, queries, sim);
  ASSERT_EQ(r.machineBusyFraction.size(), 2u);
  EXPECT_GT(r.machineBusyFraction[0], 0.0);
  EXPECT_GT(r.machineBusyFraction[1], 0.0);
  const double ratio = r.machineBusyFraction[0] /
                       std::max(1e-12, r.machineBusyFraction[1]);
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.4);
}

TEST(ReplicatedSearch, ReplicationRaisesMemoryFootprint) {
  SearchWorkloadConfig one = replicatedConfig();
  one.replicationFactor = 1;
  const SearchWorkload w1(one);
  const SearchWorkload w2(replicatedConfig());
  const Instance i1 = w1.buildInstance(600.0);
  const Instance i2 = w2.buildInstance(600.0);
  // Same memLoadFactor target, double the index bytes -> machines sized
  // with twice the memory capacity.
  EXPECT_NEAR(i2.machine(0).capacity[1] / i1.machine(0).capacity[1], 2.0, 1e-9);
}

TEST(ReplicatedSearch, RejectsReplicationOverMachines) {
  SearchWorkloadConfig config = replicatedConfig();
  config.replicationFactor = 9;  // > 8 machines
  EXPECT_THROW(SearchWorkload{config}, std::invalid_argument);
}

}  // namespace
}  // namespace resex
