// Regression suite for the async submit() contract: the completion
// callback fires exactly once per call on *every* path — cache hit,
// normal completion, deadline expiry, and forced queue rejection. The
// transport layer (net::Server) keys per-connection in-flight accounting
// on this; a double or missing callback corrupts request matching.

#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/broker.hpp"

namespace resex::serve {
namespace {

PartitionedIndex tinyIndex(std::size_t partitions) {
  SyntheticDocConfig config;
  config.seed = 23;
  config.docCount = 1500;
  config.termCount = 300;
  return PartitionedIndex(config.termCount, generateDocuments(config), partitions);
}

Instance tinyInstance(std::size_t partitions, std::size_t machines) {
  std::vector<Machine> ms(machines);
  for (std::size_t m = 0; m < machines; ++m)
    ms[m] = {static_cast<MachineId>(m), ResourceVector{1.0, 100.0}, false, 0};
  std::vector<Shard> shards(partitions);
  std::vector<MachineId> initial(partitions);
  for (std::size_t s = 0; s < partitions; ++s) {
    shards[s] = {static_cast<ShardId>(s), ResourceVector{0.01, 1.0}, 1.0};
    initial[s] = static_cast<MachineId>(s % machines);
  }
  return Instance(2, std::move(ms), std::move(shards), std::move(initial), 0,
                  ResourceVector{1.0, 1.0});
}

/// Counts completions per submit; any slot != 1 at the end is a bug.
class CompletionLedger {
 public:
  explicit CompletionLedger(std::size_t slots) : counts_(slots, 0) {}

  QueryCompletion callback(std::size_t slot) {
    return [this, slot](QueryResult result) {
      std::lock_guard lock(mutex_);
      ++counts_[slot];
      ++total_;
      results_.resize(counts_.size());
      results_[slot] = std::move(result);
    };
  }

  bool waitForTotal(std::size_t n, std::chrono::milliseconds budget) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    for (;;) {
      {
        std::lock_guard lock(mutex_);
        if (total_ >= n) return true;
      }
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  bool waitForAll(std::chrono::milliseconds budget) {
    std::size_t slots;
    {
      std::lock_guard lock(mutex_);
      slots = counts_.size();
    }
    return waitForTotal(slots, budget);
  }

  /// Every slot exactly one, no strays. Call after waitForAll plus a
  /// settle delay so a late double-fire would be caught.
  void expectExactlyOnce() {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < counts_.size(); ++i)
      EXPECT_EQ(counts_[i], 1) << "submit slot " << i;
    EXPECT_EQ(total_, counts_.size());
  }

  QueryResult result(std::size_t slot) {
    std::lock_guard lock(mutex_);
    return results_.at(slot);
  }

 private:
  std::mutex mutex_;
  std::vector<int> counts_;
  std::vector<QueryResult> results_;
  std::size_t total_ = 0;
};

TEST(BrokerSubmit, CompletionFiresExactlyOnceUnderForcedRejection) {
  // One slow machine with a one-slot queue and non-blocking pushes: most
  // submits lose the tryPush race, exercising the degraded path where
  // the submitting thread itself must deliver the completion.
  const PartitionedIndex index = tinyIndex(2);
  const Instance instance = tinyInstance(2, 1);
  ServeConfig config;
  config.queueCapacity = 1;
  config.serviceFixedSeconds = 0.002;
  config.cacheCapacity = 0;  // every query must take the queue path
  QueryBroker broker(instance, instance.initialAssignment(), index, config);

  constexpr std::size_t kSubmits = 200;
  CompletionLedger ledger(kSubmits);
  SubmitOptions options;
  options.waitForQueue = false;
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < kSubmits; ++i) {
    const std::vector<TermId> terms = {static_cast<TermId>(i % 250),
                                       static_cast<TermId>((i * 7) % 250)};
    if (!broker.submit(terms, options, ledger.callback(i))) ++rejected;
  }
  ASSERT_TRUE(ledger.waitForAll(std::chrono::seconds(30)));
  // A slow double-fire from the worker or timer thread would land here.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ledger.expectExactlyOnce();
  // The forcing worked: with a one-slot queue and 2ms service time the
  // burst cannot all fit. (If this ever flakes the setup lost its bite.)
  EXPECT_GT(rejected, 0u);
  broker.shutdown();
}

TEST(BrokerSubmit, CompletionFiresOnceOnCacheHitAndMiss) {
  const PartitionedIndex index = tinyIndex(2);
  const Instance instance = tinyInstance(2, 2);
  ServeConfig config;
  config.cacheCapacity = 64;
  QueryBroker broker(instance, instance.initialAssignment(), index, config);
  CompletionLedger ledger(2);
  const std::vector<TermId> terms = {5, 40};
  ASSERT_TRUE(broker.submit(terms, SubmitOptions{}, ledger.callback(0)));
  ASSERT_TRUE(ledger.waitForTotal(1, std::chrono::seconds(10)));
  // Second submit of the same query completes inline from the cache.
  ASSERT_TRUE(broker.submit(terms, SubmitOptions{}, ledger.callback(1)));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ledger.expectExactlyOnce();
  EXPECT_FALSE(ledger.result(0).cacheHit);
  EXPECT_TRUE(ledger.result(1).cacheHit);
  EXPECT_TRUE(ledger.result(1).complete);
  broker.shutdown();
}

TEST(BrokerSubmit, CompletionFiresOnceOnDeadlineExpiry) {
  // Serialized slow partitions against a short deadline: the timer
  // thread delivers a partial result, and nobody delivers a second one
  // when the shed tail finishes draining.
  const PartitionedIndex index = tinyIndex(4);
  const Instance instance = tinyInstance(4, 1);
  ServeConfig config;
  config.serviceFixedSeconds = 0.03;
  config.cacheCapacity = 0;
  QueryBroker broker(instance, instance.initialAssignment(), index, config);
  CompletionLedger ledger(1);
  SubmitOptions options;
  options.deadlineSeconds = 0.05;  // 4 tasks want 120 ms
  broker.submit({1, 2}, options, ledger.callback(0));
  ASSERT_TRUE(ledger.waitForAll(std::chrono::seconds(10)));
  EXPECT_FALSE(ledger.result(0).complete);
  // Let the remaining tasks drain; their workers must not re-complete.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ledger.expectExactlyOnce();
  broker.shutdown();
}

TEST(BrokerSubmit, DeadlineHeapDoesNotRetainDeliveredQueries) {
  // Long client deadlines must not pin completed queries in the timer
  // heap until expiry: with 30 s deadlines the heap would otherwise grow
  // as deadline x QPS and retain every query's terms and partials — a
  // multi-GB vector any client can trigger. Delivered entries die with
  // their last task reference and get compacted out, so after the burst
  // the heap holds at most one compaction window of dead entries.
  const PartitionedIndex index = tinyIndex(2);
  const Instance instance = tinyInstance(2, 2);
  ServeConfig config;
  config.cacheCapacity = 0;  // every query arms a deadline
  config.deadlineSeconds = 30.0;
  QueryBroker broker(instance, instance.initialAssignment(), index, config);
  constexpr std::size_t kQueries = 5000;
  for (std::size_t i = 0; i < kQueries; ++i)
    broker.execute({static_cast<TermId>(i % 250)});
  EXPECT_LE(broker.deadlineHeapSize(), 2048u);
  broker.shutdown();
}

TEST(BrokerSubmit, UnknownTenantThrowsWithoutInvokingCompletion) {
  const PartitionedIndex index = tinyIndex(2);
  const Instance instance = tinyInstance(2, 2);
  QueryBroker broker(instance, instance.initialAssignment(), index, ServeConfig{});
  CompletionLedger ledger(1);
  SubmitOptions options;
  options.tenant = 404;
  EXPECT_THROW(broker.submit({3}, options, ledger.callback(0)),
               std::out_of_range);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(ledger.waitForAll(std::chrono::milliseconds(1)));
  broker.shutdown();
}

}  // namespace
}  // namespace resex::serve
