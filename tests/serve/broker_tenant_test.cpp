// Tenant-mode QueryBroker end-to-end: token admission, per-tenant
// accounting, missed-push bookkeeping, and the /debug/tenants JSON.
#include "serve/broker.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/mini_json.hpp"
#include "index/partition.hpp"
#include "obs/slo.hpp"

namespace resex::serve {
namespace {

using resex::testing::MiniJson;

PartitionedIndex smallIndex(std::size_t partitions, std::uint64_t seed = 17) {
  SyntheticDocConfig config;
  config.seed = seed;
  config.docCount = 4000;
  config.termCount = 600;
  return PartitionedIndex(config.termCount, generateDocuments(config), partitions);
}

Instance hostingInstance(std::size_t partitions, std::size_t machines) {
  std::vector<Machine> ms(machines);
  for (std::size_t m = 0; m < machines; ++m)
    ms[m] = {static_cast<MachineId>(m), ResourceVector{1.0, 100.0}, false, 0};
  std::vector<Shard> shards(partitions);
  std::vector<MachineId> initial(partitions);
  std::vector<std::uint32_t> groups(partitions);
  for (std::size_t g = 0; g < partitions; ++g) {
    shards[g] = {static_cast<ShardId>(g), ResourceVector{0.01, 1.0}, 1.0};
    initial[g] = static_cast<MachineId>(g % machines);
    groups[g] = static_cast<std::uint32_t>(g);
  }
  return Instance(2, std::move(ms), std::move(shards), std::move(initial),
                  0, ResourceVector{1.0, 1.0}, std::move(groups));
}

TenantSpec tenant(std::string name, double weight, double guarantee,
                  double burst) {
  TenantSpec s;
  s.name = std::move(name);
  s.weight = weight;
  s.guaranteedShare = guarantee;
  s.burstLimit = burst;
  s.slo.p99TargetSeconds = 10.0;
  return s;
}

std::vector<TermId> query(std::initializer_list<TermId> terms) { return terms; }

/// Tokens released by workers lag delivery by a moment; wait for them.
void awaitAllTokensFree(const QueryBroker& broker) {
  const TokenBank* bank = broker.tokenBank();
  ASSERT_NE(bank, nullptr);
  for (int spins = 0;
       bank->freeTokens() != bank->totalTokens() && spins < 500; ++spins)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(bank->freeTokens(), bank->totalTokens());
}

TEST(QueryBrokerTenants, ServesCorrectResultsAndAttributesPerTenant) {
  obs::SloRegistry::global().reset();
  const PartitionedIndex index = smallIndex(4);
  const Instance instance = hostingInstance(4, 2);
  ServeConfig config;
  config.tenants = {tenant("interactive", 4.0, 0.5, 1.0),
                    tenant("batch", 1.0, 0.1, 2.0)};
  // Every query needs one token per partition (4): keep each tenant's cap
  // comfortably above that so admission is not the subject here.
  config.tokensPerWorker = 8.0;
  QueryBroker broker(instance, instance.initialAssignment(), index, config);
  EXPECT_TRUE(broker.tenantMode());

  for (int i = 0; i < 6; ++i) {
    const QueryResult r = broker.execute(query({static_cast<TermId>(i)}), 0);
    EXPECT_TRUE(r.complete);
    EXPECT_FALSE(r.rejected);
    EXPECT_EQ(r.tenant, 0u);
  }
  for (int i = 0; i < 3; ++i) {
    const QueryResult r =
        broker.execute(query({static_cast<TermId>(100 + i)}), 1);
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(r.tenant, 1u);
  }
  // Results stay oracle-identical in tenant mode.
  const auto q = query({25, 3, 110});
  const QueryResult result = broker.execute(q, 1);
  const auto reference = index.searchTopK(q, config.topK, config.bm25);
  ASSERT_EQ(result.docs.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i)
    EXPECT_EQ(result.docs[i].doc, reference[i].doc);

  awaitAllTokensFree(broker);
  const ObservedLoad load = broker.takeObservedLoad();
  ASSERT_EQ(load.tenants.size(), 2u);
  EXPECT_EQ(load.tenants[0].name, "interactive");
  EXPECT_EQ(load.tenants[0].queries, 6u);
  EXPECT_EQ(load.tenants[1].queries, 4u);
  // Per-tenant task/posting heat sums to the per-shard totals.
  EXPECT_EQ(load.tenants[0].tasks, 24u);  // 6 queries x 4 partitions
  EXPECT_EQ(load.tenants[1].tasks, 16u);
  EXPECT_GT(load.tenants[0].p99, 0.0);

  // Per-tenant SLO classes registered and recording under default names.
  const obs::SloWindow* window =
      obs::SloRegistry::global().find("tenant.interactive");
  ASSERT_NE(window, nullptr);
  EXPECT_EQ(window->snapshot().total, 6u);
  EXPECT_THROW(broker.execute(q, 7), std::out_of_range);
  obs::SloRegistry::global().reset();
}

TEST(QueryBrokerTenants, OverShareTenantIsRejectedAtAdmissionNotShed) {
  obs::SloRegistry::global().reset();
  const PartitionedIndex index = smallIndex(2);
  const Instance instance = hostingInstance(2, 2);
  ServeConfig config;
  // "blocked" has no guarantee and burstLimit 0: cap 0 tokens, so every
  // query it offers is turned away at admission while "served" is
  // untouched — and crucially nothing of "blocked" ever reaches a queue.
  config.tenants = {tenant("served", 1.0, 0.5, 1.0),
                    tenant("blocked", 1.0, 0.0, 0.0)};
  QueryBroker broker(instance, instance.initialAssignment(), index, config);

  const QueryResult rejected = broker.execute(query({5}), 1);
  EXPECT_TRUE(rejected.rejected);
  EXPECT_FALSE(rejected.complete);
  EXPECT_EQ(rejected.partitionsAnswered, 0u);
  EXPECT_TRUE(rejected.docs.empty());

  const QueryResult served = broker.execute(query({5}), 0);
  EXPECT_TRUE(served.complete);
  EXPECT_FALSE(served.rejected);

  awaitAllTokensFree(broker);
  const ObservedLoad load = broker.takeObservedLoad();
  EXPECT_EQ(load.tenants[1].rejectedOverShare, 1u);
  EXPECT_EQ(load.tenants[1].rejectedNoToken, 0u);
  EXPECT_EQ(load.tenants[1].tasks, 0u);      // no queue pollution
  EXPECT_EQ(load.tenants[1].shedTasks, 0u);  // rejected != shed
  EXPECT_EQ(load.tenants[0].rejectedOverShare, 0u);
  // The rejection burned error budget but left latency quantiles alone.
  const obs::SloWindow* window = obs::SloRegistry::global().find("tenant.blocked");
  ASSERT_NE(window, nullptr);
  const obs::SloSnapshot snap = window->snapshot();
  EXPECT_EQ(snap.total, 1u);
  EXPECT_EQ(snap.errors, 1u);
  EXPECT_EQ(load.tenants[1].queries, 1u);
  obs::SloRegistry::global().reset();
}

TEST(QueryBrokerTenants, MissedPushesDegradeOncePerTenantAndReturnTokens) {
  obs::SloRegistry::global().reset();
  // One machine, one worker, tiny queue, slow paced service, short
  // deadline: later partitions cannot be pushed before the deadline, so
  // the client must account them as missed exactly once, come back with a
  // degraded result instead of hanging, and every token must find its way
  // home (client-side for missed pushes, worker-side for the rest).
  const PartitionedIndex index = smallIndex(4);
  const Instance instance = hostingInstance(4, 1);
  ServeConfig config;
  config.queueCapacity = 1;
  config.deadlineSeconds = 0.08;
  config.serviceFixedSeconds = 0.05;
  config.tenants = {tenant("only", 1.0, 1.0, 1.0)};
  config.tokensPerWorker = 16.0;  // admission is not the constraint here
  QueryBroker broker(instance, instance.initialAssignment(), index, config);

  const auto t0 = std::chrono::steady_clock::now();
  const QueryResult result = broker.execute(query({1, 2}), 0);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(result.complete);
  EXPECT_FALSE(result.rejected);  // admitted, then degraded by backpressure
  EXPECT_LT(result.partitionsAnswered, 4u);
  // The client returned at its deadline, not after 4 x 50 ms of service:
  // remaining reached zero (missed pushes counted once, drained tasks
  // delivered or shed) rather than deadlocking.
  EXPECT_LT(wall.count(), 1.0);

  awaitAllTokensFree(broker);
  std::uint64_t expired = 0, queries = 0;
  for (int spins = 0; expired == 0 && spins < 100; ++spins) {
    const ObservedLoad load = broker.takeObservedLoad();
    ASSERT_EQ(load.tenants.size(), 1u);
    expired += load.tenants[0].expiredQueries;
    queries += load.tenants[0].queries;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(expired, 1u);
  EXPECT_EQ(queries, 1u);
  obs::SloRegistry::global().reset();
}

TEST(QueryBrokerTenants, ShutdownWithTenantTrafficReturnsEveryToken) {
  obs::SloRegistry::global().reset();
  const PartitionedIndex index = smallIndex(4);
  const Instance instance = hostingInstance(4, 2);
  ServeConfig config;
  config.serviceFixedSeconds = 0.004;
  config.tenants = {tenant("a", 2.0, 0.3, 1.5), tenant("b", 1.0, 0.2, 1.5)};
  QueryBroker broker(instance, instance.initialAssignment(), index, config);
  std::atomic<int> cancelled{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c)
    clients.emplace_back([&, c] {
      for (int i = 0; i < 25; ++i) {
        const QueryResult r = broker.execute(
            query({static_cast<TermId>(i)}), static_cast<TenantId>(c % 2));
        if (r.cancelled) cancelled.fetch_add(1, std::memory_order_relaxed);
      }
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  broker.shutdown();
  for (std::thread& t : clients) t.join();
  EXPECT_GT(cancelled.load(), 0);
  // Drain-on-close popped every accepted task, so workers (and clients,
  // for pushes the closed queues refused) returned every token.
  const TokenBank* bank = broker.tokenBank();
  ASSERT_NE(bank, nullptr);
  EXPECT_EQ(bank->freeTokens(), bank->totalTokens());
  obs::SloRegistry::global().reset();
}

TEST(QueryBrokerTenants, TenantsJsonReportsSpecTokensAndHeat) {
  obs::SloRegistry::global().reset();
  const PartitionedIndex index = smallIndex(2);
  const Instance instance = hostingInstance(2, 2);
  ServeConfig config;
  config.workersPerMachine = 2;
  config.tokensPerWorker = 3.0;
  config.tenants = {tenant("interactive", 4.0, 0.5, 1.0),
                    tenant("batch", 1.0, 0.0, 2.0)};
  QueryBroker broker(instance, instance.initialAssignment(), index, config);
  for (int i = 0; i < 5; ++i) broker.execute(query({static_cast<TermId>(i)}), 0);
  broker.execute(query({50}), 1);
  awaitAllTokensFree(broker);

  const auto json = MiniJson::flatten(broker.tenantsJson());
  EXPECT_EQ(json.at("tenant_mode"), "true");
  EXPECT_EQ(json.at("total_tokens"), "12");  // 2 machines x 2 workers x 3
  EXPECT_EQ(json.at("free_tokens"), "12");
  ASSERT_EQ(json.at("tenants/#size"), "2");
  EXPECT_EQ(json.at("tenants/0/name"), "interactive");
  EXPECT_EQ(json.at("tenants/0/slo_class"), "tenant.interactive");
  EXPECT_EQ(json.at("tenants/0/queries"), "5");
  EXPECT_EQ(json.at("tenants/0/held_tokens"), "0");
  EXPECT_EQ(json.at("tenants/0/entitled_tokens"), "6");  // 0.5 x 12
  EXPECT_EQ(json.at("tenants/1/queries"), "1");
  EXPECT_EQ(json.at("tenants/0/slo/total"), "5");
  EXPECT_EQ(json.at("tenants/0/slo/errors"), "0");

  // Legacy brokers advertise they have nothing tenant-shaped to show.
  QueryBroker legacy(instance, instance.initialAssignment(), index, {});
  const auto legacyJson = MiniJson::flatten(legacy.tenantsJson());
  EXPECT_EQ(legacyJson.at("tenant_mode"), "false");
  EXPECT_EQ(legacy.tokenBank(), nullptr);
  obs::SloRegistry::global().reset();
}

}  // namespace
}  // namespace resex::serve
