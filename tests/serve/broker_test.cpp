#include "serve/broker.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/mini_json.hpp"
#include "index/partition.hpp"
#include "obs/context.hpp"
#include "obs/slo.hpp"

namespace resex::serve {
namespace {

using resex::testing::MiniJson;

PartitionedIndex smallIndex(std::size_t partitions, std::uint64_t seed = 17) {
  SyntheticDocConfig config;
  config.seed = seed;
  config.docCount = 4000;
  config.termCount = 600;
  return PartitionedIndex(config.termCount, generateDocuments(config), partitions);
}

/// `partitions * replication` physical shards on `machines` machines:
/// replica r of partition g is shard g * replication + r, placed on
/// machine (g + r) % machines (distinct per group when replication <=
/// machines).
Instance hostingInstance(std::size_t partitions, std::size_t machines,
                         std::size_t replication = 1) {
  std::vector<Machine> ms(machines);
  for (std::size_t m = 0; m < machines; ++m)
    ms[m] = {static_cast<MachineId>(m), ResourceVector{1.0, 100.0}, false, 0};
  const std::size_t n = partitions * replication;
  std::vector<Shard> shards(n);
  std::vector<MachineId> initial(n);
  std::vector<std::uint32_t> groups(n);
  for (std::size_t g = 0; g < partitions; ++g) {
    for (std::size_t r = 0; r < replication; ++r) {
      const std::size_t s = g * replication + r;
      shards[s] = {static_cast<ShardId>(s), ResourceVector{0.01, 1.0}, 1.0};
      initial[s] = static_cast<MachineId>((g + r) % machines);
      groups[s] = static_cast<std::uint32_t>(g);
    }
  }
  return Instance(2, std::move(ms), std::move(shards), std::move(initial),
                  0, ResourceVector{1.0, 1.0}, std::move(groups));
}

std::vector<TermId> query(std::initializer_list<TermId> terms) { return terms; }

TEST(QueryBroker, CompleteResultsMatchPartitionedSearch) {
  const PartitionedIndex index = smallIndex(4);
  const Instance instance = hostingInstance(4, 2);
  ServeConfig config;
  config.topK = 10;
  QueryBroker broker(instance, instance.initialAssignment(), index, config);
  for (const auto& q :
       {query({0, 7}), query({25, 3, 110}), query({599}), query({42, 42})}) {
    const QueryResult result = broker.execute(q);
    EXPECT_TRUE(result.complete);
    EXPECT_EQ(result.partitionsAnswered, 4u);
    const auto reference = index.searchTopK(q, config.topK, config.bm25);
    ASSERT_EQ(result.docs.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(result.docs[i].doc, reference[i].doc);
      EXPECT_NEAR(result.docs[i].score, reference[i].score, 1e-9);
    }
  }
}

TEST(QueryBroker, DeadlineExpiryDegradesToPartialResult) {
  const PartitionedIndex index = smallIndex(4);
  const Instance instance = hostingInstance(4, 1);  // all partitions serialized
  ServeConfig config;
  config.deadlineSeconds = 0.05;
  config.serviceFixedSeconds = 0.03;  // 4 tasks want 120 ms > the deadline
  QueryBroker broker(instance, instance.initialAssignment(), index, config);
  const QueryResult result = broker.execute(query({1, 2}));
  EXPECT_FALSE(result.complete);
  EXPECT_LT(result.partitionsAnswered, 4u);
  EXPECT_GE(result.latencySeconds, 0.04);
  // The client came back at its deadline; the shed tail may still be
  // draining, so accumulate snapshots until all four tasks account.
  std::uint64_t executed = 0, shed = 0, expired = 0;
  for (int spins = 0; executed + shed < 4 && spins < 200; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const ObservedLoad load = broker.takeObservedLoad();
    shed += load.shedTasks;
    expired += load.expiredQueries;
    for (const auto t : load.shardTasks) executed += t;
  }
  EXPECT_EQ(expired, 1u);
  // The tail tasks were shed, not executed: work attribution stays honest.
  EXPECT_GE(shed, 1u);
  EXPECT_EQ(executed + shed, 4u);
}

TEST(QueryBroker, CacheHitsUntilRemapInvalidates) {
  const PartitionedIndex index = smallIndex(2);
  const Instance instance = hostingInstance(2, 2);
  ServeConfig config;
  config.cacheCapacity = 64;
  QueryBroker broker(instance, instance.initialAssignment(), index, config);
  const auto q = query({5, 9});
  EXPECT_FALSE(broker.execute(q).cacheHit);
  const QueryResult hit = broker.execute(q);
  EXPECT_TRUE(hit.cacheHit);
  EXPECT_TRUE(hit.complete);

  std::vector<MachineId> swapped = instance.initialAssignment();
  for (MachineId& m : swapped) m = static_cast<MachineId>(1 - m);
  broker.applyMapping(swapped);
  EXPECT_EQ(broker.mapping(), swapped);
  // Remap dropped the cache; the same query misses, then caches again.
  EXPECT_FALSE(broker.execute(q).cacheHit);
  EXPECT_TRUE(broker.execute(q).cacheHit);
  EXPECT_EQ(broker.cacheStats().invalidations, 1u);
}

TEST(QueryBroker, IncompleteResultsAreNeverCached) {
  const PartitionedIndex index = smallIndex(4);
  const Instance instance = hostingInstance(4, 1);
  ServeConfig config;
  config.cacheCapacity = 64;
  config.deadlineSeconds = 0.05;
  config.serviceFixedSeconds = 0.03;
  QueryBroker broker(instance, instance.initialAssignment(), index, config);
  EXPECT_FALSE(broker.execute(query({3})).complete);
  // A later, unhurried identical query must recompute, not replay the
  // degraded answer.
  EXPECT_FALSE(broker.execute(query({3})).cacheHit);
}

TEST(QueryBroker, DepthRoutingUsesBothReplicas) {
  // One partition, two replicas on two machines. Routing reads live queue
  // depths, so concurrent paced traffic must spill onto the second replica
  // instead of serializing behind the tie-break favourite.
  const PartitionedIndex index = smallIndex(1);
  const Instance instance = hostingInstance(1, 2, /*replication=*/2);
  ServeConfig config;
  config.serviceFixedSeconds = 0.002;
  QueryBroker broker(instance, instance.initialAssignment(), index, config);
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c)
    clients.emplace_back([&] {
      for (int i = 0; i < 50; ++i) broker.execute(query({static_cast<TermId>(i)}));
    });
  for (std::thread& t : clients) t.join();
  const ObservedLoad load = broker.takeObservedLoad();
  const std::uint64_t total = load.shardTasks[0] + load.shardTasks[1];
  EXPECT_EQ(total, 200u);
  EXPECT_GT(load.shardTasks[0], total / 5);
  EXPECT_GT(load.shardTasks[1], total / 5);
}

TEST(QueryBroker, ObservedLoadWindowsResetBetweenSnapshots) {
  const PartitionedIndex index = smallIndex(2);
  const Instance instance = hostingInstance(2, 1);
  QueryBroker broker(instance, instance.initialAssignment(), index, {});
  for (int i = 0; i < 10; ++i) broker.execute(query({static_cast<TermId>(i)}));
  const ObservedLoad first = broker.takeObservedLoad();
  EXPECT_EQ(first.queries, 10u);
  EXPECT_EQ(first.machineTasks[0], 20u);
  EXPECT_EQ(first.shardTasks[0] + first.shardTasks[1], 20u);
  EXPECT_GT(first.windowSeconds, 0.0);
  EXPECT_GT(first.p50, 0.0);
  const ObservedLoad second = broker.takeObservedLoad();
  EXPECT_EQ(second.queries, 0u);
  EXPECT_EQ(second.machineTasks[0], 0u);
  EXPECT_EQ(second.shardTasks[0], 0u);
}

TEST(QueryBroker, PacingChargesConfiguredServiceTime) {
  const PartitionedIndex index = smallIndex(1);
  const Instance instance = hostingInstance(1, 1);
  ServeConfig config;
  config.serviceFixedSeconds = 0.005;
  QueryBroker broker(instance, instance.initialAssignment(), index, config);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 20; ++i) broker.execute(query({static_cast<TermId>(i)}));
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  const ObservedLoad load = broker.takeObservedLoad();
  // 20 paced tasks at 5 ms each: the machine was held busy ~100 ms, and the
  // serialized wall clock cannot beat the emulated service rate.
  EXPECT_GE(load.machineBusySeconds[0], 0.095);
  EXPECT_LT(load.machineBusySeconds[0], 0.5);
  EXPECT_GE(wall.count(), 0.09);
  EXPECT_NEAR(load.shardBusySeconds[0], load.machineBusySeconds[0], 1e-6);
}

TEST(QueryBroker, CleanShutdownWithQueriesInFlight) {
  const PartitionedIndex index = smallIndex(4);
  const Instance instance = hostingInstance(4, 2);
  ServeConfig config;
  config.serviceFixedSeconds = 0.004;
  QueryBroker broker(instance, instance.initialAssignment(), index, config);
  std::atomic<int> cancelled{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c)
    clients.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        const QueryResult result = broker.execute(query({static_cast<TermId>(i)}));
        if (result.cancelled) {
          cancelled.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Accepted queries always resolve: every routed task is either
          // drained by a worker or refused at push, so no client hangs.
          EXPECT_EQ(result.partitionsTotal, 4u);
        }
      }
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  broker.shutdown();
  for (std::thread& t : clients) t.join();
  EXPECT_GT(cancelled.load(), 0);
  EXPECT_TRUE(broker.execute(query({1})).cancelled);
}

TEST(QueryBroker, TracingProducesSpanTreesForKeptQueries) {
  obs::TraceRegistry::global().clear();
  obs::TraceRegistry::global().setEnabled(true);
  {
    const PartitionedIndex index = smallIndex(4);
    const Instance instance = hostingInstance(4, 2);
    ServeConfig config;
    config.tracing = true;
    config.traceKeepSlowestOf = 4;
    QueryBroker broker(instance, instance.initialAssignment(), index, config);
    for (int i = 0; i < 12; ++i)
      EXPECT_TRUE(broker.execute(query({static_cast<TermId>(i)})).complete);

    const std::vector<obs::TraceRecord> traces =
        obs::TraceRegistry::global().recentTraces();
    ASSERT_FALSE(traces.empty());
    EXPECT_LT(traces.size(), 12u);  // tail sampling dropped the fast majority
    const obs::TraceRecord& trace = traces.front();
    // The kept trace carries the whole query tree: root, route, one
    // exec span per partition, and the merge, all under one trace id.
    std::uint32_t rootSpanId = 0;
    std::size_t execSpans = 0;
    bool sawRoute = false, sawMerge = false;
    for (const obs::RichSpan& span : trace.spans) {
      EXPECT_EQ(span.traceId, trace.traceId);
      const std::string name = span.name;
      if (name == "query") rootSpanId = span.spanId;
      if (name == "query.route") sawRoute = true;
      if (name == "query.merge") sawMerge = true;
      if (name == "task.exec") ++execSpans;
    }
    ASSERT_NE(rootSpanId, 0u);
    EXPECT_TRUE(sawRoute);
    EXPECT_TRUE(sawMerge);
    EXPECT_EQ(execSpans, 4u);
    for (const obs::RichSpan& span : trace.spans) {
      if (std::string(span.name) == "task.exec") {
        EXPECT_EQ(span.parentSpanId, rootSpanId);
      }
    }
    broker.shutdown();
  }
  obs::TraceRegistry::global().setEnabled(false);
  obs::TraceRegistry::global().clear();
  obs::TraceRegistry::global().setKeepSlowestOf(64);
}

TEST(QueryBroker, IntrospectionHeatMatchesObservedLoad) {
  const PartitionedIndex index = smallIndex(3);
  const Instance instance = hostingInstance(3, 2);
  QueryBroker broker(instance, instance.initialAssignment(), index, {});
  for (int i = 0; i < 15; ++i) broker.execute(query({static_cast<TermId>(i)}));

  // peek must not consume the window...
  const ObservedLoad peeked = broker.peekObservedLoad();
  EXPECT_EQ(peeked.queries, 15u);

  // ...so the JSON views report the same attribution the controller sees.
  const auto shards = MiniJson::flatten(broker.shardsJson());
  ASSERT_EQ(shards.at("shards/#size"), "3");
  for (std::size_t s = 0; s < 3; ++s) {
    const std::string base = "shards/" + std::to_string(s) + "/";
    EXPECT_EQ(shards.at(base + "shard"), std::to_string(s));
    EXPECT_EQ(shards.at(base + "tasks"), std::to_string(peeked.shardTasks[s]));
    EXPECT_EQ(shards.at(base + "machine"),
              std::to_string(broker.mapping()[s]));
  }
  const auto debug = MiniJson::flatten(broker.debugJson());
  EXPECT_EQ(debug.at("queries"), "15");
  EXPECT_EQ(debug.at("machines/#size"), "2");

  // The real harvest still sees everything peek left in place.
  const ObservedLoad taken = broker.takeObservedLoad();
  EXPECT_EQ(taken.queries, 15u);
  for (std::size_t s = 0; s < 3; ++s)
    EXPECT_EQ(taken.shardTasks[s], peeked.shardTasks[s]);
  EXPECT_EQ(broker.takeObservedLoad().queries, 0u);
}

TEST(QueryBroker, ApplyShardMoveRemapsRoutingAndResetsHeat) {
  const PartitionedIndex index = smallIndex(2);
  const Instance instance = hostingInstance(2, 2);  // shard g on machine g
  ServeConfig config;
  QueryBroker broker(instance, instance.initialAssignment(), index, config);
  for (int i = 0; i < 8; ++i) broker.execute(query({static_cast<TermId>(i)}));
  const ObservedLoad before = broker.peekObservedLoad();
  EXPECT_GT(before.shardTasks[0], 0u);
  EXPECT_GT(before.shardTasks[1], 0u);

  broker.applyShardMove(0, 0, 1);
  EXPECT_EQ(broker.mapping()[0], 1u);
  EXPECT_EQ(broker.mapping()[1], 1u);

  // Heat attribution for the moved shard restarts from zero (the departed
  // replica's history must not bias the next replan); the other shard's
  // window survives untouched.
  const ObservedLoad after = broker.peekObservedLoad();
  EXPECT_EQ(after.shardTasks[0], 0u);
  EXPECT_EQ(after.shardTasks[1], before.shardTasks[1]);
  const auto shards = MiniJson::flatten(broker.shardsJson());
  EXPECT_EQ(shards.at("shards/0/machine"), "1");
  EXPECT_EQ(shards.at("shards/0/tasks"), "0");

  // Serving continues on the new placement with oracle-identical results.
  const auto q = query({5, 9});
  const QueryResult result = broker.execute(q);
  EXPECT_TRUE(result.complete);
  const auto reference = index.searchTopK(q, config.topK, config.bm25);
  ASSERT_EQ(result.docs.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(result.docs[i].doc, reference[i].doc);
    EXPECT_NEAR(result.docs[i].score, reference[i].score, 1e-9);
  }
}

TEST(QueryBroker, ApplyShardMoveInvalidatesCachedResultsTouchingTheShard) {
  const PartitionedIndex index = smallIndex(2);
  const Instance instance = hostingInstance(2, 2);
  ServeConfig config;
  config.cacheCapacity = 64;
  QueryBroker broker(instance, instance.initialAssignment(), index, config);
  broker.execute(query({3, 4}));
  EXPECT_TRUE(broker.execute(query({3, 4})).cacheHit);

  broker.applyShardMove(1, 1, 0);
  // With one replica per partition every cached entry was served by shard
  // 1, so the move drops the working set (selectivity with replicas is
  // unit-tested on the cache itself).
  const CacheStats stats = broker.cacheStats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_GE(stats.entriesInvalidated, 1u);
  const QueryResult refill = broker.execute(query({3, 4}));
  EXPECT_FALSE(refill.cacheHit);
  EXPECT_TRUE(refill.complete);
  EXPECT_TRUE(broker.execute(query({3, 4})).cacheHit);  // repopulated
}

TEST(QueryBroker, ApplyShardMoveValidatesArguments) {
  const PartitionedIndex index = smallIndex(2);
  const Instance instance = hostingInstance(2, 2);
  QueryBroker broker(instance, instance.initialAssignment(), index, {});
  EXPECT_THROW(broker.applyShardMove(0, 1, 1), std::invalid_argument);  // wrong from
  EXPECT_THROW(broker.applyShardMove(9, 0, 1), std::invalid_argument);  // no such shard
  EXPECT_THROW(broker.applyShardMove(0, 0, 9), std::invalid_argument);  // no such machine
  EXPECT_EQ(broker.mapping()[0], 0u);  // rejected moves leave routing alone
}

TEST(QueryBroker, SloClassRecordsEveryQuery) {
  obs::SloRegistry::global().reset();
  const PartitionedIndex index = smallIndex(2);
  const Instance instance = hostingInstance(2, 1);
  ServeConfig config;
  config.sloClass = "test.broker";
  config.slo.p99TargetSeconds = 10.0;  // nothing breaches
  QueryBroker broker(instance, instance.initialAssignment(), index, config);
  for (int i = 0; i < 8; ++i) broker.execute(query({static_cast<TermId>(i)}));
  const obs::SloWindow* window = obs::SloRegistry::global().find("test.broker");
  ASSERT_NE(window, nullptr);
  const obs::SloSnapshot snap = window->snapshot();
  EXPECT_EQ(snap.total, 8u);
  EXPECT_EQ(snap.errors, 0u);
  EXPECT_EQ(snap.latencyBreaches, 0u);
  EXPECT_GT(snap.p99, 0.0);
  obs::SloRegistry::global().reset();
}

}  // namespace
}  // namespace resex::serve
