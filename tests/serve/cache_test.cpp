#include "serve/lru_cache.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace resex::serve {
namespace {

ResultKey key(std::vector<TermId> terms, std::uint32_t k = 10) {
  return ResultKey{std::move(terms), k};
}

std::vector<ScoredDoc> docs(DocId id) { return {{id, 1.0}}; }

TEST(ShardedLruCache, MissThenHitRoundTrip) {
  ShardedLruCache cache(16, 2);
  std::vector<ScoredDoc> out;
  EXPECT_FALSE(cache.get(key({1, 2}), out));
  cache.put(key({1, 2}), docs(7));
  ASSERT_TRUE(cache.get(key({1, 2}), out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].doc, 7u);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(ShardedLruCache, KeyIncludesKNotJustTerms) {
  ShardedLruCache cache(16, 2);
  cache.put(key({1, 2}, 10), docs(1));
  std::vector<ScoredDoc> out;
  EXPECT_FALSE(cache.get(key({1, 2}, 5), out));
  EXPECT_TRUE(cache.get(key({1, 2}, 10), out));
}

TEST(ShardedLruCache, EvictsLeastRecentlyUsed) {
  // One shard so the LRU order is global and deterministic.
  ShardedLruCache cache(2, 1);
  cache.put(key({1}), docs(1));
  cache.put(key({2}), docs(2));
  std::vector<ScoredDoc> out;
  EXPECT_TRUE(cache.get(key({1}), out));  // refresh {1}; {2} is now LRU
  cache.put(key({3}), docs(3));           // evicts {2}
  EXPECT_TRUE(cache.get(key({1}), out));
  EXPECT_FALSE(cache.get(key({2}), out));
  EXPECT_TRUE(cache.get(key({3}), out));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ShardedLruCache, ClearDropsEverythingAndCountsInvalidation) {
  ShardedLruCache cache(16, 4);
  cache.put(key({1}), docs(1));
  cache.put(key({2}), docs(2));
  EXPECT_EQ(cache.entryCount(), 2u);
  cache.clear();
  EXPECT_EQ(cache.entryCount(), 0u);
  std::vector<ScoredDoc> out;
  EXPECT_FALSE(cache.get(key({1}), out));
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(ShardedLruCache, ZeroCapacityDisablesCaching) {
  ShardedLruCache cache(0, 4);
  EXPECT_FALSE(cache.enabled());
  cache.put(key({1}), docs(1));
  std::vector<ScoredDoc> out;
  EXPECT_FALSE(cache.get(key({1}), out));
  EXPECT_EQ(cache.entryCount(), 0u);
}

TEST(ShardedLruCache, PutRefreshesExistingEntry) {
  ShardedLruCache cache(4, 1);
  cache.put(key({1}), docs(1));
  cache.put(key({1}), docs(9));
  std::vector<ScoredDoc> out;
  ASSERT_TRUE(cache.get(key({1}), out));
  EXPECT_EQ(out[0].doc, 9u);
  EXPECT_EQ(cache.entryCount(), 1u);
}

TEST(ShardedLruCache, InvalidateShardsDropsOnlyTouchedEntries) {
  ShardedLruCache cache(16, 1);
  cache.put(key({1}), docs(1), {0, 2});
  cache.put(key({2}), docs(2), {1, 3});
  cache.put(key({3}), docs(3), {2});
  const ShardId moved[] = {2};
  EXPECT_EQ(cache.invalidateShards(moved), 2u);  // entries {1} and {3}
  std::vector<ScoredDoc> out;
  EXPECT_FALSE(cache.get(key({1}), out));
  EXPECT_TRUE(cache.get(key({2}), out));  // provenance {1,3} untouched
  EXPECT_FALSE(cache.get(key({3}), out));
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.entriesInvalidated, 2u);
}

TEST(ShardedLruCache, EntriesWithoutProvenanceDropOnAnyInvalidation) {
  ShardedLruCache cache(16, 1);
  cache.put(key({1}), docs(1));  // no servedBy recorded
  const ShardId moved[] = {7};
  EXPECT_EQ(cache.invalidateShards(moved), 1u);
  std::vector<ScoredDoc> out;
  EXPECT_FALSE(cache.get(key({1}), out));
}

TEST(ShardedLruCache, InvalidateShardsEmptyListIsANoOp) {
  ShardedLruCache cache(16, 1);
  cache.put(key({1}), docs(1), {0});
  EXPECT_EQ(cache.invalidateShards({}), 0u);
  std::vector<ScoredDoc> out;
  EXPECT_TRUE(cache.get(key({1}), out));
  EXPECT_EQ(cache.stats().invalidations, 0u);
}

TEST(ShardedLruCache, ConcurrentMixedTrafficStaysConsistent) {
  ShardedLruCache cache(64, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&, t] {
      std::vector<ScoredDoc> out;
      for (int i = 0; i < 2000; ++i) {
        const auto k = key({static_cast<TermId>(i % 100), static_cast<TermId>(t)});
        if (!cache.get(k, out)) cache.put(k, docs(static_cast<DocId>(i % 100)));
        if (i % 500 == 0) cache.clear();
      }
    });
  for (std::thread& thread : threads) thread.join();
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 4u * 2000u);
  EXPECT_LE(cache.entryCount(), 64u);
}

}  // namespace
}  // namespace resex::serve
