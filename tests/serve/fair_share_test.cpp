#include "serve/fair_share.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

namespace resex::serve {
namespace {

FairShareTreeSpec onePool(std::vector<double> weights) {
  FairShareTreeSpec spec;
  double total = 0.0;
  for (const double w : weights) total += w;
  spec.pools.push_back({"pool", total});
  for (const double w : weights) spec.tenants.push_back({w, 0});
  return spec;
}

/// Drains `count` dispatches and returns how many each tenant received.
std::vector<std::size_t> dispatchCounts(FairShareScheduler& scheduler,
                                        std::size_t tenants, std::size_t count) {
  std::vector<std::size_t> got(tenants, 0);
  for (std::size_t i = 0; i < count; ++i) {
    const std::optional<TenantId> next = scheduler.takeNext();
    if (!next) break;
    ++got[*next];
  }
  return got;
}

TEST(FairShareScheduler, DispatchesProportionallyToWeight) {
  FairShareScheduler scheduler(onePool({3.0, 1.0}));
  for (int i = 0; i < 20; ++i) {
    scheduler.onEnqueue(0);
    scheduler.onEnqueue(1);
  }
  // Both tenants backlogged: over 8 dispatches the 3:1 weights must yield
  // exactly 6:2 (SFQ is deterministic, not merely proportional in the
  // limit).
  const auto got = dispatchCounts(scheduler, 2, 8);
  EXPECT_EQ(got[0], 6u);
  EXPECT_EQ(got[1], 2u);
}

TEST(FairShareScheduler, IdleTenantBanksNoCredit) {
  FairShareScheduler scheduler(onePool({1.0, 1.0}));
  for (int i = 0; i < 10; ++i) scheduler.onEnqueue(0);
  // Tenant 0 drains alone for a while...
  auto got = dispatchCounts(scheduler, 2, 6);
  EXPECT_EQ(got[0], 6u);
  // ...then tenant 1 wakes with a backlog. Activation catch-up means it
  // rejoins at the current virtual clock instead of its stale zero: equal
  // weights now split dispatches 3:3, not 6:0 to the newcomer.
  for (int i = 0; i < 10; ++i) scheduler.onEnqueue(1);
  got = dispatchCounts(scheduler, 2, 6);
  EXPECT_EQ(got[0], 3u);
  EXPECT_EQ(got[1], 3u);
}

TEST(FairShareScheduler, PoolsShareByMemberSummedWeight) {
  // Pool 0 shelters two weight-1 tenants (pool weight 2); pool 1 one
  // weight-1 tenant. Pool 0 earns 2/3 of dispatches, split evenly inside.
  FairShareTreeSpec spec;
  spec.pools.push_back({"a", 2.0});
  spec.pools.push_back({"b", 1.0});
  spec.tenants.push_back({1.0, 0});
  spec.tenants.push_back({1.0, 0});
  spec.tenants.push_back({1.0, 1});
  FairShareScheduler scheduler(spec);
  for (TenantId t = 0; t < 3; ++t)
    for (int i = 0; i < 10; ++i) scheduler.onEnqueue(t);
  const auto got = dispatchCounts(scheduler, 3, 9);
  EXPECT_EQ(got[0], 3u);
  EXPECT_EQ(got[1], 3u);
  EXPECT_EQ(got[2], 3u);
  EXPECT_EQ(scheduler.pending(0), 7u);
  EXPECT_EQ(scheduler.totalPending(), 21u);
}

TEST(FairShareScheduler, ValidatesTreeAndTransitions) {
  EXPECT_THROW(FairShareScheduler{FairShareTreeSpec{}}, std::invalid_argument);
  EXPECT_THROW(FairShareScheduler{onePool({0.0})}, std::invalid_argument);
  FairShareTreeSpec badPool;
  badPool.pools.push_back({"p", 1.0});
  badPool.tenants.push_back({1.0, 7});  // pool index out of range
  EXPECT_THROW(FairShareScheduler{badPool}, std::invalid_argument);

  FairShareScheduler scheduler(onePool({1.0}));
  EXPECT_EQ(scheduler.pickNext(), std::nullopt);
  EXPECT_THROW(scheduler.onDequeue(0), std::logic_error);  // dequeue while idle
}

TEST(FairShareQueue, FairAcrossTenantsFifoWithin) {
  FairShareQueue<int> queue(16, onePool({2.0, 1.0}));
  for (const int v : {10, 11, 12, 13}) ASSERT_TRUE(queue.push(v, 0));
  for (const int v : {20, 21}) ASSERT_TRUE(queue.push(v, 1));
  EXPECT_EQ(queue.size(), 6u);
  EXPECT_EQ(queue.sizeOf(0), 4u);
  // SFQ with weights 2:1 and ties to the lower index interleaves exactly
  // like this; each tenant's own items stay in arrival order.
  const std::vector<int> expected = {10, 20, 11, 12, 21, 13};
  for (const int want : expected) {
    const std::optional<int> got = queue.pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, want);
  }
}

TEST(FairShareQueue, PushUntilRejectsAlreadyExpiredDeadline) {
  FairShareQueue<int> queue(4, onePool({1.0}));
  const auto past = std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  // Room available, deadline already gone: the push must refuse instead of
  // enqueueing work the worker is guaranteed to shed.
  EXPECT_FALSE(queue.pushUntil(1, 0, past));
  EXPECT_EQ(queue.size(), 0u);
  const auto future = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  EXPECT_TRUE(queue.pushUntil(2, 0, future));
  EXPECT_EQ(queue.size(), 1u);
}

TEST(FairShareQueue, PushUntilTimesOutWhenFull) {
  FairShareQueue<int> queue(1, onePool({1.0}));
  ASSERT_TRUE(queue.push(1, 0));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(queue.pushUntil(
      2, 0, start + std::chrono::milliseconds(30)));
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(25));
  EXPECT_EQ(queue.size(), 1u);
}

TEST(FairShareQueue, CloseDrainsRemainingItemsThenReturnsNull) {
  FairShareQueue<int> queue(8, onePool({1.0, 1.0}));
  ASSERT_TRUE(queue.push(1, 0));
  ASSERT_TRUE(queue.push(2, 1));
  queue.close();
  EXPECT_FALSE(queue.push(3, 0));  // closed: new work refused
  EXPECT_TRUE(queue.pop().has_value());
  EXPECT_TRUE(queue.pop().has_value());  // drain-on-close
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(FairShareQueue, BlockedPopWakesOnPush) {
  FairShareQueue<int> queue(4, onePool({1.0}));
  std::optional<int> got;
  std::thread consumer([&] { got = queue.pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(queue.push(42, 0));
  consumer.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 42);
}

}  // namespace
}  // namespace resex::serve
