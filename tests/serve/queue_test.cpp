#include "serve/mpmc_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace resex::serve {
namespace {

TEST(MpmcQueue, FifoOrderSingleThread) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop(), i);
  EXPECT_EQ(q.size(), 0u);
}

TEST(MpmcQueue, ZeroCapacityIsBumpedToOne) {
  MpmcQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.push(7));
  EXPECT_EQ(q.pop(), 7);
}

TEST(MpmcQueue, PushBlocksWhenFullUntilPop) {
  MpmcQueue<int> q(1);
  EXPECT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // backpressured on the full queue
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop(), 2);
}

TEST(MpmcQueue, PushUntilTimesOutWhenFull) {
  MpmcQueue<int> q(1);
  EXPECT_TRUE(q.push(1));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
  EXPECT_FALSE(q.pushUntil(2, deadline));
  EXPECT_EQ(q.size(), 1u);
}

TEST(MpmcQueue, PushUntilRejectsAlreadyExpiredDeadline) {
  // Regression: an expired deadline with room in the queue used to enqueue
  // anyway (the wait predicate was already true), burning a bounded slot on
  // work the worker is guaranteed to shed. The push must fail up front so
  // the producer counts the item as missed immediately.
  MpmcQueue<int> q(8);
  const auto past =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  EXPECT_FALSE(q.pushUntil(1, past));
  EXPECT_EQ(q.size(), 0u);
  // A live deadline with room still accepts.
  EXPECT_TRUE(q.pushUntil(2, std::chrono::steady_clock::now() +
                                 std::chrono::seconds(5)));
  EXPECT_EQ(q.size(), 1u);
}

TEST(MpmcQueue, CloseRejectsProducersButDrainsConsumers) {
  MpmcQueue<int> q(8);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(3));
  EXPECT_FALSE(q.pushUntil(3, std::chrono::steady_clock::now() +
                                  std::chrono::milliseconds(5)));
  // Drain-on-close: accepted items still come out, then nullopt.
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(MpmcQueue, CloseWakesBlockedConsumer) {
  MpmcQueue<int> q(4);
  std::thread consumer([&] { EXPECT_EQ(q.pop(), std::nullopt); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
}

TEST(MpmcQueue, ConcurrentProducersConsumersDeliverEverything) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  MpmcQueue<int> q(16);
  std::atomic<long> sum{0};
  std::atomic<int> received{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c)
    threads.emplace_back([&] {
      while (auto item = q.pop()) {
        sum.fetch_add(*item, std::memory_order_relaxed);
        received.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (int p = 0; p < kProducers; ++p)
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i)
        EXPECT_TRUE(q.push(p * kPerProducer + i));
    });
  for (std::size_t t = kConsumers; t < threads.size(); ++t) threads[t].join();
  q.close();
  for (int c = 0; c < kConsumers; ++c) threads[c].join();
  const int total = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), total);
  EXPECT_EQ(sum.load(), static_cast<long>(total) * (total - 1) / 2);
}

}  // namespace
}  // namespace resex::serve
