#include "serve/router.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace resex::serve {
namespace {

TEST(Router, SingleCandidateAlwaysChosen) {
  Rng rng(1);
  const std::vector<std::size_t> depths{42};
  for (const RoutingPolicy policy :
       {RoutingPolicy::kRandom, RoutingPolicy::kPowerOfTwo,
        RoutingPolicy::kLeastLoaded}) {
    for (int i = 0; i < 20; ++i)
      EXPECT_EQ(chooseReplica(policy, depths, rng), 0u);
  }
}

TEST(Router, LeastLoadedPicksMinimumTieBreakingLow) {
  Rng rng(2);
  const std::vector<std::size_t> depths{5, 3, 3, 9};
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(chooseReplica(RoutingPolicy::kLeastLoaded, depths, rng), 1u);
}

TEST(Router, RandomCoversAllReplicas) {
  Rng rng(3);
  const std::vector<std::size_t> depths{0, 0, 0, 0};
  std::set<std::size_t> seen;
  for (int i = 0; i < 400; ++i)
    seen.insert(chooseReplica(RoutingPolicy::kRandom, depths, rng));
  EXPECT_EQ(seen.size(), depths.size());
}

// Regression: power-of-two-choices must sample two *distinct* replicas.
// With replacement, the two draws collide with probability 1/2 here and the
// overloaded machine would be chosen regularly; with distinct draws the
// idle replica of a two-replica group wins every single time.
TEST(Router, PowerOfTwoOnTwoReplicasAlwaysPicksIdle) {
  Rng rng(4);
  const std::vector<std::size_t> depths{7, 0};
  for (int i = 0; i < 500; ++i)
    EXPECT_EQ(chooseReplica(RoutingPolicy::kPowerOfTwo, depths, rng), 1u);
}

TEST(Router, PowerOfTwoNeverPicksWorstOfThree) {
  // Distinct draws mean the unique maximum can only win against a copy of
  // itself, which distinct sampling rules out whenever it is drawn with a
  // strictly shorter peer.
  Rng rng(5);
  const std::vector<std::size_t> depths{2, 8, 2};
  int worst = 0;
  for (int i = 0; i < 500; ++i)
    worst += chooseReplica(RoutingPolicy::kPowerOfTwo, depths, rng) == 1u;
  EXPECT_EQ(worst, 0);
}

TEST(Router, PolicyNamesAreStable) {
  EXPECT_STREQ(routingPolicyName(RoutingPolicy::kRandom), "random");
  EXPECT_STREQ(routingPolicyName(RoutingPolicy::kPowerOfTwo), "p2c");
  EXPECT_STREQ(routingPolicyName(RoutingPolicy::kLeastLoaded), "least-loaded");
}

}  // namespace
}  // namespace resex::serve
