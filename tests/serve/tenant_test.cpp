#include "serve/tenant.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace resex::serve {
namespace {

TenantSpec spec(std::string name, double weight = 1.0, double guarantee = 0.0,
                double burst = 1.0, std::string pool = {}) {
  TenantSpec s;
  s.name = std::move(name);
  s.weight = weight;
  s.guaranteedShare = guarantee;
  s.burstLimit = burst;
  s.pool = std::move(pool);
  return s;
}

TEST(TenantRegistry, ValidatesSpecs) {
  EXPECT_THROW(TenantRegistry(std::vector<TenantSpec>{}),
               std::invalid_argument);  // empty
  EXPECT_THROW(TenantRegistry({spec("")}), std::invalid_argument);  // no name
  EXPECT_THROW(TenantRegistry({spec("a", 0.0)}), std::invalid_argument);
  EXPECT_THROW(TenantRegistry({spec("a", -1.0)}), std::invalid_argument);
  EXPECT_THROW(TenantRegistry({spec("a", 1.0, 1.5)}), std::invalid_argument);
  EXPECT_THROW(TenantRegistry({spec("a", 1.0, 0.0, -0.5)}), std::invalid_argument);
  EXPECT_THROW(TenantRegistry({spec("a"), spec("a")}), std::invalid_argument);
  // Guarantees summing past 1.0 would promise overlapping reserves.
  EXPECT_THROW(TenantRegistry({spec("a", 1.0, 0.7), spec("b", 1.0, 0.6)}),
               std::invalid_argument);
  // The boundary itself is legal.
  EXPECT_NO_THROW(TenantRegistry({spec("a", 1.0, 0.7), spec("b", 1.0, 0.3)}));
}

TEST(TenantRegistry, IdsAndSloClassDefaults) {
  TenantSpec custom = spec("batch");
  custom.sloClass = "bulk";
  const TenantRegistry registry({spec("interactive"), custom});
  EXPECT_EQ(registry.count(), 2u);
  EXPECT_EQ(registry.idOf("interactive"), std::optional<TenantId>(0));
  EXPECT_EQ(registry.idOf("batch"), std::optional<TenantId>(1));
  EXPECT_EQ(registry.idOf("nobody"), std::nullopt);
  EXPECT_EQ(registry.sloClassOf(0), "tenant.interactive");  // defaulted
  EXPECT_EQ(registry.sloClassOf(1), "bulk");                // explicit
}

TEST(TenantRegistry, BuildsPoolsByNameWithSummedWeights) {
  const TenantRegistry registry({spec("a", 2.0, 0.0, 1.0, "shared"),
                                 spec("b", 1.0, 0.0, 1.0, "shared"),
                                 spec("c", 1.0)});
  const FairShareTreeSpec& tree = registry.tree();
  ASSERT_EQ(tree.pools.size(), 2u);
  EXPECT_EQ(tree.pools[0].name, "shared");
  EXPECT_DOUBLE_EQ(tree.pools[0].weight, 3.0);  // 2 + 1, member-summed
  EXPECT_EQ(tree.pools[1].name, "pool.c");      // implicit single-member pool
  EXPECT_DOUBLE_EQ(tree.pools[1].weight, 1.0);
  ASSERT_EQ(tree.tenants.size(), 3u);
  EXPECT_EQ(tree.tenants[0].pool, 0u);
  EXPECT_EQ(tree.tenants[1].pool, 0u);
  EXPECT_EQ(tree.tenants[2].pool, 1u);
}

TEST(TenantRegistry, TokenEntitlementMath) {
  const TenantRegistry registry(
      {spec("big", 3.0, 0.5, 1.0), spec("small", 1.0, 0.1, 2.0)});
  EXPECT_DOUBLE_EQ(registry.weightShare(0), 0.75);
  EXPECT_DOUBLE_EQ(registry.weightShare(1), 0.25);
  EXPECT_DOUBLE_EQ(registry.entitledTokens(0, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(registry.entitledTokens(1, 100.0), 10.0);
  // Cap: max(guarantee, burstLimit x weighted share) of all tokens.
  EXPECT_DOUBLE_EQ(registry.capTokens(0, 100.0), 75.0);  // 1.0 * .75 * 100
  EXPECT_DOUBLE_EQ(registry.capTokens(1, 100.0), 50.0);  // 2.0 * .25 * 100
}

TEST(TokenBank, GreedyBindingPicksFreestMachine) {
  const TenantRegistry registry({spec("t", 1.0, 1.0)});
  TokenBank bank({3, 1}, registry);
  EXPECT_EQ(bank.totalTokens(), 4u);
  const std::vector<std::vector<ReplicaHost>> hosts = {{{0, 0}, {1, 1}}};
  std::vector<std::uint32_t> picks;
  ASSERT_EQ(bank.acquire(0, hosts, picks), Admission::kAdmitted);
  EXPECT_EQ(picks[0], 0u);  // machine 0 has 3 free vs 1
  ASSERT_EQ(bank.acquire(0, hosts, picks), Admission::kAdmitted);
  EXPECT_EQ(picks[0], 0u);  // still ahead, 2 vs 1
  ASSERT_EQ(bank.acquire(0, hosts, picks), Admission::kAdmitted);
  EXPECT_EQ(picks[0], 0u);  // tie at 1: first-listed host wins
  EXPECT_EQ(bank.freeOn(0), 0u);
  ASSERT_EQ(bank.acquire(0, hosts, picks), Admission::kAdmitted);
  EXPECT_EQ(picks[0], 1u);  // machine 0 exhausted
  EXPECT_EQ(bank.freeTokens(), 0u);
  EXPECT_EQ(bank.heldBy(0), 4u);
}

TEST(TokenBank, AcquisitionIsAllOrNothingWithRollback) {
  const TenantRegistry registry({spec("t", 1.0, 0.0, 4.0)});  // roomy cap
  TokenBank bank({2, 1}, registry);
  // Both partitions host only on machine 1, which has a single token: the
  // bank has room overall, but binding must fail on the second partition
  // and restore the token provisionally taken for the first.
  const std::vector<std::vector<ReplicaHost>> narrow = {{{1, 0}}, {{1, 1}}};
  std::vector<std::uint32_t> picks;
  EXPECT_EQ(bank.acquire(0, narrow, picks), Admission::kRejectedNoToken);
  EXPECT_EQ(bank.freeOn(1), 1u);
  EXPECT_EQ(bank.freeTokens(), 3u);
  EXPECT_EQ(bank.heldBy(0), 0u);
  // Bank-wide scarcity is also a no-token verdict, not over-share: hold
  // two of the three tokens, then ask for two more.
  const std::vector<std::vector<ReplicaHost>> spread = {{{0, 0}}, {{0, 1}}};
  ASSERT_EQ(bank.acquire(0, spread, picks), Admission::kAdmitted);
  EXPECT_EQ(bank.acquire(0, spread, picks), Admission::kRejectedNoToken);
  EXPECT_EQ(bank.heldBy(0), 2u);
  EXPECT_EQ(bank.freeTokens(), 1u);
}

TEST(TokenBank, CapPinsTenantToItsGuarantee) {
  // burstLimit 0 and no guarantee: cap 0, every acquisition over-share.
  const TenantRegistry registry({spec("capped", 1.0, 0.0, 0.0)});
  TokenBank bank({4}, registry);
  const std::vector<std::vector<ReplicaHost>> hosts = {{{0, 0}}};
  std::vector<std::uint32_t> picks;
  EXPECT_EQ(bank.acquire(0, hosts, picks), Admission::kRejectedOverShare);
  EXPECT_EQ(bank.freeTokens(), 4u);  // nothing moved
}

TEST(TokenBank, BurstLaneCannotInvadeUnusedGuarantees) {
  // A reserves half the 4 tokens; B has no guarantee but a generous cap.
  // B may burst only into the 2 tokens A's idle guarantee leaves unclaimed.
  const TenantRegistry registry(
      {spec("a", 1.0, 0.5, 1.0), spec("b", 1.0, 0.0, 4.0)});
  TokenBank bank({4}, registry);
  const std::vector<std::vector<ReplicaHost>> hosts = {{{0, 0}}};
  std::vector<std::uint32_t> picks;
  ASSERT_EQ(bank.acquire(1, hosts, picks), Admission::kAdmitted);
  ASSERT_EQ(bank.acquire(1, hosts, picks), Admission::kAdmitted);
  EXPECT_EQ(bank.acquire(1, hosts, picks), Admission::kRejectedOverShare);
  EXPECT_EQ(bank.heldBy(1), 2u);
  // A's guaranteed lane is untouched by B's burst: both reserved tokens
  // admit, and only physical exhaustion could have stopped them.
  ASSERT_EQ(bank.acquire(0, hosts, picks), Admission::kAdmitted);
  ASSERT_EQ(bank.acquire(0, hosts, picks), Admission::kAdmitted);
  EXPECT_EQ(bank.freeTokens(), 0u);
  // Releases reopen the burst lane.
  bank.release(0, 0);
  bank.release(0, 0);
  EXPECT_EQ(bank.acquire(1, hosts, picks), Admission::kRejectedOverShare);
  bank.release(1, 0);
  ASSERT_EQ(bank.acquire(1, hosts, picks), Admission::kAdmitted);
}

TEST(TokenBank, AdmissionNames) {
  EXPECT_STREQ(admissionName(Admission::kAdmitted), "admitted");
  EXPECT_STREQ(admissionName(Admission::kRejectedOverShare),
               "rejected_over_share");
  EXPECT_STREQ(admissionName(Admission::kRejectedNoToken), "rejected_no_token");
}

}  // namespace
}  // namespace resex::serve
