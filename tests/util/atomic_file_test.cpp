#include "util/atomic_file.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <string>

namespace resex::util {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("atomic_file_test." + std::to_string(::getpid()) + "." +
            std::to_string(counter()++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static int& counter() {
    static int c = 0;
    return c;
  }
  std::string file(const std::string& name) const { return (path / name).string(); }
};

std::optional<std::string> contentsOf(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

struct Killed {};

TEST(AtomicFile, PublishMakesContentVisibleAndRemovesTemp) {
  const TempDir dir;
  const std::string target = dir.file("data.seg");
  AtomicFileWriter writer(target);
  writer.write("hello", 5);
  writer.write(" world", 6);
  EXPECT_EQ(writer.bytesWritten(), 11u);
  EXPECT_FALSE(fs::exists(target));  // invisible until publish
  writer.publish();
  EXPECT_EQ(contentsOf(target), "hello world");
  EXPECT_FALSE(fs::exists(writer.tempPath()));
}

TEST(AtomicFile, AbortLeavesNothingBehind) {
  const TempDir dir;
  const std::string target = dir.file("data.seg");
  {
    AtomicFileWriter writer(target);
    writer.write("partial", 7);
    writer.abort();
  }
  EXPECT_FALSE(fs::exists(target));
  EXPECT_TRUE(fs::is_empty(dir.path));
}

TEST(AtomicFile, DestructorWithoutPublishCleansUp) {
  const TempDir dir;
  const std::string target = dir.file("data.seg");
  { AtomicFileWriter writer(target); }
  EXPECT_TRUE(fs::is_empty(dir.path));
}

// The satellite regression test: enumerate a simulated kill between every
// protocol step and assert the final path never holds a partial file — at
// every crash point it is either absent, the old complete contents, or the
// new complete contents. Temp debris may survive (a real kill cannot
// unlink first); removeTempFiles is the recovery pass that collects it.
TEST(AtomicFile, CrashAtEveryStepNeverExposesAPartialFile) {
  const AtomicFileStep steps[] = {
      AtomicFileStep::kTempWritten, AtomicFileStep::kTempSynced,
      AtomicFileStep::kRenamed, AtomicFileStep::kDirSynced};
  for (const AtomicFileStep killAt : steps) {
    SCOPED_TRACE(atomicFileStepName(killAt));
    const TempDir dir;
    const std::string target = dir.file("data.seg");
    const std::string oldWorld = "old-complete-contents";
    const std::string newWorld = "new-complete-contents-longer";
    {
      AtomicFileWriter seed(target);
      seed.write(oldWorld.data(), oldWorld.size());
      seed.publish();
    }

    AtomicFileWriter writer(target);
    writer.setStepHook([killAt](AtomicFileStep s) {
      if (s == killAt) throw Killed{};
    });
    writer.write(newWorld.data(), newWorld.size());
    EXPECT_THROW(writer.publish(), Killed);

    // Atomic visibility: the target is exactly one of the two worlds.
    const auto visible = contentsOf(target);
    ASSERT_TRUE(visible.has_value());
    if (killAt == AtomicFileStep::kTempWritten ||
        killAt == AtomicFileStep::kTempSynced) {
      EXPECT_EQ(*visible, oldWorld);
      // A real crash strands the temp; recovery GC collects it.
      EXPECT_TRUE(fs::exists(writer.tempPath()));
      EXPECT_EQ(removeTempFiles(dir.path.string()), 1u);
    } else {
      EXPECT_EQ(*visible, newWorld);
      EXPECT_FALSE(fs::exists(writer.tempPath()));
      EXPECT_EQ(removeTempFiles(dir.path.string()), 0u);
    }
    EXPECT_EQ(contentsOf(target), killAt == AtomicFileStep::kTempWritten ||
                                          killAt == AtomicFileStep::kTempSynced
                                      ? oldWorld
                                      : newWorld);
  }
}

TEST(AtomicFile, CrashWithNoPriorFileLeavesTargetAbsent) {
  const TempDir dir;
  const std::string target = dir.file("fresh.seg");
  AtomicFileWriter writer(target);
  writer.setStepHook([](AtomicFileStep s) {
    if (s == AtomicFileStep::kTempSynced) throw Killed{};
  });
  writer.write("abc", 3);
  EXPECT_THROW(writer.publish(), Killed);
  EXPECT_FALSE(fs::exists(target));
  EXPECT_EQ(removeTempFiles(dir.path.string()), 1u);
  EXPECT_TRUE(fs::is_empty(dir.path));
}

TEST(AtomicFile, AbandonKeepingTempModelsDestinationCrashDebris) {
  const TempDir dir;
  const std::string target = dir.file("data.seg");
  AtomicFileWriter writer(target);
  writer.write("half-copied", 11);
  writer.abandonKeepingTemp();
  EXPECT_FALSE(fs::exists(target));
  EXPECT_TRUE(fs::exists(writer.tempPath()));
  EXPECT_EQ(removeTempFiles(dir.path.string()), 1u);
}

TEST(AtomicFile, TempNameConvention) {
  EXPECT_TRUE(isTempFileName("shard-0001.seg.tmp-1234.5"));
  EXPECT_TRUE(isTempFileName("/a/b/shard-0001.seg.tmp-9"));
  EXPECT_FALSE(isTempFileName("shard-0001.seg"));
  EXPECT_FALSE(isTempFileName("tmp-file.seg"));
  EXPECT_FALSE(isTempFileName("/a/b.tmp-x/shard.seg"));
}

TEST(AtomicFile, RemoveTempFilesSkipsMissingDirAndRealFiles) {
  EXPECT_EQ(removeTempFiles("/nonexistent/definitely/not/here"), 0u);
  const TempDir dir;
  {
    AtomicFileWriter keeper(dir.file("keep.seg"));
    keeper.write("x", 1);
    keeper.publish();
  }
  EXPECT_EQ(removeTempFiles(dir.path.string()), 0u);
  EXPECT_TRUE(fs::exists(dir.file("keep.seg")));
}

}  // namespace
}  // namespace resex::util
