#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace resex {
namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "resex_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_);
    w.writeHeader({"a", "b"});
    w.writeRow({"1", "2"});
  }
  EXPECT_EQ(readFile(path_), "a,b\n1,2\n");
}

TEST_F(CsvTest, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"), std::runtime_error);
}

TEST(CsvEscape, PlainCellUnchanged) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
}

TEST(CsvEscape, CommaTriggersQuoting) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuotesAreDoubled) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineTriggersQuoting) {
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
}

}  // namespace
}  // namespace resex
