#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace resex {
namespace {

std::vector<const char*> argvOf(std::initializer_list<const char*> args) {
  return {args.begin(), args.end()};
}

TEST(Flags, DefaultsApplyWithoutParse) {
  Flags f;
  f.define("count", "7", "a count");
  EXPECT_EQ(f.integer("count"), 7);
}

TEST(Flags, EqualsSyntax) {
  Flags f;
  f.define("rate", "1.0", "rate");
  auto argv = argvOf({"prog", "--rate=2.5"});
  f.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_DOUBLE_EQ(f.real("rate"), 2.5);
}

TEST(Flags, SpaceSyntax) {
  Flags f;
  f.define("name", "x", "name");
  auto argv = argvOf({"prog", "--name", "hello"});
  f.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(f.str("name"), "hello");
}

TEST(Flags, BareFlagIsBooleanTrue) {
  Flags f;
  f.define("verbose", "false", "verbosity");
  auto argv = argvOf({"prog", "--verbose"});
  f.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(f.boolean("verbose"));
}

TEST(Flags, BareFlagFollowedByAnotherFlag) {
  Flags f;
  f.define("verbose", "false", "verbosity");
  f.define("n", "1", "count");
  auto argv = argvOf({"prog", "--verbose", "--n", "3"});
  f.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(f.boolean("verbose"));
  EXPECT_EQ(f.integer("n"), 3);
}

TEST(Flags, UnknownFlagThrows) {
  Flags f;
  f.define("x", "1", "x");
  auto argv = argvOf({"prog", "--bogus=1"});
  EXPECT_THROW(f.parse(static_cast<int>(argv.size()), argv.data()), std::runtime_error);
}

TEST(Flags, UndeclaredLookupThrows) {
  Flags f;
  EXPECT_THROW(f.str("missing"), std::runtime_error);
}

TEST(Flags, DuplicateDefineThrows) {
  Flags f;
  f.define("x", "1", "x");
  EXPECT_THROW(f.define("x", "2", "dup"), std::runtime_error);
}

TEST(Flags, PositionalArgumentsCollected) {
  Flags f;
  f.define("x", "1", "x");
  auto argv = argvOf({"prog", "input.txt", "--x=5", "more"});
  f.parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "more");
}

TEST(Flags, HelpRequested) {
  Flags f;
  auto argv = argvOf({"prog", "--help"});
  f.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(f.helpRequested());
}

TEST(Flags, HelpTextMentionsFlagsAndDefaults) {
  Flags f;
  f.define("machines", "100", "number of machines");
  const std::string text = f.helpText("prog");
  EXPECT_NE(text.find("--machines"), std::string::npos);
  EXPECT_NE(text.find("100"), std::string::npos);
  EXPECT_NE(text.find("number of machines"), std::string::npos);
}

TEST(Flags, MalformedIntegerReportsFlagAndValue) {
  Flags f;
  f.define("time-budget", "10", "budget");
  auto argv = argvOf({"prog", "--time-budget=abc"});
  f.parse(static_cast<int>(argv.size()), argv.data());
  try {
    (void)f.integer("time-budget");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--time-budget"), std::string::npos) << msg;
    EXPECT_NE(msg.find("expected integer"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'abc'"), std::string::npos) << msg;
  }
}

TEST(Flags, MalformedRealReportsFlagAndValue) {
  Flags f;
  f.define("rate", "1.0", "rate");
  auto argv = argvOf({"prog", "--rate", "fast"});
  f.parse(static_cast<int>(argv.size()), argv.data());
  try {
    (void)f.real("rate");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--rate"), std::string::npos) << msg;
    EXPECT_NE(msg.find("expected number"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'fast'"), std::string::npos) << msg;
  }
}

TEST(Flags, TrailingGarbageRejected) {
  Flags f;
  f.define("n", "1", "count");
  f.define("x", "1.0", "x");
  auto argv = argvOf({"prog", "--n=12abc", "--x=3.5zzz"});
  f.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_THROW((void)f.integer("n"), std::runtime_error);
  EXPECT_THROW((void)f.real("x"), std::runtime_error);
}

TEST(Flags, OutOfRangeIntegerRejectedWithMessage) {
  Flags f;
  f.define("big", "1", "big");
  auto argv = argvOf({"prog", "--big=999999999999999999999999"});
  f.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_THROW((void)f.integer("big"), std::runtime_error);
}

TEST(Flags, WellFormedValuesStillParse) {
  Flags f;
  f.define("n", "1", "count");
  f.define("x", "1.0", "x");
  auto argv = argvOf({"prog", "--n=-42", "--x=2.5e-3"});
  f.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(f.integer("n"), -42);
  EXPECT_DOUBLE_EQ(f.real("x"), 2.5e-3);
}

TEST(Flags, BooleanVariants) {
  Flags f;
  f.define("a", "true", "");
  f.define("b", "yes", "");
  f.define("c", "on", "");
  f.define("d", "1", "");
  f.define("e", "false", "");
  EXPECT_TRUE(f.boolean("a"));
  EXPECT_TRUE(f.boolean("b"));
  EXPECT_TRUE(f.boolean("c"));
  EXPECT_TRUE(f.boolean("d"));
  EXPECT_FALSE(f.boolean("e"));
}

}  // namespace
}  // namespace resex
