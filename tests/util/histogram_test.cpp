#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "util/rng.hpp"

namespace resex {
namespace {

TEST(LinearHistogram, CountsLandInRightBuckets) {
  LinearHistogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(5.9);
  h.add(9.5);
  EXPECT_EQ(h.totalCount(), 4u);
  EXPECT_EQ(h.countAt(0), 1u);
  EXPECT_EQ(h.countAt(5), 2u);
  EXPECT_EQ(h.countAt(9), 1u);
}

TEST(LinearHistogram, OutOfRangeClampsToEdges) {
  LinearHistogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.countAt(0), 1u);
  EXPECT_EQ(h.countAt(4), 1u);
}

TEST(LinearHistogram, BucketLowValues) {
  LinearHistogram h(2.0, 12.0, 5);
  EXPECT_DOUBLE_EQ(h.bucketLow(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucketLow(4), 10.0);
}

TEST(LinearHistogram, RejectsBadArguments) {
  EXPECT_THROW(LinearHistogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(LinearHistogram, RenderContainsEveryBucket) {
  LinearHistogram h(0.0, 4.0, 4);
  h.add(1.0);
  const std::string text = h.render();
  int lines = 0;
  for (const char c : text)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 4);
}

TEST(LinearHistogram, NanSamplesAreIgnored) {
  // Regression: a NaN sample fails every bucket comparison; it used to be
  // counted into an arbitrary bucket instead of being dropped.
  LinearHistogram h(0.0, 10.0, 5);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.totalCount(), 0u);
  h.add(5.0);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.totalCount(), 1u);
  EXPECT_EQ(h.countAt(2), 1u);
}

TEST(LatencyHistogram, EmptyQuantileIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.totalCount(), 0u);
}

TEST(LatencyHistogram, QuantileNeverExceedsMaxSeen) {
  // Regression: log buckets overshoot — the representative value of the
  // top bucket can exceed the largest sample, reporting a p99 above any
  // latency that occurred. Quantiles clamp to maxSeen() now.
  LatencyHistogram h(1e-6, 4);  // coarse buckets make the overshoot large
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) h.add(rng.lognormal(-4.0, 1.5));
  for (const double q : {0.5, 0.9, 0.99, 0.999, 1.0})
    EXPECT_LE(h.quantile(q), h.maxSeen());
}

TEST(LatencyHistogram, FullQuantileIsExactlyMaxSeen) {
  LatencyHistogram h;
  h.add(0.004);
  h.add(0.017);
  h.add(0.0291);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0291);
}

TEST(LatencyHistogram, SingleValueRoundTripsWithinRelativeError) {
  LatencyHistogram h(1e-6, 16);
  h.add(0.123);
  const double q = h.quantile(0.5);
  EXPECT_NEAR(q, 0.123, 0.123 * 0.06);  // ~ +/- 2^(1/16)
}

TEST(LatencyHistogram, QuantilesAreMonotone) {
  LatencyHistogram h;
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) h.add(rng.lognormal(-4.0, 1.0));
  double prev = 0.0;
  for (const double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(LatencyHistogram, QuantileApproximatesExactOrder) {
  LatencyHistogram h(1e-6, 32);
  for (int i = 1; i <= 1000; ++i) h.add(i * 0.001);
  // p50 of 0.001..1.000 is ~0.5.
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.03);
  EXPECT_NEAR(h.quantile(0.99), 0.99, 0.05);
}

TEST(LatencyHistogram, TracksMaxAndMean) {
  LatencyHistogram h;
  h.add(1.0);
  h.add(3.0);
  EXPECT_DOUBLE_EQ(h.maxSeen(), 3.0);
  EXPECT_DOUBLE_EQ(h.meanValue(), 2.0);
}

TEST(LatencyHistogram, MergeCombinesCounts) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.add(0.1);
  b.add(10.0);
  b.add(20.0);
  a.merge(b);
  EXPECT_EQ(a.totalCount(), 3u);
  EXPECT_DOUBLE_EQ(a.maxSeen(), 20.0);
  EXPECT_GT(a.quantile(0.99), 5.0);
}

TEST(LatencyHistogram, MergeOfEmptyIsIdentity) {
  LatencyHistogram a;
  a.add(0.25);
  a.add(0.75);
  const double p50 = a.quantile(0.5);
  LatencyHistogram empty;
  a.merge(empty);
  EXPECT_EQ(a.totalCount(), 2u);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), p50);
}

TEST(LatencyHistogram, MergeMatchesPooledSamples) {
  // Merging two histograms must give the same quantiles as one histogram
  // fed the pooled sample stream.
  LatencyHistogram a(1e-6, 16);
  LatencyHistogram b(1e-6, 16);
  LatencyHistogram pooled(1e-6, 16);
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const double xa = rng.lognormal(-3.0, 0.7);
    const double xb = rng.lognormal(-2.0, 0.7);
    a.add(xa);
    b.add(xb);
    pooled.add(xa);
    pooled.add(xb);
  }
  a.merge(b);
  EXPECT_EQ(a.totalCount(), pooled.totalCount());
  EXPECT_DOUBLE_EQ(a.maxSeen(), pooled.maxSeen());
  for (const double q : {0.1, 0.5, 0.9, 0.99})
    EXPECT_DOUBLE_EQ(a.quantile(q), pooled.quantile(q));
}

TEST(LatencyHistogram, QuantileEndpointsBracketSamples) {
  LatencyHistogram h(1e-6, 32);
  for (int i = 1; i <= 100; ++i) h.add(i * 0.01);
  // q=0 sits at (or below) the smallest sample's bucket; q=1 at the
  // largest sample's bucket, within one bucket of relative error.
  EXPECT_LE(h.quantile(0.0), 0.01 * 1.05);
  EXPECT_NEAR(h.quantile(1.0), 1.0, 0.05);
}

TEST(LatencyHistogram, BelowMinClampsToFirstBucket) {
  // Counted in the first bucket, but reported quantiles clamp to the
  // actual maximum sample rather than the bucket's representative value.
  LatencyHistogram h(1e-3, 8);
  h.add(1e-9);
  EXPECT_EQ(h.totalCount(), 1u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1e-9);
  // A second sample above min lands normally and dominates the quantile.
  h.add(2e-3);
  EXPECT_NEAR(h.quantile(1.0), 2e-3, 1e-12);
}

TEST(LatencyHistogram, RejectsBadArguments) {
  EXPECT_THROW(LatencyHistogram(0.0, 8), std::invalid_argument);
  EXPECT_THROW(LatencyHistogram(1e-6, 0), std::invalid_argument);
}

TEST(LatencyHistogram, PrometheusTextMatchesGolden) {
  // One sub-bucket per octave with minValue=1 gives power-of-two edges, so
  // the exposition text is exact and this can be a golden comparison.
  LatencyHistogram h(1.0, 1);
  h.add(0.5);  // clamps into the first bucket (le="1")
  h.add(1.0);
  h.add(3.0);  // bucket (2, 4]
  h.add(5.0);  // bucket (4, 8]
  const std::string expected =
      "# TYPE resex_latency histogram\n"
      "resex_latency_bucket{le=\"1\"} 2\n"
      "resex_latency_bucket{le=\"2\"} 2\n"
      "resex_latency_bucket{le=\"4\"} 3\n"
      "resex_latency_bucket{le=\"8\"} 4\n"
      "resex_latency_bucket{le=\"+Inf\"} 4\n"
      "resex_latency_sum 9.5\n"
      "resex_latency_count 4\n";
  EXPECT_EQ(h.toPrometheusText("resex_latency"), expected);
}

TEST(LatencyHistogram, EmptyPrometheusTextHasOnlyInfBucket) {
  const LatencyHistogram h(1.0, 1);
  const std::string expected =
      "# TYPE empty histogram\n"
      "empty_bucket{le=\"+Inf\"} 0\n"
      "empty_sum 0\n"
      "empty_count 0\n";
  EXPECT_EQ(h.toPrometheusText("empty"), expected);
}

}  // namespace
}  // namespace resex
