#include "util/json_writer.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace resex {
namespace {

TEST(Json, EmptyObject) {
  JsonWriter json;
  json.beginObject().endObject();
  EXPECT_EQ(json.str(), "{}");
}

TEST(Json, EmptyArray) {
  JsonWriter json;
  json.beginArray().endArray();
  EXPECT_EQ(json.str(), "[]");
}

TEST(Json, FieldsWithCommas) {
  JsonWriter json;
  json.beginObject().field("a", 1).field("b", 2.5).field("c", true).endObject();
  EXPECT_EQ(json.str(), "{\"a\":1,\"b\":2.5,\"c\":true}");
}

TEST(Json, NestedContainers) {
  JsonWriter json;
  json.beginObject();
  json.key("list").beginArray().value(1).value(2).endArray();
  json.key("obj").beginObject().field("x", "y").endObject();
  json.endObject();
  EXPECT_EQ(json.str(), "{\"list\":[1,2],\"obj\":{\"x\":\"y\"}}");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::escape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonWriter::escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  JsonWriter json;
  json.beginArray().value(1.0 / 0.0).value(0.0 / 0.0).endArray();
  EXPECT_EQ(json.str(), "[null,null]");
}

TEST(Json, NullValue) {
  JsonWriter json;
  json.beginObject().key("x").nullValue().endObject();
  EXPECT_EQ(json.str(), "{\"x\":null}");
}

TEST(Json, ArrayOfMixedValues) {
  JsonWriter json;
  json.beginArray().value("s").value(false).value(std::int64_t{-3}).endArray();
  EXPECT_EQ(json.str(), "[\"s\",false,-3]");
}

TEST(Json, MisuseThrows) {
  {
    JsonWriter json;
    json.beginObject();
    EXPECT_THROW(json.value(1), std::logic_error);  // value without key
  }
  {
    JsonWriter json;
    json.beginArray();
    EXPECT_THROW(json.key("x"), std::logic_error);  // key in array
  }
  {
    JsonWriter json;
    json.beginObject();
    EXPECT_THROW(json.endArray(), std::logic_error);  // mismatched close
  }
  {
    JsonWriter json;
    json.beginObject();
    EXPECT_THROW(json.str(), std::logic_error);  // unclosed container
  }
}

TEST(Json, TopLevelScalarAllowedOnce) {
  JsonWriter json;
  json.value(42);
  EXPECT_EQ(json.str(), "42");
  EXPECT_THROW(json.value(43), std::logic_error);
}

}  // namespace
}  // namespace resex
