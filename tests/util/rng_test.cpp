#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

namespace resex {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const std::uint64_t first = a();
  a();
  a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(11);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1'000'000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowZeroReturnsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(13);
  constexpr std::uint64_t kBound = 10;
  std::array<int, kBound> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(kBound)];
  for (const int c : counts) EXPECT_NEAR(c, n / kBound, n / kBound * 0.1);
}

TEST(Rng, RangeInclusive) {
  Rng rng(17);
  bool sawLo = false;
  bool sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= v == -3;
    sawHi |= v == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(19);
  double sum = 0.0;
  double sumSq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumSq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumSq / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, DiscreteFollowsWeights) {
  Rng rng(41);
  const std::vector<double> weights{1.0, 3.0, 6.0};
  std::array<int, 3> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.discrete(weights)];
  EXPECT_NEAR(counts[0], n * 0.1, n * 0.02);
  EXPECT_NEAR(counts[1], n * 0.3, n * 0.02);
  EXPECT_NEAR(counts[2], n * 0.6, n * 0.02);
}

TEST(Rng, DiscreteEmptyOrZeroWeights) {
  Rng rng(43);
  EXPECT_EQ(rng.discrete({}), 0u);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_EQ(rng.discrete(zeros), 0u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(47);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(53);
  const auto picks = rng.sampleIndices(100, 30);
  EXPECT_EQ(picks.size(), 30u);
  std::set<std::size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto p : picks) EXPECT_LT(p, 100u);
}

TEST(Rng, SampleIndicesAllWhenCountExceedsN) {
  Rng rng(59);
  const auto picks = rng.sampleIndices(5, 10);
  EXPECT_EQ(picks.size(), 5u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(61);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (parent() == child()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitMix64KnownValue) {
  // Reference value from the SplitMix64 definition with seed 0.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xE220A8397B1DCDAFULL);
}

TEST(Rng, TwoDistinctNeverCollides) {
  // Regression: the power-of-two-choices draw must sample *without*
  // replacement — colliding draws silently degrade p2c to single-choice
  // random routing.
  Rng rng(67);
  for (int i = 0; i < 5000; ++i) {
    const auto [a, b] = rng.twoDistinct(2);
    EXPECT_NE(a, b);
    EXPECT_LT(a, 2u);
    EXPECT_LT(b, 2u);
  }
}

TEST(Rng, TwoDistinctCoversAllOrderedPairs) {
  Rng rng(71);
  constexpr std::uint64_t kBound = 4;
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  for (int i = 0; i < 4000; ++i) {
    const auto [a, b] = rng.twoDistinct(kBound);
    EXPECT_NE(a, b);
    EXPECT_LT(a, kBound);
    EXPECT_LT(b, kBound);
    seen.insert({a, b});
  }
  EXPECT_EQ(seen.size(), kBound * (kBound - 1));
}

}  // namespace
}  // namespace resex
