#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace resex {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownSequence) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, SampleVarianceUsesNMinusOne) {
  OnlineStats s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.sampleVariance(), 2.0);
}

TEST(OnlineStats, MergeMatchesCombined) {
  OnlineStats a;
  OnlineStats b;
  OnlineStats whole;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(OnlineStats, CvZeroMean) {
  OnlineStats s;
  s.add(0.0);
  s.add(0.0);
  EXPECT_EQ(s.cv(), 0.0);
}

TEST(Quantile, EmptyReturnsZero) { EXPECT_EQ(quantile({}, 0.5), 0.0); }

TEST(Quantile, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Quantile, InterpolatesBetweenPoints) {
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Quantile, ClampsOutOfRangeQ) {
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0}, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0}, 2.0), 2.0);
}

TEST(Quantile, BatchMatchesSingle) {
  const std::vector<double> data{5.0, 1.0, 9.0, 3.0, 7.0};
  const std::vector<double> qs{0.0, 0.25, 0.5, 0.75, 1.0};
  const auto batch = quantiles(data, qs);
  ASSERT_EQ(batch.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i)
    EXPECT_DOUBLE_EQ(batch[i], quantile(data, qs[i]));
}

TEST(JainFairness, PerfectlyEvenIsOne) {
  const std::vector<double> v{2.0, 2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(jainFairness(v), 1.0);
}

TEST(JainFairness, SingleHotspotIsOneOverN) {
  const std::vector<double> v{1.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jainFairness(v), 0.25);
}

TEST(JainFairness, EmptyAndZeroAreOne) {
  EXPECT_DOUBLE_EQ(jainFairness({}), 1.0);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(jainFairness(zeros), 1.0);
}

TEST(Gini, EvenDistributionIsZero) {
  EXPECT_NEAR(gini({3.0, 3.0, 3.0}), 0.0, 1e-12);
}

TEST(Gini, ExtremeConcentrationApproachesOne) {
  std::vector<double> v(100, 0.0);
  v.back() = 1.0;
  EXPECT_GT(gini(v), 0.95);
}

TEST(Gini, FewerThanTwoIsZero) {
  EXPECT_EQ(gini({}), 0.0);
  EXPECT_EQ(gini({5.0}), 0.0);
}

TEST(MeanMax, Basics) {
  const std::vector<double> v{1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
  EXPECT_DOUBLE_EQ(maxOf(v), 6.0);
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(maxOf({}), 0.0);
}

TEST(MaxOf, AllNegative) {
  const std::vector<double> v{-5.0, -2.0, -9.0};
  EXPECT_DOUBLE_EQ(maxOf(v), -2.0);
}

}  // namespace
}  // namespace resex
