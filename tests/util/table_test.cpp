#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace resex {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.addRow({"x", "1"});
  t.addRow({"longer-name", "22"});
  const std::string out = t.render();
  // Header, separator, two rows.
  int lines = 0;
  for (const char c : out)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 4);
  // Every line before the newline has the same visible width budget
  // for the first column: "longer-name" sets it.
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
}

TEST(Table, SeparatorMatchesWidths) {
  Table t({"ab"});
  t.addRow({"abcd"});
  const std::string out = t.render();
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, NumTrimsTrailingZeros) {
  EXPECT_EQ(Table::num(1.5, 3), "1.5");
  EXPECT_EQ(Table::num(2.0, 3), "2");
  EXPECT_EQ(Table::num(0.125, 3), "0.125");
}

TEST(Table, NumIntegerOverload) {
  EXPECT_EQ(Table::num(std::size_t{42}), "42");
}

TEST(Table, PctFormats) {
  EXPECT_EQ(Table::pct(0.123, 1), "12.3%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(Table, PrintToStream) {
  Table t({"h"});
  t.addRow({"v"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(), t.render());
}

TEST(Table, RowCount) {
  Table t({"h"});
  EXPECT_EQ(t.rowCount(), 0u);
  t.addRow({"v"});
  EXPECT_EQ(t.rowCount(), 1u);
}

}  // namespace
}  // namespace resex
