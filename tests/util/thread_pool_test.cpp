#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

namespace resex {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 42; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, WaitDrainsQueue) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ZeroThreadsPicksHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.threadCount(), 1u);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) pool.submit([&counter] { ++counter; });
    pool.wait();
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(5000);
  parallelFor(hits.size(), [&hits](std::size_t i) { ++hits[i]; }, 64);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  parallelFor(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, SmallRangeRunsInline) {
  int calls = 0;
  parallelFor(10, [&calls](std::size_t) { ++calls; }, 256);
  EXPECT_EQ(calls, 10);
}

TEST(ParallelFor, PropagatesException) {
  EXPECT_THROW(
      parallelFor(
          10000,
          [](std::size_t i) {
            if (i == 5000) throw std::runtime_error("boom");
          },
          16),
      std::runtime_error);
}

TEST(ParallelForBlocked, BlocksCoverRangeWithoutOverlap) {
  const std::size_t n = 12345;
  std::vector<std::atomic<int>> hits(n);
  parallelForBlocked(
      n,
      [&hits](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) ++hits[i];
      },
      100);
  long total = 0;
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
    total += h.load();
  }
  EXPECT_EQ(total, static_cast<long>(n));
}

TEST(ParallelFor, SumMatchesSerial) {
  const std::size_t n = 100000;
  std::atomic<long> sum{0};
  parallelFor(n, [&sum](std::size_t i) { sum += static_cast<long>(i); }, 1000);
  EXPECT_EQ(sum.load(), static_cast<long>(n) * (n - 1) / 2);
}

}  // namespace
}  // namespace resex
