#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/types.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace resex {
namespace {

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = timer.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  EXPECT_NEAR(timer.millis(), timer.seconds() * 1e3, timer.seconds() * 50.0);
}

TEST(WallTimer, RestartResets) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.restart();
  EXPECT_LT(timer.seconds(), 0.015);
}

TEST(WallTimer, UnitsAreConsistent) {
  WallTimer timer;
  const double s = timer.seconds();
  EXPECT_LE(s * 1e3, timer.millis() + 1.0);
  EXPECT_LE(s * 1e6, timer.micros() + 1000.0);
}

TEST(Deadline, ExpiresAfterBudget) {
  Deadline deadline(0.02);
  EXPECT_FALSE(deadline.expired());
  EXPECT_GT(deadline.remaining(), 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(deadline.expired());
  EXPECT_LE(deadline.remaining(), 0.0);
  EXPECT_DOUBLE_EQ(deadline.budget(), 0.02);
  EXPECT_GE(deadline.elapsed(), 0.02);
}

TEST(Deadline, ZeroBudgetExpiresImmediately) {
  Deadline deadline(0.0);
  EXPECT_TRUE(deadline.expired());
}

TEST(Deadline, RemainingClampsAtZero) {
  Deadline deadline(0.001);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(deadline.expired());
  EXPECT_DOUBLE_EQ(deadline.remaining(), 0.0);
}

TEST(Deadline, UnlimitedNeverExpires) {
  const Deadline deadline = Deadline::unlimited();
  EXPECT_FALSE(deadline.expired());
  EXPECT_GT(deadline.remaining(), 1e18);
}

TEST(Log, LevelThresholdIsRespected) {
  const LogLevel saved = logLevel();
  setLogLevel(LogLevel::Error);
  EXPECT_EQ(logLevel(), LogLevel::Error);
  // Below-threshold calls must be safe no-ops.
  RESEX_LOG_DEBUG("dropped %d", 1);
  RESEX_LOG_INFO("dropped %s", "too");
  RESEX_LOG_WARN("dropped");
  setLogLevel(LogLevel::Off);
  RESEX_LOG_ERROR("also dropped at Off");
  setLogLevel(saved);
}

TEST(Log, FormattingTruncatesLongMessagesSafely) {
  const LogLevel saved = logLevel();
  setLogLevel(LogLevel::Error);
  const std::string huge(10000, 'x');
  // Must truncate to the internal buffer without UB (writes one long
  // line to stderr; that is the point of the test).
  logf(LogLevel::Error, "%s", huge.c_str());
  setLogLevel(saved);
}

TEST(Log, SinkCapturesPrefixedLines) {
  const LogLevel saved = logLevel();
  setLogLevel(LogLevel::Info);
  std::vector<std::pair<LogLevel, std::string>> captured;
  std::mutex mutex;
  setLogSink([&](LogLevel level, const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex);
    captured.emplace_back(level, line);
  });
  RESEX_LOG_INFO("hello %d", 42);
  RESEX_LOG_WARN("careful");
  RESEX_LOG_DEBUG("below threshold, dropped");
  setLogSink(nullptr);
  setLogLevel(saved);

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::Info);
  EXPECT_EQ(captured[1].first, LogLevel::Warn);
  const std::string& line = captured[0].second;
  EXPECT_NE(line.find("hello 42"), std::string::npos);
  EXPECT_NE(line.find("resex INFO"), std::string::npos);
  // ISO-8601 UTC timestamp: [YYYY-MM-DDTHH:MM:SS.mmmZ ...
  ASSERT_GE(line.size(), 25u);
  EXPECT_EQ(line[0], '[');
  EXPECT_EQ(line[5], '-');
  EXPECT_EQ(line[11], 'T');
  EXPECT_EQ(line[20], '.');
  EXPECT_EQ(line[24], 'Z');
  // Thread-id prefix "T<n>" follows the timestamp.
  const std::string tid = "T" + std::to_string(logThreadId());
  EXPECT_NE(line.find(" " + tid + " "), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(Log, ThreadIdsAreSmallAndStable) {
  const std::uint32_t mine = logThreadId();
  EXPECT_GE(mine, 1u);
  EXPECT_EQ(logThreadId(), mine);
  std::uint32_t other = 0;
  std::thread([&] { other = logThreadId(); }).join();
  EXPECT_NE(other, mine);
}

TEST(DimName, CanonicalLabels) {
  EXPECT_STREQ(dimName(0), "cpu");
  EXPECT_STREQ(dimName(1), "mem");
  EXPECT_STREQ(dimName(2), "disk");
  EXPECT_STREQ(dimName(3), "net");
  EXPECT_STREQ(dimName(7), "dim");
}

}  // namespace
}  // namespace resex
