#include "workload/diurnal.hpp"

#include <gtest/gtest.h>

namespace resex {
namespace {

TEST(Diurnal, PeakIsAtPeakHour) {
  DiurnalModel model;
  model.peakHour = 14.0;
  const double peak = model.multiplier(14.0);
  for (double h = 0.0; h < 24.0; h += 0.5)
    EXPECT_LE(model.multiplier(h), peak + 1e-9) << "hour " << h;
}

TEST(Diurnal, TroughIsOppositeThePeak) {
  DiurnalModel model;
  model.peakHour = 14.0;
  model.secondHarmonic = 0.0;
  EXPECT_LT(model.multiplier(2.0), model.multiplier(14.0));
  // Pure cosine: trough 12h after the peak.
  double troughValue = model.multiplier(2.0);
  for (double h = 0.0; h < 24.0; h += 0.5)
    EXPECT_GE(model.multiplier(h), troughValue - 1e-9);
}

TEST(Diurnal, FlatWhenAmplitudeZero) {
  DiurnalModel model;
  model.amplitude = 0.0;
  for (double h = 0.0; h < 24.0; h += 1.0)
    EXPECT_DOUBLE_EQ(model.multiplier(h), model.base);
}

TEST(Diurnal, MeanIsApproximatelyBase) {
  DiurnalModel model;
  double sum = 0.0;
  const int steps = 2400;
  for (int i = 0; i < steps; ++i) sum += model.multiplier(24.0 * i / steps);
  EXPECT_NEAR(sum / steps, model.base, 0.02);
}

TEST(Diurnal, PhaseShiftMovesThePeak) {
  DiurnalModel model;
  model.secondHarmonic = 0.0;
  // A +3h shift means the entity peaks 3 hours earlier.
  EXPECT_NEAR(model.multiplier(model.peakHour - 3.0, 3.0),
              model.multiplier(model.peakHour, 0.0), 1e-9);
}

TEST(Diurnal, NeverBelowFloor) {
  DiurnalModel model;
  model.amplitude = 5.0;  // absurd amplitude would go negative unclamped
  for (double h = 0.0; h < 24.0; h += 0.25) EXPECT_GE(model.multiplier(h), 0.05);
}

TEST(Diurnal, PeriodicOver24Hours) {
  DiurnalModel model;
  EXPECT_NEAR(model.multiplier(3.0), model.multiplier(27.0), 1e-9);
}

}  // namespace
}  // namespace resex
