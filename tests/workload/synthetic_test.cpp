#include "workload/synthetic.hpp"

#include <gtest/gtest.h>

#include "cluster/assignment.hpp"

namespace resex {
namespace {

TEST(Synthetic, ProducesRequestedShape) {
  SyntheticConfig config;
  config.machines = 20;
  config.exchangeMachines = 3;
  config.shardsPerMachine = 10.0;
  config.dims = 3;
  const Instance inst = generateSynthetic(config);
  EXPECT_EQ(inst.regularCount(), 20u);
  EXPECT_EQ(inst.exchangeCount(), 3u);
  EXPECT_EQ(inst.machineCount(), 23u);
  EXPECT_EQ(inst.shardCount(), 200u);
  EXPECT_EQ(inst.dims(), 3u);
}

TEST(Synthetic, HitsTargetLoadFactor) {
  SyntheticConfig config;
  config.loadFactor = 0.65;
  config.machines = 40;
  const Instance inst = generateSynthetic(config);
  EXPECT_NEAR(inst.loadFactor(), 0.65, 1e-9);
}

TEST(Synthetic, InitialPlacementIsCapacityFeasible) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    SyntheticConfig config;
    config.seed = seed;
    config.loadFactor = 0.8;
    config.machines = 50;
    const Instance inst = generateSynthetic(config);
    Assignment a(inst);
    EXPECT_TRUE(a.validate(/*requireCapacity=*/true).empty()) << "seed " << seed;
  }
}

TEST(Synthetic, ExchangeMachinesStartVacant) {
  SyntheticConfig config;
  config.exchangeMachines = 4;
  const Instance inst = generateSynthetic(config);
  Assignment a(inst);
  EXPECT_GE(a.vacantCount(), 4u);
  for (MachineId m = static_cast<MachineId>(inst.regularCount());
       m < inst.machineCount(); ++m)
    EXPECT_TRUE(a.isVacant(m));
}

TEST(Synthetic, DeterministicForSeed) {
  SyntheticConfig config;
  config.seed = 99;
  const Instance a = generateSynthetic(config);
  const Instance b = generateSynthetic(config);
  EXPECT_EQ(a.serialize(), b.serialize());
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticConfig a;
  a.seed = 1;
  SyntheticConfig b;
  b.seed = 2;
  EXPECT_NE(generateSynthetic(a).serialize(), generateSynthetic(b).serialize());
}

TEST(Synthetic, PlacementSkewCreatesImbalance) {
  SyntheticConfig skewed;
  skewed.seed = 7;
  skewed.placementSkew = 1.2;
  skewed.loadFactor = 0.6;
  SyntheticConfig flat = skewed;
  flat.placementSkew = 0.0;
  const Instance skewedInst = generateSynthetic(skewed);
  const Instance flatInst = generateSynthetic(flat);
  Assignment sa(skewedInst);
  Assignment fa(flatInst);
  EXPECT_GT(sa.bottleneckUtilization(), fa.bottleneckUtilization());
}

TEST(Synthetic, SkuCountProducesHeterogeneousCapacities) {
  SyntheticConfig config;
  config.skuCount = 3;
  config.skuRatio = 2.0;
  const Instance inst = generateSynthetic(config);
  double minCap = 1e18;
  double maxCap = 0.0;
  for (const Machine& m : inst.machines()) {
    minCap = std::min(minCap, m.capacity[0]);
    maxCap = std::max(maxCap, m.capacity[0]);
  }
  EXPECT_GT(maxCap, minCap * 1.5);
}

TEST(Synthetic, DimCorrelationOneMakesDimsProportional) {
  SyntheticConfig config;
  config.dimCorrelation = 1.0;
  config.dims = 2;
  config.hotspotFraction = 0.0;
  const Instance inst = generateSynthetic(config);
  // With rho = 1 every shard's dims have identical shape, so the ratio
  // dim1/dim0 is the same constant for all shards.
  const double ratio = inst.shard(0).demand[1] / inst.shard(0).demand[0];
  for (const Shard& s : inst.shards())
    EXPECT_NEAR(s.demand[1] / s.demand[0], ratio, 1e-9);
}

TEST(Synthetic, RejectsBadConfig) {
  SyntheticConfig config;
  config.machines = 0;
  EXPECT_THROW(generateSynthetic(config), std::invalid_argument);
  config = SyntheticConfig{};
  config.loadFactor = 1.5;
  EXPECT_THROW(generateSynthetic(config), std::invalid_argument);
  config = SyntheticConfig{};
  config.dims = 0;
  EXPECT_THROW(generateSynthetic(config), std::invalid_argument);
}

TEST(Synthetic, MoveBytesArePositive) {
  const Instance inst = generateSynthetic(SyntheticConfig{});
  for (const Shard& s : inst.shards()) EXPECT_GT(s.moveBytes, 0.0);
}

TEST(Synthetic, ShardSizeCapIsRespected) {
  SyntheticConfig config;
  config.seed = 42;
  config.shardSizeSigma = 1.5;  // heavy tail that would mint giants
  config.hotspotFraction = 0.1;
  config.hotspotMultiplier = 8.0;
  config.maxShardFraction = 0.4;
  config.loadFactor = 0.8;
  const Instance inst = generateSynthetic(config);
  double minCap = 1e300;
  for (std::size_t i = 0; i < inst.regularCount(); ++i)
    for (std::size_t d = 0; d < inst.dims(); ++d)
      minCap = std::min(minCap, inst.machine(static_cast<MachineId>(i)).capacity[d]);
  for (const Shard& s : inst.shards())
    for (std::size_t d = 0; d < inst.dims(); ++d)
      EXPECT_LE(s.demand[d], 0.4 * minCap + 1e-9);
}

TEST(Synthetic, LoadFactorExactEvenWhenCapBinds) {
  SyntheticConfig config;
  config.seed = 43;
  config.shardSizeSigma = 1.5;
  config.maxShardFraction = 0.35;
  config.loadFactor = 0.75;
  const Instance inst = generateSynthetic(config);
  EXPECT_NEAR(inst.loadFactor(), 0.75, 1e-9);
}

TEST(Synthetic, UnreachableLoadUnderCapThrows) {
  SyntheticConfig config;
  config.machines = 4;
  config.shardsPerMachine = 1.0;  // 4 shards capped at 0.1 -> max load 0.1
  config.maxShardFraction = 0.1;
  config.loadFactor = 0.8;
  EXPECT_THROW(generateSynthetic(config), std::runtime_error);
}

TEST(Synthetic, TinyTestInstanceIsFeasibleAndSmall) {
  const Instance inst = tinyTestInstance();
  EXPECT_EQ(inst.regularCount(), 6u);
  EXPECT_EQ(inst.shardCount(), 24u);
  Assignment a(inst);
  EXPECT_TRUE(a.validate(/*requireCapacity=*/true).empty());
}

}  // namespace
}  // namespace resex
