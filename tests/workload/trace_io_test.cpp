#include "workload/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "workload/synthetic.hpp"

namespace resex {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "resex_trace_io_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }

  Instance base_ = tinyTestInstance(77, 6, 30, 1, 0.5);

  Trace makeTrace() {
    TraceConfig config;
    config.seed = 3;
    config.epochs = 4;
    config.peakLoadFactor = 0.7;
    return generateTrace(base_, config);
  }
};

TEST_F(TraceIoTest, RoundTripPreservesDemands) {
  const Trace original = makeTrace();
  saveTraceCsv(original, path_);
  const Trace loaded = loadTraceCsv(base_, original.config(), path_);
  ASSERT_EQ(loaded.epochCount(), original.epochCount());
  ASSERT_EQ(loaded.shardCount(), original.shardCount());
  for (std::size_t e = 0; e < original.epochCount(); ++e)
    for (ShardId s = 0; s < original.shardCount(); ++s)
      for (std::size_t d = 0; d < base_.dims(); ++d)
        EXPECT_NEAR(loaded.demand(e, s)[d], original.demand(e, s)[d],
                    original.demand(e, s)[d] * 1e-12);
}

TEST_F(TraceIoTest, LoadedTraceDrivesInstances) {
  const Trace original = makeTrace();
  saveTraceCsv(original, path_);
  const Trace loaded = loadTraceCsv(base_, TraceConfig{}, path_);
  const Instance epoch = loaded.instanceForEpoch(2, base_.initialAssignment());
  EXPECT_EQ(epoch.shardCount(), base_.shardCount());
  EXPECT_NEAR(loaded.epochLoadFactor(2), original.epochLoadFactor(2), 1e-9);
}

TEST_F(TraceIoTest, HandwrittenCsvLoads) {
  // 2-dim base with 30 shards: a 1-epoch handwritten file.
  std::ofstream out(path_);
  out << "epoch,shard,demand_0,demand_1\n";
  for (ShardId s = 0; s < base_.shardCount(); ++s)
    out << "0," << s << "," << (1.0 + s) << "," << (2.0 + s) << "\n";
  out.close();
  const Trace loaded = loadTraceCsv(base_, TraceConfig{}, path_);
  EXPECT_EQ(loaded.epochCount(), 1u);
  EXPECT_DOUBLE_EQ(loaded.demand(0, 5)[0], 6.0);
  EXPECT_DOUBLE_EQ(loaded.demand(0, 5)[1], 7.0);
}

TEST_F(TraceIoTest, RowsMayArriveOutOfOrder) {
  std::ofstream out(path_);
  out << "epoch,shard,demand_0,demand_1\n";
  for (ShardId s = base_.shardCount(); s-- > 0;) {
    out << "1," << s << ",1,1\n";
    out << "0," << s << ",2,2\n";
  }
  out.close();
  const Trace loaded = loadTraceCsv(base_, TraceConfig{}, path_);
  EXPECT_EQ(loaded.epochCount(), 2u);
  EXPECT_DOUBLE_EQ(loaded.demand(0, 0)[0], 2.0);
  EXPECT_DOUBLE_EQ(loaded.demand(1, 0)[0], 1.0);
}

TEST_F(TraceIoTest, RejectsMissingRows) {
  std::ofstream out(path_);
  out << "epoch,shard,demand_0,demand_1\n";
  out << "0,0,1,1\n";  // 29 shards missing
  out.close();
  EXPECT_THROW(loadTraceCsv(base_, TraceConfig{}, path_), std::runtime_error);
}

TEST_F(TraceIoTest, RejectsDuplicates) {
  std::ofstream out(path_);
  out << "epoch,shard,demand_0,demand_1\n";
  for (ShardId s = 0; s < base_.shardCount(); ++s) out << "0," << s << ",1,1\n";
  out << "0,0,9,9\n";
  out.close();
  EXPECT_THROW(loadTraceCsv(base_, TraceConfig{}, path_), std::runtime_error);
}

TEST_F(TraceIoTest, RejectsWrongArityHeader) {
  std::ofstream out(path_);
  out << "epoch,shard,demand_0\n";  // base has 2 dims
  out << "0,0,1\n";
  out.close();
  EXPECT_THROW(loadTraceCsv(base_, TraceConfig{}, path_), std::runtime_error);
}

TEST_F(TraceIoTest, RejectsNegativeDemandAndBadShard) {
  {
    std::ofstream out(path_);
    out << "epoch,shard,demand_0,demand_1\n0,0,-1,1\n";
  }
  EXPECT_THROW(loadTraceCsv(base_, TraceConfig{}, path_), std::runtime_error);
  {
    std::ofstream out(path_);
    out << "epoch,shard,demand_0,demand_1\n0,999,1,1\n";
  }
  EXPECT_THROW(loadTraceCsv(base_, TraceConfig{}, path_), std::runtime_error);
}

TEST_F(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(loadTraceCsv(base_, TraceConfig{}, "/nonexistent/trace.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace resex
