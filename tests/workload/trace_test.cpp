#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include "cluster/assignment.hpp"
#include "workload/synthetic.hpp"

namespace resex {
namespace {

Instance baseInstance() { return tinyTestInstance(21, 8, 80, 2, 0.5); }

TraceConfig fastConfig() {
  TraceConfig config;
  config.seed = 5;
  config.epochs = 6;
  config.peakLoadFactor = 0.8;
  return config;
}

TEST(Trace, ShapeMatchesConfig) {
  const Instance base = baseInstance();
  const Trace trace = generateTrace(base, fastConfig());
  EXPECT_EQ(trace.epochCount(), 6u);
  EXPECT_EQ(trace.shardCount(), base.shardCount());
}

TEST(Trace, WorstEpochHitsPeakLoadFactor) {
  const Instance base = baseInstance();
  const Trace trace = generateTrace(base, fastConfig());
  double worst = 0.0;
  for (std::size_t e = 0; e < trace.epochCount(); ++e)
    worst = std::max(worst, trace.epochLoadFactor(e));
  EXPECT_NEAR(worst, 0.8, 1e-9);
}

TEST(Trace, DemandsArePositive) {
  const Instance base = baseInstance();
  const Trace trace = generateTrace(base, fastConfig());
  for (std::size_t e = 0; e < trace.epochCount(); ++e)
    for (ShardId s = 0; s < trace.shardCount(); ++s)
      for (std::size_t d = 0; d < base.dims(); ++d)
        EXPECT_GT(trace.demand(e, s)[d], 0.0);
}

TEST(Trace, DemandsVaryAcrossEpochs) {
  const Instance base = baseInstance();
  const Trace trace = generateTrace(base, fastConfig());
  int changed = 0;
  for (ShardId s = 0; s < trace.shardCount(); ++s)
    if (!(trace.demand(0, s) == trace.demand(3, s))) ++changed;
  EXPECT_GT(changed, static_cast<int>(trace.shardCount() / 2));
}

TEST(Trace, DeterministicForSeed) {
  const Instance base = baseInstance();
  const Trace a = generateTrace(base, fastConfig());
  const Trace b = generateTrace(base, fastConfig());
  for (std::size_t e = 0; e < a.epochCount(); ++e)
    for (ShardId s = 0; s < a.shardCount(); ++s)
      EXPECT_EQ(a.demand(e, s), b.demand(e, s));
}

TEST(Trace, InstanceForEpochCarriesMappingOver) {
  const Instance base = baseInstance();
  const Trace trace = generateTrace(base, fastConfig());
  const Instance epoch1 = trace.instanceForEpoch(1, base.initialAssignment());
  EXPECT_EQ(epoch1.machineCount(), base.machineCount());
  EXPECT_EQ(epoch1.exchangeCount(), base.exchangeCount());
  EXPECT_EQ(epoch1.shardCount(), base.shardCount());
  // Demands come from the epoch, not the base.
  bool anyDiffer = false;
  for (ShardId s = 0; s < base.shardCount(); ++s)
    if (!(epoch1.shard(s).demand == base.shard(s).demand)) anyDiffer = true;
  EXPECT_TRUE(anyDiffer);
}

TEST(Trace, InstanceForEpochRelabelsVacantToTail) {
  const Instance base = baseInstance();
  const Trace trace = generateTrace(base, fastConfig());
  // Build a mapping that drains regular machine 0 onto machine 1 and
  // occupies exchange machine (regularCount) instead.
  std::vector<MachineId> mapping = base.initialAssignment();
  const auto firstExchange = static_cast<MachineId>(base.regularCount());
  for (MachineId& m : mapping)
    if (m == 0) m = firstExchange;
  const Instance epoch = trace.instanceForEpoch(2, mapping);
  // Valid instance (constructor validates: no shard on exchange machines).
  Assignment a(epoch);
  EXPECT_TRUE(a.validate(/*requireCapacity=*/false).empty());
  // Exactly k machines are exchange and they are vacant.
  for (MachineId m = static_cast<MachineId>(epoch.regularCount());
       m < epoch.machineCount(); ++m)
    EXPECT_TRUE(a.isVacant(m));
}

TEST(Trace, InstanceForEpochRejectsTooFewVacant) {
  const Instance base = baseInstance();
  const Trace trace = generateTrace(base, fastConfig());
  // Occupy every machine including all exchange machines.
  std::vector<MachineId> mapping = base.initialAssignment();
  for (MachineId m = 0; m < base.machineCount() && m < mapping.size(); ++m)
    mapping[m] = m;
  EXPECT_THROW(trace.instanceForEpoch(0, mapping), std::runtime_error);
}

TEST(Trace, RejectsBadConfig) {
  const Instance base = baseInstance();
  TraceConfig config;
  config.epochs = 0;
  EXPECT_THROW(generateTrace(base, config), std::invalid_argument);
}

TEST(Trace, RejectsMappingSizeMismatch) {
  const Instance base = baseInstance();
  const Trace trace = generateTrace(base, fastConfig());
  EXPECT_THROW(trace.instanceForEpoch(0, {}), std::invalid_argument);
}

TEST(Trace, HotspotsRaiseSomeShardsSharply) {
  const Instance base = baseInstance();
  TraceConfig config = fastConfig();
  config.epochs = 12;
  config.hotspotRate = 0.25;
  config.hotspotMultiplier = 5.0;
  config.driftSigma = 0.0;
  config.diurnal.amplitude = 0.0;
  const Trace trace = generateTrace(base, config);
  // With flat diurnal and no drift, any large epoch-over-epoch jump is a
  // hotspot firing; at 25%/epoch over 12 epochs some must fire.
  int spikes = 0;
  for (std::size_t e = 1; e < trace.epochCount(); ++e)
    for (ShardId s = 0; s < trace.shardCount(); ++s)
      if (trace.demand(e, s)[0] > 2.5 * trace.demand(e - 1, s)[0]) ++spikes;
  EXPECT_GT(spikes, 0);
}

}  // namespace
}  // namespace resex
