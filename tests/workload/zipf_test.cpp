#include "workload/zipf.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

namespace resex {
namespace {

TEST(Zipf, RejectsBadArguments) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.5), std::invalid_argument);
}

TEST(Zipf, SingleElementAlwaysOne) {
  ZipfSampler z(1, 1.2);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 1u);
}

TEST(Zipf, SamplesStayInRange) {
  ZipfSampler z(1000, 1.1);
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    const auto k = z.sample(rng);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 1000u);
  }
}

TEST(Zipf, ExponentZeroIsUniform) {
  ZipfSampler z(10, 0.0);
  Rng rng(3);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng) - 1];
  for (const int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
}

TEST(Zipf, EmpiricalFrequenciesMatchTheory) {
  const double s = 1.2;
  ZipfSampler z(50, s);
  Rng rng(5);
  std::vector<double> counts(50, 0.0);
  const int n = 400000;
  for (int i = 0; i < n; ++i) counts[z.sample(rng) - 1] += 1.0;
  // Check the head ranks against the exact probabilities.
  for (std::uint64_t k = 1; k <= 5; ++k) {
    const double expected = z.probability(k) * n;
    EXPECT_NEAR(counts[k - 1], expected, expected * 0.05)
        << "rank " << k;
  }
}

TEST(Zipf, ExponentOneSpecialCase) {
  ZipfSampler z(100, 1.0);
  Rng rng(7);
  std::vector<double> counts(100, 0.0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) counts[z.sample(rng) - 1] += 1.0;
  // P(1)/P(2) should be ~2 under s = 1.
  EXPECT_NEAR(counts[0] / counts[1], 2.0, 0.15);
}

TEST(Zipf, ProbabilitiesSumToOne) {
  ZipfSampler z(200, 0.9);
  double total = 0.0;
  for (std::uint64_t k = 1; k <= 200; ++k) total += z.probability(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, ProbabilityOutOfRangeIsZero) {
  ZipfSampler z(10, 1.0);
  EXPECT_EQ(z.probability(0), 0.0);
  EXPECT_EQ(z.probability(11), 0.0);
}

TEST(Zipf, RankOneIsModalForPositiveExponent) {
  ZipfSampler z(1000, 0.8);
  Rng rng(11);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) ++counts[z.sample(rng) - 1];
  for (std::size_t k = 1; k < 20; ++k) EXPECT_GE(counts[0], counts[k]);
}

TEST(Zipf, DeterministicGivenSeed) {
  ZipfSampler z(500, 1.1);
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(a), z.sample(b));
}

TEST(Zipf, ProbabilityIsSafeToCallConcurrently) {
  // Regression: probability() used to lazily initialise its normalizer
  // through a const_cast on first call — a data race when several serving
  // threads share one sampler. The normalizer is now fixed in the
  // constructor, so concurrent const calls are read-only (ThreadSanitizer
  // verifies the absence of the race; this test pins the values too).
  // The very first probability() calls must come from concurrent threads —
  // a warm-up call from this thread would hide the lazy-init race.
  const ZipfSampler z(300, 0.9);
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        double total = 0.0;
        for (std::uint64_t k = 1; k <= 10; ++k) total += z.probability(k);
        if (!(total > 0.0) || total > 1.0)
          mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  // And the values agree with a fresh, sequentially-used sampler.
  const ZipfSampler reference(300, 0.9);
  EXPECT_DOUBLE_EQ(z.probability(1), reference.probability(1));
}

}  // namespace
}  // namespace resex
